//! Breakdown semantics across solvers (the non-finite-residual fixes).
//!
//! A residual that goes NaN/Inf — from a poisoned kernel, overflow on a
//! divergent iteration, or an exactly-singular step — must stop a solve
//! with [`StopReason::Breakdown`] within O(1) further iterations, never
//! spin silently until the iteration limit. And on *every* exit path, each
//! solver maintains the engine-wide convention documented on
//! `SolveRecord::iterations`: `residual_history.len() == iterations`.

use gko::linop::LinOp;
use gko::log::SolveRecord;
use gko::matrix::{Csr, Dense};
use gko::preconditioner::jacobi::Jacobi;
use gko::solver::{BiCgStab, Cg, Cgs, Fcg, Gmres, Ir, Minres, MixedIr};
use gko::stop::{Criteria, StopReason};
use gko::{Dim2, Executor, GkoError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn poisson(exec: &Executor, g: usize) -> Arc<Csr<f64, i32>> {
    let n = g * g;
    let mut t = Vec::new();
    for i in 0..g {
        for j in 0..g {
            let r = i * g + j;
            t.push((r, r, 4.0));
            if i > 0 {
                t.push((r, r - g, -1.0));
            }
            if i + 1 < g {
                t.push((r, r + g, -1.0));
            }
            if j > 0 {
                t.push((r, r - 1, -1.0));
            }
            if j + 1 < g {
                t.push((r, r + 1, -1.0));
            }
        }
    }
    Arc::new(Csr::from_triplets(exec, Dim2::square(n), &t).unwrap())
}

fn assert_invariant(name: &str, rec: &SolveRecord) {
    assert_eq!(
        rec.residual_history.len(),
        rec.iterations,
        "{name}: residual_history.len() must equal iterations (reason {:?})",
        rec.stop_reason
    );
}

/// Wraps an operator and overwrites one output entry with NaN once the
/// operator has been applied `threshold` times — models a kernel that
/// starts producing garbage mid-solve.
struct PoisonAfter {
    inner: Arc<Csr<f64, i32>>,
    applies: AtomicUsize,
    threshold: usize,
}

impl PoisonAfter {
    fn new(inner: Arc<Csr<f64, i32>>, threshold: usize) -> Arc<Self> {
        Arc::new(PoisonAfter {
            inner,
            applies: AtomicUsize::new(0),
            threshold,
        })
    }

    fn poison(&self, x: &mut Dense<f64>) {
        if self.applies.fetch_add(1, Ordering::Relaxed) + 1 >= self.threshold {
            x.set(0, 0, f64::NAN);
        }
    }
}

impl LinOp<f64> for PoisonAfter {
    fn size(&self) -> Dim2 {
        self.inner.size()
    }

    fn executor(&self) -> &Executor {
        self.inner.executor()
    }

    fn apply(&self, b: &Dense<f64>, x: &mut Dense<f64>) -> Result<(), GkoError> {
        self.inner.apply(b, x)?;
        self.poison(x);
        Ok(())
    }

    fn apply_advanced(
        &self,
        alpha: f64,
        b: &Dense<f64>,
        beta: f64,
        x: &mut Dense<f64>,
    ) -> Result<(), GkoError> {
        self.inner.apply_advanced(alpha, b, beta, x)?;
        self.poison(x);
        Ok(())
    }
}

/// A poisoned SpMV must stop CG, BiCGStab, and GMRES with `Breakdown`
/// within a couple of iterations of the first NaN, not run out the
/// 500-iteration budget.
#[test]
fn poisoned_spmv_stops_solvers_within_a_few_iterations() {
    let exec = Executor::reference();
    let a = poisson(&exec, 10);
    let n = a.size().rows;
    let crit = || Criteria::iterations_and_reduction(500, 1e-12);
    // The 3rd operator application (and every one after) produces a NaN:
    // the initial-residual apply plus at most two iteration applies are
    // clean, so breakdown must surface within the first few iterations.
    let run = |name: &str, rec: SolveRecord| {
        assert_eq!(
            rec.stop_reason,
            Some(StopReason::Breakdown),
            "{name}: expected breakdown, got {rec:?}"
        );
        assert!(
            rec.iterations <= 4,
            "{name}: breakdown should surface within O(1) iterations of the \
             poisoned apply, took {}",
            rec.iterations
        );
        assert_invariant(name, &rec);
    };

    let op = PoisonAfter::new(a.clone(), 3);
    let s = Cg::new(op as Arc<dyn LinOp<f64>>).unwrap().with_criteria(crit());
    let b = Dense::<f64>::vector(&exec, n, 1.0);
    let mut x = Dense::<f64>::vector(&exec, n, 0.0);
    s.apply(&b, &mut x).unwrap();
    run("cg", s.logger().snapshot());

    let op = PoisonAfter::new(a.clone(), 3);
    let s = BiCgStab::new(op as Arc<dyn LinOp<f64>>)
        .unwrap()
        .with_criteria(crit());
    let mut x = Dense::<f64>::vector(&exec, n, 0.0);
    s.apply(&b, &mut x).unwrap();
    run("bicgstab", s.logger().snapshot());

    let op = PoisonAfter::new(a, 3);
    let s = Gmres::new(op as Arc<dyn LinOp<f64>>)
        .unwrap()
        .with_criteria(crit());
    let mut x = Dense::<f64>::vector(&exec, n, 0.0);
    s.apply(&b, &mut x).unwrap();
    run("gmres", s.logger().snapshot());
}

/// The classic CG breakdown: a symmetric *indefinite* permutation matrix
/// makes the very first `p' A p` vanish. CG and BiCGStab must report
/// breakdown immediately; GMRES solves the system exactly.
#[test]
fn indefinite_two_cycle_breaks_cg_and_bicgstab_immediately() {
    let exec = Executor::reference();
    let a = Arc::new(
        Csr::<f64, i32>::from_triplets(
            &exec,
            Dim2::square(2),
            &[(0, 1, 1.0), (1, 0, 1.0)],
        )
        .unwrap(),
    );
    let crit = || Criteria::iterations_and_reduction(50, 1e-12);
    let b = Dense::<f64>::from_rows(&exec, &[[1.0], [0.0]]);

    let s = Cg::new(a.clone() as Arc<dyn LinOp<f64>>)
        .unwrap()
        .with_criteria(crit());
    let mut x = Dense::<f64>::vector(&exec, 2, 0.0);
    s.apply(&b, &mut x).unwrap();
    let rec = s.logger().snapshot();
    assert_eq!(rec.stop_reason, Some(StopReason::Breakdown), "{rec:?}");
    assert_invariant("cg/indefinite", &rec);

    let s = BiCgStab::new(a.clone() as Arc<dyn LinOp<f64>>)
        .unwrap()
        .with_criteria(crit());
    let mut x = Dense::<f64>::vector(&exec, 2, 0.0);
    s.apply(&b, &mut x).unwrap();
    let rec = s.logger().snapshot();
    assert_eq!(rec.stop_reason, Some(StopReason::Breakdown), "{rec:?}");
    assert_invariant("bicgstab/indefinite", &rec);

    let s = Gmres::new(a as Arc<dyn LinOp<f64>>)
        .unwrap()
        .with_criteria(crit());
    let mut x = Dense::<f64>::vector(&exec, 2, 0.0);
    s.apply(&b, &mut x).unwrap();
    let rec = s.logger().snapshot();
    assert!(rec.converged(), "gmres handles indefinite: {rec:?}");
    assert!((x.at(0, 0)).abs() < 1e-10 && (x.at(1, 0) - 1.0).abs() < 1e-10);
    assert_invariant("gmres/indefinite", &rec);
}

/// A singular diagonal system with an inconsistent right-hand side: CG
/// diverges until its recurrence overflows — the non-finite residual is now
/// caught as `Breakdown` instead of iterating to the limit on NaNs.
/// BiCGStab breaks down the same way; GMRES stagnates (stable) and stops at
/// the iteration limit without claiming convergence.
#[test]
fn singular_system_stops_honestly() {
    let exec = Executor::reference();
    let n = 24;
    let t: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, i as f64)).collect();
    let a = Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap());
    let crit = || Criteria::iterations_and_reduction(2000, 1e-10);
    let b = Dense::<f64>::vector(&exec, n, 1.0);

    let s = Cg::new(a.clone() as Arc<dyn LinOp<f64>>)
        .unwrap()
        .with_criteria(crit());
    let mut x = Dense::<f64>::vector(&exec, n, 0.0);
    s.apply(&b, &mut x).unwrap();
    let rec = s.logger().snapshot();
    assert_eq!(rec.stop_reason, Some(StopReason::Breakdown), "{rec:?}");
    assert!(
        rec.iterations < 2000,
        "cg/singular: overflow breakdown must beat the iteration limit"
    );
    assert!(
        rec.residual_history.iter().all(|r| r.is_finite()),
        "cg/singular: no non-finite residual is ever recorded as history"
    );
    assert_invariant("cg/singular", &rec);

    let s = BiCgStab::new(a.clone() as Arc<dyn LinOp<f64>>)
        .unwrap()
        .with_criteria(crit());
    let mut x = Dense::<f64>::vector(&exec, n, 0.0);
    s.apply(&b, &mut x).unwrap();
    let rec = s.logger().snapshot();
    assert_eq!(rec.stop_reason, Some(StopReason::Breakdown), "{rec:?}");
    assert!(rec.iterations < 2000);
    assert_invariant("bicgstab/singular", &rec);

    let s = Gmres::new(a as Arc<dyn LinOp<f64>>)
        .unwrap()
        .with_criteria(crit());
    let mut x = Dense::<f64>::vector(&exec, n, 0.0);
    s.apply(&b, &mut x).unwrap();
    let rec = s.logger().snapshot();
    assert_eq!(rec.stop_reason, Some(StopReason::MaxIterations), "{rec:?}");
    assert!(
        !rec.converged() && rec.final_residual > 0.5,
        "gmres/singular must not claim convergence: {rec:?}"
    );
    assert_invariant("gmres/singular", &rec);
}

/// The all-zero operator breaks every Krylov recurrence before the first
/// iteration completes: `Breakdown` with zero counted iterations and an
/// empty history.
#[test]
fn zero_matrix_breaks_down_at_iteration_zero() {
    let exec = Executor::reference();
    let n = 8;
    let a = Arc::new(
        Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &[(0, 0, 0.0)]).unwrap(),
    );
    let crit = || Criteria::iterations_and_reduction(50, 1e-10);
    let b = Dense::<f64>::vector(&exec, n, 1.0);

    macro_rules! case {
        ($name:literal, $solver:expr) => {{
            let s = $solver;
            let mut x = Dense::<f64>::vector(&exec, n, 0.0);
            s.apply(&b, &mut x).unwrap();
            let rec = s.logger().snapshot();
            assert_eq!(rec.stop_reason, Some(StopReason::Breakdown), "{rec:?}");
            assert_eq!(rec.iterations, 0, $name);
            assert!(rec.residual_history.is_empty(), $name);
        }};
    }
    case!("cg", Cg::new(a.clone() as Arc<dyn LinOp<f64>>).unwrap().with_criteria(crit()));
    case!(
        "bicgstab",
        BiCgStab::new(a.clone() as Arc<dyn LinOp<f64>>).unwrap().with_criteria(crit())
    );
    case!("gmres", Gmres::new(a as Arc<dyn LinOp<f64>>).unwrap().with_criteria(crit()));
}

/// The `Criteria` entry point itself: any non-finite residual is a
/// breakdown regardless of the configured criteria.
#[test]
fn criteria_reports_non_finite_residual_as_breakdown() {
    for crit in [
        Criteria::iterations(10),
        Criteria::iterations_and_reduction(10, 1e-8),
        Criteria::iterations(10).with_abs_tolerance(1e-8),
    ] {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                crit.check(1, bad, 1.0),
                Some(StopReason::Breakdown),
                "residual {bad}"
            );
        }
    }
}

/// Satellite convention check: every solver, on every exit path exercised
/// here (converged, iteration-limited, diverged), satisfies
/// `residual_history.len() == iterations`.
#[test]
fn history_length_matches_iterations_for_every_solver() {
    let exec = Executor::reference();
    let a = poisson(&exec, 6);
    let n = a.size().rows;
    let b = Dense::<f64>::vector(&exec, n, 1.0);

    // Converging criteria and a hard 3-iteration cap.
    for crit in [
        Criteria::iterations_and_reduction(500, 1e-9),
        Criteria::iterations(3),
    ] {
        macro_rules! case {
            ($name:literal, $solver:expr) => {{
                let s = $solver;
                let mut x = Dense::<f64>::vector(&exec, n, 0.0);
                s.apply(&b, &mut x).unwrap();
                assert_invariant($name, &s.logger().snapshot());
            }};
        }
        case!("cg", Cg::new(a.clone() as Arc<dyn LinOp<f64>>).unwrap().with_criteria(crit));
        case!("fcg", Fcg::new(a.clone() as Arc<dyn LinOp<f64>>).unwrap().with_criteria(crit));
        case!("cgs", Cgs::new(a.clone() as Arc<dyn LinOp<f64>>).unwrap().with_criteria(crit));
        case!(
            "bicgstab",
            BiCgStab::new(a.clone() as Arc<dyn LinOp<f64>>).unwrap().with_criteria(crit)
        );
        case!(
            "gmres",
            Gmres::new(a.clone() as Arc<dyn LinOp<f64>>).unwrap().with_criteria(crit)
        );
        case!(
            "minres",
            Minres::new(a.clone() as Arc<dyn LinOp<f64>>).unwrap().with_criteria(crit)
        );
        case!(
            "ir",
            Ir::new(a.clone() as Arc<dyn LinOp<f64>>)
                .unwrap()
                .with_solver(Arc::new(Jacobi::new(&*a).unwrap()))
                .unwrap()
                .with_criteria(crit)
        );
        {
            let s = MixedIr::<f64, f32>::new(a.clone())
                .unwrap()
                .with_criteria(crit);
            let mut x = Dense::<f64>::vector(&exec, n, 0.0);
            s.apply(&b, &mut x).unwrap();
            assert_invariant("mixed_ir", &s.logger().snapshot());
        }
    }
}
