//! Acceptance tests for the live telemetry plane: concurrent scrapes under a
//! running solve, the three anomaly detectors on injected faults, a healthy
//! reference solve that must stay anomaly-free, and the inert-path
//! regression (an unattached recorder observes nothing).

use gko::config::Config;
use gko::linop::LinOp;
use gko::log::{Event, Logger};
use gko::matrix::{Csr, Dense};
use gko::preconditioner::Jacobi;
use gko::solver::{Cg, Ir};
use gko::stop::{Criteria, StopReason};
use gko::telemetry::prom;
use gko::{Anomaly, DetectorConfig, Dim2, Executor, FlightRecorder};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn poisson_csr(exec: &Executor, n: usize) -> Csr<f64, i32> {
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 4.0));
        if i > 0 {
            t.push((i, i - 1, -1.0));
            t.push((i - 1, i, -1.0));
        }
    }
    Csr::from_triplets(exec, Dim2::square(n), &t).unwrap()
}

fn solve_cg(exec: &Executor, a: &Arc<Csr<f64, i32>>) -> StopReason {
    let n = a.size().rows;
    let solver = Cg::new(a.clone())
        .unwrap()
        .with_criteria(Criteria::iterations_and_reduction(2 * n, 1e-10));
    let b = Dense::<f64>::filled(exec, Dim2::new(n, 1), 1.0);
    let mut x = Dense::<f64>::zeros(exec, Dim2::new(n, 1));
    solver.apply(&b, &mut x).unwrap();
    solver.logger().snapshot().stop_reason.unwrap()
}

/// Minimal HTTP/1.1 GET over a raw `TcpStream`; returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: telemetry\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Satellite 3: four scraper threads hammer `/metrics` and `/healthz` while
/// CG solves run on an omp-16 executor. Every scrape must be a complete,
/// well-formed document (the strict in-tree parser accepts it), and the
/// server must shut down cleanly afterwards.
#[test]
fn concurrent_scrapes_during_solve_are_never_torn() {
    let exec = Executor::omp(16);
    // This test is about scrape integrity, not detectors: on an
    // oversubscribed CI host (possibly a single core), wall latencies under
    // 4 scraper threads are arbitrarily noisy and a 16-lane pool is
    // genuinely skewed towards the submitting lane, so the two
    // timing-based detectors are switched off here — each has its own
    // deterministic test below.
    exec.enable_flight_recorder_with(DetectorConfig {
        drift_min_solves: u64::MAX,
        imbalance_ratio: f64::INFINITY,
        ..DetectorConfig::default()
    });
    let server = exec.serve_telemetry("127.0.0.1:0").unwrap();
    let addr = server.addr();
    let a = Arc::new(poisson_csr(&exec, 2048));

    let done = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = (0..4)
        .map(|id| {
            let done = done.clone();
            std::thread::spawn(move || {
                let mut scrapes = 0u32;
                while scrapes < 20 || !done.load(Ordering::Acquire) {
                    let (status, body) = http_get(addr, "/metrics");
                    assert_eq!(status, "HTTP/1.1 200 OK", "scraper {id}");
                    prom::validate(&body)
                        .unwrap_or_else(|e| panic!("scraper {id}: invalid exposition: {e}"));
                    let (status, body) = http_get(addr, "/healthz");
                    assert_eq!(status, "HTTP/1.1 200 OK", "scraper {id}");
                    let health = Config::from_json(&body)
                        .unwrap_or_else(|e| panic!("scraper {id}: bad health JSON: {e:?}"));
                    assert_eq!(health.get("status").and_then(|s| s.as_str()), Some("ok"));
                    scrapes += 1;
                }
                scrapes
            })
        })
        .collect();

    for _ in 0..12 {
        let reason = solve_cg(&exec, &a);
        assert!(reason.is_converged(), "reference solve converged: {reason:?}");
    }
    done.store(true, Ordering::Release);
    for handle in scrapers {
        assert!(handle.join().unwrap() >= 20);
    }

    // After the solves: lane series are present and the recorder holds
    // anomaly-free reports for every completed solve.
    let (_, metrics) = http_get(addr, "/metrics");
    for needle in [
        "gko_pool_lane_chunks_total{lane=\"0\"}",
        "gko_pool_lane_busy_ns_total{lane=\"15\"}",
        "# TYPE gko_anomalies_total counter",
        "gko_flight_reports 12",
    ] {
        assert!(metrics.contains(needle), "missing {needle:?} in:\n{metrics}");
    }
    // Healthy solves: the anomaly family stays empty (declared, no samples).
    assert!(
        !metrics.contains("gko_anomalies_total{"),
        "unexpected anomaly samples:\n{metrics}"
    );
    let (_, runs) = http_get(addr, "/runs");
    let doc = Config::from_json(&runs).expect("/runs is valid JSON");
    let reports = doc.get("reports").and_then(|r| r.as_array()).unwrap();
    assert_eq!(reports.len(), 12);
    for report in reports {
        assert!(matches!(report.get("converged"), Some(Config::Bool(true))));
        let anomalies = report.get("anomalies").and_then(|a| a.as_array()).unwrap();
        assert!(anomalies.is_empty(), "healthy solve flagged: {runs}");
    }

    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    server.shutdown();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener closed after shutdown"
    );
}

/// Satellite 4a: Richardson + Jacobi on an indefinite matrix makes no
/// progress (the iteration slowly diverges but stays far below the
/// divergence threshold) — the convergence detector must flag `Stagnation`,
/// and exactly that.
#[test]
fn stagnating_richardson_on_indefinite_matrix_is_flagged() {
    let exec = Executor::reference();
    let recorder = exec.enable_flight_recorder();
    let a = Csr::<f64, i32>::from_triplets(
        &exec,
        Dim2::square(2),
        &[(0, 0, 2.0), (0, 1, 3.0), (1, 0, 3.0), (1, 1, 2.0)],
    )
    .unwrap();
    let jacobi = Arc::new(Jacobi::new(&a).unwrap());
    let solver = Ir::new(Arc::new(a))
        .unwrap()
        .with_solver(jacobi)
        .unwrap()
        .with_criteria(Criteria::iterations(12));
    let b = Dense::<f64>::filled(&exec, Dim2::new(2, 1), 1.0);
    let mut x = Dense::<f64>::zeros(&exec, Dim2::new(2, 1));
    solver.apply(&b, &mut x).unwrap();

    let report = recorder.latest().expect("solve recorded");
    assert_eq!(report.solver, "solver::Ir");
    assert_eq!(report.stop_reason, Some(StopReason::MaxIterations));
    assert!(!report.converged);
    assert_eq!(report.anomalies.len(), 1, "exactly one anomaly: {report:?}");
    match &report.anomalies[0] {
        Anomaly::Stagnation { window, from, to } => {
            assert_eq!(*window, recorder.detector_config().stagnation_window);
            assert!(
                to >= from,
                "residual plateaued or grew over the window: {from} -> {to}"
            );
        }
        other => panic!("expected Stagnation, got {other:?}"),
    }
    assert_eq!(
        recorder.anomaly_counts(),
        vec![("stagnation".to_string(), 1)]
    );
    exec.disable_flight_recorder();
}

/// A fixed amount of CPU busy-work; opaque to the optimizer.
fn spin(iters: u64) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..iters {
        acc += std::hint::black_box((i as f64).sqrt());
    }
    acc
}

/// Satellite 4b: a dispatch where one chunk carries almost all the work
/// skews one lane's busy time far above the mean — the next report must
/// flag `LaneImbalance` on that lane.
#[test]
fn skewed_chunks_trigger_lane_imbalance() {
    let exec = Executor::omp(8);
    // Lower the busy-time floor so the test stays fast on any machine; the
    // ratio threshold (the part under test) keeps its default.
    let recorder = exec.enable_flight_recorder_with(DetectorConfig {
        imbalance_min_busy_ns: 10_000,
        ..DetectorConfig::default()
    });

    // 8 chunks, one lane apiece: chunk 0 does ~20M flops, the rest ~1k.
    let mut out = vec![0.0f64; 8];
    let bounds: Vec<usize> = (0..=8).collect();
    gko::executor::pool::parallel_chunks(&exec, &mut out, &bounds, |i, slot| {
        slot[0] = spin(if i == 0 { 20_000_000 } else { 1_000 });
    });

    // A tiny healthy solve closes out the report carrying the skewed delta.
    let a = Arc::new(poisson_csr(&exec, 64));
    assert!(solve_cg(&exec, &a).is_converged());

    let report = recorder.latest().expect("solve recorded");
    let flagged: Vec<_> = report
        .anomalies
        .iter()
        .filter(|a| a.kind() == "lane_imbalance")
        .collect();
    assert_eq!(flagged.len(), 1, "anomalies: {:?}", report.anomalies);
    match flagged[0] {
        Anomaly::LaneImbalance {
            busy_ns,
            mean_busy_ns,
            ratio,
            ..
        } => {
            assert!(busy_ns > mean_busy_ns);
            assert!(
                *ratio >= recorder.detector_config().imbalance_ratio,
                "ratio {ratio}"
            );
        }
        other => panic!("expected LaneImbalance, got {other:?}"),
    }
    exec.disable_flight_recorder();
}

/// Satellite 4c: a kernel whose p99 jumps three orders of magnitude above
/// its rolling baseline must be flagged `LatencyDrift` — and the healthy
/// solves that built the baseline must not be.
#[test]
fn injected_slow_kernel_triggers_latency_drift() {
    let recorder = FlightRecorder::detached(DetectorConfig::default());
    let healthy_solve = |wall_ns: u64| {
        for _ in 0..8 {
            recorder.on_event(&Event::LinOpApplyCompleted {
                op: "csr",
                wall_ns,
                virtual_ns: 0,
            });
        }
        recorder.on_event(&Event::SolveCompleted {
            solver: "solver::Cg",
            iterations: 8,
            residual: 1e-12,
            reason: StopReason::ResidualReduction,
        });
    };
    // Three healthy solves establish the ~1µs baseline (drift_min_solves).
    for _ in 0..3 {
        healthy_solve(1_000);
    }
    for report in recorder.reports() {
        assert!(report.anomalies.is_empty(), "baseline solve flagged");
    }
    // The injected fault: the same kernel now takes ~1ms. The first slow
    // solve is withheld (a lone slow solve on a noisy host is not a
    // regression); the drift is reported once it persists.
    healthy_solve(1_000_000);
    assert!(
        recorder.latest().unwrap().anomalies.is_empty(),
        "a single slow solve must not be flagged yet"
    );
    healthy_solve(1_000_000);

    let report = recorder.latest().unwrap();
    assert_eq!(report.anomalies.len(), 1, "anomalies: {:?}", report.anomalies);
    match &report.anomalies[0] {
        Anomaly::LatencyDrift {
            op,
            p99_ns,
            baseline_ns,
            ratio,
        } => {
            assert_eq!(op, "csr");
            assert!(p99_ns > baseline_ns);
            assert!(*ratio >= recorder.detector_config().drift_ratio);
        }
        other => panic!("expected LatencyDrift, got {other:?}"),
    }
    assert_eq!(
        recorder.anomaly_counts(),
        vec![("latency_drift".to_string(), 1)]
    );
    // The flagged sample must not poison the baseline: an immediate return
    // to normal latency is healthy again.
    healthy_solve(1_000);
    assert!(recorder.latest().unwrap().anomalies.is_empty());

    // A tail-only spike (a few preempted samples among healthy ones)
    // inflates p99 but not the median — it must NOT be flagged as drift.
    for i in 0..100 {
        recorder.on_event(&Event::LinOpApplyCompleted {
            op: "csr",
            wall_ns: if i < 95 { 1_000 } else { 5_000_000 },
            virtual_ns: 0,
        });
    }
    recorder.on_event(&Event::SolveCompleted {
        solver: "solver::Cg",
        iterations: 100,
        residual: 1e-12,
        reason: StopReason::ResidualReduction,
    });
    let report = recorder.latest().unwrap();
    assert!(
        report.anomalies.is_empty(),
        "tail-only spike misflagged: {:?}",
        report.anomalies
    );
}

/// Satellite 4d: no false positives — repeated converging reference solves
/// through the full recorder produce zero anomalies of any kind.
#[test]
fn healthy_reference_solves_produce_no_anomalies() {
    let exec = Executor::omp(4);
    let recorder = exec.enable_flight_recorder();
    let a = Arc::new(poisson_csr(&exec, 1024));
    for _ in 0..6 {
        assert!(solve_cg(&exec, &a).is_converged());
    }
    assert_eq!(recorder.reports_len(), 6);
    assert_eq!(recorder.anomalies_total(), 0, "{:?}", recorder.anomaly_counts());
    for report in recorder.reports() {
        assert!(report.converged);
        assert!(report.anomalies.is_empty());
        assert!(report.residuals.last <= report.residuals.initial);
        assert!(report.kernels.iter().any(|k| k.op == "csr"));
    }
    exec.disable_flight_recorder();
}

/// Inert-path regression: with no recorder (or any logger) attached, the
/// instrumented sites branch away after one relaxed load — a recorder
/// enabled afterwards has observed nothing.
#[test]
fn detached_recorder_observes_nothing() {
    let exec = Executor::omp(2);
    let a = poisson_csr(&exec, 512);
    assert!(
        !exec.loggers().is_active(),
        "precondition: the fast path is one relaxed load"
    );
    let b = Dense::<f64>::filled(&exec, Dim2::new(512, 1), 1.0);
    let mut x = Dense::<f64>::zeros(&exec, Dim2::new(512, 1));
    for _ in 0..4 {
        a.apply(&b, &mut x).unwrap();
    }
    let recorder = exec.enable_flight_recorder();
    assert_eq!(
        recorder.events_observed(),
        0,
        "pre-attachment kernels must be invisible to the recorder"
    );
    assert_eq!(recorder.reports_len(), 0);
    exec.disable_flight_recorder();
    assert!(!exec.loggers().is_active(), "disable detaches the recorder");
}

/// Satellite: `/runs?limit=N` returns the N newest reports, newest first,
/// with `total`/`returned` exposing the truncation.
#[test]
fn runs_limit_truncates_newest_first() {
    let exec = Executor::omp(2);
    exec.enable_flight_recorder_with(DetectorConfig {
        drift_min_solves: u64::MAX,
        imbalance_ratio: f64::INFINITY,
        ..DetectorConfig::default()
    });
    let server = exec.serve_telemetry("127.0.0.1:0").unwrap();
    let a = Arc::new(poisson_csr(&exec, 256));
    for _ in 0..5 {
        assert!(solve_cg(&exec, &a).is_converged());
    }

    let (status, body) = http_get(server.addr(), "/runs?limit=2");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let doc = Config::from_json(&body).expect("truncated /runs is valid JSON");
    assert_eq!(doc.get("total").and_then(|v| v.as_int()), Some(5));
    assert_eq!(doc.get("returned").and_then(|v| v.as_int()), Some(2));
    let reports = doc.get("reports").and_then(|r| r.as_array()).unwrap();
    assert_eq!(reports.len(), 2);
    let seqs: Vec<i64> = reports
        .iter()
        .map(|r| r.get("seq").and_then(|s| s.as_int()).unwrap())
        .collect();
    assert_eq!(seqs, vec![5, 4], "newest first");

    // No query: everything fits under the default cap, newest still first.
    let (_, body) = http_get(server.addr(), "/runs");
    let doc = Config::from_json(&body).unwrap();
    assert_eq!(doc.get("returned").and_then(|v| v.as_int()), Some(5));
    assert_eq!(
        doc.get("reports").and_then(|r| r.as_array()).unwrap().len(),
        5
    );
    // A malformed limit falls back to the default rather than erroring.
    let (status, _) = http_get(server.addr(), "/runs?limit=bogus");
    assert_eq!(status, "HTTP/1.1 200 OK");
    server.shutdown();
    exec.disable_flight_recorder();
}

/// Satellite: a request line that exceeds the head cap without ever
/// terminating is rejected as malformed, not truncated into a valid path.
#[test]
fn oversized_request_line_is_rejected() {
    let exec = Executor::reference();
    let server = exec.serve_telemetry("127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(16_384));
    stream.write_all(huge.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    assert!(
        text.starts_with("HTTP/1.1 400 Bad Request"),
        "oversized head must 400: {text}"
    );
    server.shutdown();
}

/// Satellite: `/traces` is GET-only like every other endpoint.
#[test]
fn unknown_method_on_traces_is_rejected() {
    let exec = Executor::reference();
    let server = exec.serve_telemetry("127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"POST /traces HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    assert!(
        text.starts_with("HTTP/1.1 405 Method Not Allowed"),
        "{text}"
    );
    // An unknown trace id under GET is a 404 with a JSON error.
    let (status, body) = http_get(server.addr(), "/traces/999999");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    assert!(body.contains("unknown trace id"), "{body}");
    server.shutdown();
}

/// Satellite: HEAD is honored on every route — identical status line and
/// Content-Length to the corresponding GET, with the body suppressed.
#[test]
fn head_requests_mirror_get_headers_without_body() {
    let exec = Executor::reference();
    let server = exec.serve_telemetry("127.0.0.1:0").unwrap();
    for path in ["/metrics", "/healthz", "/traces", "/profile", "/nope"] {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(
            stream,
            "HEAD {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8(raw).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(body.is_empty(), "HEAD {path} must not carry a body: {body:?}");
        let head_status = head.lines().next().unwrap().to_string();
        let head_len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap_or_else(|| panic!("HEAD {path} lacks Content-Length:\n{head}"))
            .parse()
            .unwrap();
        // The advertised length is the GET body's length, not zero.
        let (get_status, get_body) = http_get(server.addr(), path);
        assert_eq!(head_status, get_status, "status parity on {path}");
        assert_eq!(head_len, get_body.len(), "length parity on {path}");
        assert!(head_len > 0, "every route has a body under GET: {path}");
    }
    server.shutdown();
}

/// Satellite: concurrent `/traces` + `/traces/<id>` scrapes during an armed
/// batched solve never observe a torn span tree — every drilled-down trace
/// is valid JSON whose span parents all resolve within the document.
#[test]
fn concurrent_traces_scrape_during_armed_batched_solve() {
    use gko::matrix::{BatchCsr, BatchDense};
    use gko::solver::BatchCg;
    use gko::stop::Criteria;

    let exec = Executor::omp(16);
    exec.enable_flight_recorder_with(DetectorConfig {
        drift_min_solves: u64::MAX,
        imbalance_ratio: f64::INFINITY,
        ..DetectorConfig::default()
    });
    exec.enable_tracing(1);
    let server = exec.serve_telemetry("127.0.0.1:0").unwrap();
    let addr = server.addr();

    let done = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = (0..3)
        .map(|id| {
            let done = done.clone();
            std::thread::spawn(move || {
                let mut drilled = 0u32;
                let mut scrapes = 0u32;
                while scrapes < 10 || !done.load(Ordering::Acquire) {
                    let (status, body) = http_get(addr, "/traces");
                    assert_eq!(status, "HTTP/1.1 200 OK", "scraper {id}");
                    let index = Config::from_json(&body)
                        .unwrap_or_else(|e| panic!("scraper {id}: bad index: {e:?}\n{body}"));
                    let traces = index.get("traces").and_then(|t| t.as_array()).unwrap();
                    for entry in traces {
                        let tid = entry.get("trace_id").and_then(|v| v.as_int()).unwrap();
                        let (status, body) = http_get(addr, &format!("/traces/{tid}"));
                        if status != "HTTP/1.1 200 OK" {
                            continue; // evicted between index and drill-down
                        }
                        let doc = Config::from_json(&body).unwrap_or_else(|e| {
                            panic!("scraper {id}: torn trace JSON: {e:?}\n{body}")
                        });
                        let spans = doc.get("spans").and_then(|s| s.as_array()).unwrap();
                        let ids: Vec<i64> = spans
                            .iter()
                            .map(|s| s.get("id").and_then(|v| v.as_int()).unwrap())
                            .collect();
                        let mut roots = 0;
                        for span in spans {
                            let parent =
                                span.get("parent").and_then(|v| v.as_int()).unwrap();
                            if parent == 0 {
                                roots += 1;
                            } else {
                                assert!(
                                    ids.contains(&parent),
                                    "scraper {id}: dangling parent {parent} in {body}"
                                );
                            }
                        }
                        assert_eq!(roots, 1, "scraper {id}: torn tree in {body}");
                        drilled += 1;
                    }
                    scrapes += 1;
                }
                drilled
            })
        })
        .collect();

    let single = poisson_csr(&exec, 128);
    let batch = Arc::new(BatchCsr::replicated(&single, 6).unwrap());
    for _ in 0..8 {
        let mut b = BatchDense::<f64>::zeros(&exec, 6, gko::Dim2::new(128, 1));
        b.fill(1.0);
        let mut x = BatchDense::<f64>::zeros(&exec, 6, gko::Dim2::new(128, 1));
        let record = BatchCg::new(batch.clone())
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-10))
            .apply_batch(&b, &mut x)
            .unwrap();
        assert!(record.all_converged());
    }
    done.store(true, Ordering::Release);
    for handle in scrapers {
        assert!(
            handle.join().unwrap() > 0,
            "scrapers must have drilled into at least one trace"
        );
    }
    // The tracer gauges are exposed on /metrics while armed.
    let (_, metrics) = http_get(addr, "/metrics");
    for needle in [
        "# TYPE gko_trace_retained gauge",
        "# TYPE gko_trace_drops_total counter",
    ] {
        assert!(metrics.contains(needle), "missing {needle:?} in:\n{metrics}");
    }
    server.shutdown();
    exec.disable_tracing();
}
