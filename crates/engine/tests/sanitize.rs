//! Acceptance tests for the runtime sanitizer: format validators reject
//! corrupted storage, the chunk-overlap detector trips on injected overlap
//! and stays silent on real pool runs, counters attribute verified work,
//! and the schedule-perturbation harness separates order-independent
//! kernels from order-dependent ones.

use gko::linop::LinOp;
use gko::matrix::{Coo, Csr, Dense, Ell, Hybrid, Sellp};
use gko::sanitize::{check_finite, stress_schedules, Schedule};
use gko::{ClaimLog, ClaimViolation, Dim2, Executor};
use std::sync::atomic::{AtomicUsize, Ordering};

fn poisson_csr(exec: &Executor, n: usize) -> Csr<f64, i32> {
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 4.0));
        if i > 0 {
            t.push((i, i - 1, -1.0));
            t.push((i - 1, i, -1.0));
        }
    }
    Csr::from_triplets(exec, Dim2::square(n), &t).unwrap()
}

// ---------------------------------------------------------------------------
// validate(): corrupted storage is rejected, well-formed storage passes
// ---------------------------------------------------------------------------

#[test]
fn well_formed_formats_validate_clean() {
    let exec = Executor::reference();
    let csr = poisson_csr(&exec, 40);
    csr.validate().expect("well-formed CSR");
    Coo::from_csr(&csr).validate().expect("well-formed COO");
    Ell::from_csr(&csr).validate().expect("well-formed ELL");
    Sellp::from_csr(&csr).validate().expect("well-formed SELL-P");
    Hybrid::from_csr(&csr).validate().expect("well-formed Hybrid");
    csr.to_dense().validate().expect("finite dense");
}

#[test]
fn corrupted_csr_is_rejected() {
    let exec = Executor::reference();
    // Out-of-range column index.
    let m = Csr::<f64, i32>::from_raw_unchecked(
        &exec,
        Dim2::square(3),
        vec![0, 1, 2, 3],
        vec![0, 7, 2], // column 7 in a 3-column matrix
        vec![1.0, 2.0, 3.0],
    );
    let err = m.validate().expect_err("column out of range");
    assert!(err.to_string().contains('7'), "names the bad index: {err}");

    // Non-monotone row pointers.
    let m = Csr::<f64, i32>::from_raw_unchecked(
        &exec,
        Dim2::square(3),
        vec![0, 2, 1, 3],
        vec![0, 1, 2],
        vec![1.0, 2.0, 3.0],
    );
    m.validate().expect_err("row_ptrs must be monotone");

    // Row pointers overrunning the value storage: validate() must reject
    // this rather than let a later SpMV slice out of bounds.
    let m = Csr::<f64, i32>::from_raw_unchecked(
        &exec,
        Dim2::square(3),
        vec![0, 1, 2, 9],
        vec![0, 1, 2],
        vec![1.0, 2.0, 3.0],
    );
    m.validate().expect_err("row_ptrs overrun storage");

    // Wrong row_ptrs length entirely.
    let m = Csr::<f64, i32>::from_raw_unchecked(
        &exec,
        Dim2::square(3),
        vec![0, 3],
        vec![0, 1, 2],
        vec![1.0, 2.0, 3.0],
    );
    m.validate().expect_err("row_ptrs length != rows + 1");
}

#[test]
fn corrupted_coo_is_rejected() {
    let exec = Executor::reference();
    // Out-of-bounds row index.
    let m = Coo::<f64, i32>::from_raw_unchecked(
        &exec,
        Dim2::square(3),
        vec![0, 5],
        vec![0, 1],
        vec![1.0, 2.0],
    );
    m.validate().expect_err("row index out of range");

    // Unsorted coordinates break the row-major invariant the COO kernels
    // and the CSR conversion both rely on.
    let m = Coo::<f64, i32>::from_raw_unchecked(
        &exec,
        Dim2::square(3),
        vec![2, 0],
        vec![0, 0],
        vec![1.0, 2.0],
    );
    m.validate().expect_err("coordinates must be sorted");

    // Mismatched array lengths.
    let m = Coo::<f64, i32>::from_raw_unchecked(
        &exec,
        Dim2::square(3),
        vec![0, 1],
        vec![0],
        vec![1.0, 2.0],
    );
    m.validate().expect_err("array lengths must agree");
}

#[test]
fn non_finite_dense_is_rejected() {
    let exec = Executor::reference();
    let mut d = Dense::<f64>::zeros(&exec, Dim2::new(2, 2));
    d.validate().expect("zeros are finite");
    d.as_mut_slice()[3] = f64::NAN;
    let err = d.validate().expect_err("NaN must be rejected");
    assert!(err.to_string().contains("non-finite"), "{err}");
    assert!(check_finite("buf", &[1.0f64, f64::INFINITY]).is_err());
}

// ---------------------------------------------------------------------------
// Chunk-overlap detector
// ---------------------------------------------------------------------------

/// An injected overlapping claim plan must trip the detector with the
/// offending piece and both claiming lanes.
#[test]
fn injected_overlap_trips_detector() {
    let log = ClaimLog::new(3);
    log.record(0, 0);
    log.record(1, 1);
    log.record(2, 1); // lane 2 re-claims piece 1: the injected overlap
    log.record(2, 2);
    match log.verify(3) {
        Err(ClaimViolation::Overlap {
            piece,
            first_lane,
            second_lane,
        }) => {
            assert_eq!(piece, 1);
            assert_eq!((first_lane, second_lane), (1, 2));
        }
        other => panic!("expected Overlap, got {other:?}"),
    }
}

#[test]
fn missing_and_out_of_range_claims_trip_detector() {
    let log = ClaimLog::new(2);
    log.record(0, 0);
    log.record(1, 2);
    assert!(matches!(
        log.verify(4),
        Err(ClaimViolation::Missing { piece: 1 })
    ));
    let log = ClaimLog::new(2);
    log.record(0, 0);
    log.record(0, 9);
    assert!(matches!(
        log.verify(1),
        Err(ClaimViolation::OutOfRange { piece: 9, .. })
    ));
}

/// End to end: with the sanitizer armed, real pool kernels verify clean and
/// the counters attribute every dispatched piece; with it off, the counters
/// do not move (the off path is one relaxed load).
#[test]
fn pool_runs_verify_clean_and_are_counted() {
    let exec = Executor::omp(4);
    let a = poisson_csr(&exec, 600);
    let b = Dense::<f64>::filled(&exec, Dim2::new(600, 1), 1.0);
    let mut x = Dense::<f64>::zeros(&exec, Dim2::new(600, 1));

    // Off by default: nothing is recorded.
    a.apply(&b, &mut x).unwrap();
    assert_eq!(exec.sanitizer_report().jobs_checked, 0);

    // Armed: every pool dispatch is verified as an exact disjoint partition
    // (a violation would panic inside the apply).
    exec.enable_sanitizer();
    let mut want = Dense::<f64>::zeros(&exec, Dim2::new(600, 1));
    a.apply(&b, &mut want).unwrap();
    a.apply(&b, &mut x).unwrap();
    let report = exec.sanitizer_report();
    assert!(report.jobs_checked >= 2, "both applies verified: {report:?}");
    assert!(report.pieces_checked > report.jobs_checked);
    assert_eq!(x.to_host_vec(), want.to_host_vec());

    // Disarmed again: counters freeze.
    exec.disable_sanitizer();
    a.apply(&b, &mut x).unwrap();
    assert_eq!(exec.sanitizer_report(), report);
}

/// The sanitizer must also cover every other format's parallel kernels.
#[test]
fn all_formats_verify_clean_under_sanitizer() {
    let exec = Executor::omp(3);
    exec.enable_sanitizer();
    let csr = poisson_csr(&exec, 300);
    let b = Dense::<f64>::filled(&exec, Dim2::new(300, 1), 1.0);
    let mut x = Dense::<f64>::zeros(&exec, Dim2::new(300, 1));
    csr.apply(&b, &mut x).unwrap();
    Coo::from_csr(&csr).apply(&b, &mut x).unwrap();
    Ell::from_csr(&csr).apply(&b, &mut x).unwrap();
    Sellp::from_csr(&csr).apply(&b, &mut x).unwrap();
    Hybrid::from_csr(&csr).apply(&b, &mut x).unwrap();
    let report = exec.sanitizer_report();
    assert!(report.jobs_checked >= 5, "{report:?}");
}

// ---------------------------------------------------------------------------
// Schedule-perturbation stress harness
// ---------------------------------------------------------------------------

#[test]
fn stress_passes_for_disjoint_kernel() {
    let exec = Executor::omp(4);
    let init = vec![0.0f64; 257];
    let bounds = vec![0, 31, 64, 130, 200, 257];
    stress_schedules(&exec, &init, &bounds, 8, 42, |chunk, xs| {
        for (j, x) in xs.iter_mut().enumerate() {
            *x = (chunk * 1000 + j) as f64;
        }
    })
    .expect("a chunk-local kernel is schedule-independent");
}

#[test]
fn stress_catches_order_dependence() {
    let exec = Executor::omp(4);
    let init = vec![0usize; 8];
    let bounds = vec![0, 2, 4, 6, 8];
    // A hidden shared counter makes the output depend on execution order —
    // exactly the class of bug the harness exists to surface.
    let ticket = AtomicUsize::new(0);
    let err = stress_schedules(&exec, &init, &bounds, 6, 7, |_chunk, xs| {
        let t = ticket.fetch_add(1, Ordering::Relaxed);
        for x in xs.iter_mut() {
            *x = t;
        }
    })
    .expect_err("order-dependent kernel must diverge");
    match err.schedule {
        Schedule::Permuted { seed, .. } => {
            // The failure names a reproducing seed derived from ours.
            assert!((7..7 + 6).contains(&seed), "seed {seed}");
        }
        Schedule::Pool => {} // pool interleaving caught it instead — also fine
    }
    assert!(err.index < 8);
}
