//! Engine-level randomized property tests: format conversions, operator
//! algebra, factorization residuals, and config JSON round trips on random
//! inputs, driven by the deterministic in-tree harness
//! (`pygko_sim::testing`).

use gko::config::Config;
use gko::linop::LinOp;
use gko::matrix::{Coo, Csr, Dense, Ell, Sellp};
use gko::{Dim2, Executor};
use pygko_sim::rng::Xoshiro256pp;
use pygko_sim::testing::{check, sparse_triplets};
use std::collections::BTreeMap;

/// Random square sparse matrix as (n, unique sorted triplets).
fn sparse(rng: &mut Xoshiro256pp) -> (usize, Vec<(usize, usize, f64)>) {
    sparse_triplets(rng, 2, 20, 50, 5.0)
}

/// Random JSON-able config tree (depth-limited, mirrors the old proptest
/// generator including quote/backslash/non-ASCII string content).
fn config_tree(rng: &mut Xoshiro256pp, depth: usize) -> Config {
    const CHARS: &[char] = &[
        'a', 'Z', '0', '9', ' ', '_', '-', '.', '"', '\\', '/', '\u{e9}', '\u{4e16}',
    ];
    let leaf = depth == 0 || rng.below(3) == 0;
    if leaf {
        match rng.below(5) {
            0 => Config::Null,
            1 => Config::Bool(rng.below(2) == 0),
            2 => Config::Int(rng.next_u64() as i64),
            3 => Config::Float(rng.range_f64(-1.0e12, 1.0e12)),
            _ => {
                let len = rng.below_usize(12);
                Config::Str(
                    (0..len)
                        .map(|_| CHARS[rng.below_usize(CHARS.len())])
                        .collect(),
                )
            }
        }
    } else if rng.below(2) == 0 {
        let len = rng.below_usize(4);
        Config::Array((0..len).map(|_| config_tree(rng, depth - 1)).collect())
    } else {
        let len = rng.below_usize(4);
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let key: String = (0..1 + rng.below_usize(6))
                .map(|_| (b'a' + rng.below(26) as u8) as char)
                .collect();
            map.insert(key, config_tree(rng, depth - 1));
        }
        Config::Map(map)
    }
}

/// All four sparse formats produce identical SpMV results.
#[test]
fn all_formats_agree() {
    check("all_formats_agree", |rng| {
        let (n, t) = sparse(rng);
        let exec = Executor::reference();
        let csr = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
        let coo = Coo::from_csr(&csr);
        let ell = Ell::from_csr(&csr);
        let sellp = Sellp::from_csr_with_slice(&csr, 4);
        let b = Dense::<f64>::vector(&exec, n, 1.25);

        let mut want = Dense::zeros(&exec, Dim2::new(n, 1));
        csr.apply(&b, &mut want).unwrap();
        let want = want.to_host_vec();
        macro_rules! check_format {
            ($m:expr) => {{
                let mut x = Dense::zeros(&exec, Dim2::new(n, 1));
                $m.apply(&b, &mut x).unwrap();
                for (a, w) in x.to_host_vec().iter().zip(&want) {
                    assert!((a - w).abs() < 1e-10, "{a} vs {w}");
                }
            }};
        }
        check_format!(coo);
        check_format!(ell);
        check_format!(sellp);
    });
}

/// Transpose is an involution.
#[test]
fn transpose_involution() {
    check("transpose_involution", |rng| {
        let (n, t) = sparse(rng);
        let exec = Executor::reference();
        let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
        let tt = a.transpose().transpose();
        assert_eq!(tt.row_ptrs(), a.row_ptrs());
        assert_eq!(tt.col_idxs(), a.col_idxs());
        assert_eq!(tt.values(), a.values());
    });
}

/// <A b, c> == <b, A^T c> (adjoint identity).
#[test]
fn adjoint_identity() {
    check("adjoint_identity", |rng| {
        let (n, t) = sparse(rng);
        let exec = Executor::reference();
        let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
        let at = a.transpose();
        let bvec: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let cvec: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let b = Dense::from_vec(&exec, Dim2::new(n, 1), bvec).unwrap();
        let c = Dense::from_vec(&exec, Dim2::new(n, 1), cvec).unwrap();

        let mut ab = Dense::zeros(&exec, Dim2::new(n, 1));
        a.apply(&b, &mut ab).unwrap();
        let mut atc = Dense::zeros(&exec, Dim2::new(n, 1));
        at.apply(&c, &mut atc).unwrap();
        let lhs = ab.compute_dot(&c).unwrap();
        let rhs = b.compute_dot(&atc).unwrap();
        assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    });
}

/// Classical and load-balanced CSR strategies agree bit-for-bit (the
/// partition changes scheduling, not per-row accumulation order).
#[test]
fn strategies_agree() {
    use gko::matrix::SpmvStrategy;
    check("strategies_agree", |rng| {
        let (n, t) = sparse(rng);
        let exec = Executor::omp(4);
        let b = Dense::<f64>::vector(&exec, n, 0.5);
        let mut out = Vec::new();
        for s in [SpmvStrategy::Classical, SpmvStrategy::LoadBalance] {
            let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t)
                .unwrap()
                .with_strategy(s);
            let mut x = Dense::zeros(&exec, Dim2::new(n, 1));
            a.apply(&b, &mut x).unwrap();
            out.push(x.to_host_vec());
        }
        assert_eq!(&out[0], &out[1]);
    });
}

/// ILU(0) on a diagonally dominant matrix: (I+L)U matches A exactly on
/// A's sparsity pattern.
#[test]
fn ilu0_matches_on_pattern() {
    check("ilu0_matches_on_pattern", |rng| {
        let (n, mut t) = sparse(rng);
        // Make diagonally dominant with full diagonal.
        let mut row_abs = vec![0.0f64; n];
        t.retain(|&(r, c, _)| r != c);
        for &(r, _, v) in &t {
            row_abs[r] += v.abs();
        }
        for (i, ra) in row_abs.iter().enumerate() {
            t.push((i, i, ra + 1.0));
        }
        t.sort_by_key(|&(r, c, _)| (r, c));
        let exec = Executor::reference();
        let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
        let (l, u) = gko::factorization::ilu0(&a).unwrap();
        let (ld, ud, ad) = (l.to_dense(), u.to_dense(), a.to_dense());
        // Product on the pattern of A.
        for &(r, c, _) in &t {
            let mut acc = ud.at(r, c);
            for k in 0..n {
                acc += ld.at(r, k) * ud.at(k, c);
            }
            assert!(
                (acc - ad.at(r, c)).abs() < 1e-8 * (1.0 + ad.at(r, c).abs()),
                "({r},{c}): {acc} vs {}",
                ad.at(r, c)
            );
        }
    });
}

/// Triangular solve inverts the triangular product.
#[test]
fn triangular_solve_inverts() {
    use gko::solver::LowerTrs;
    use std::sync::Arc;
    check("triangular_solve_inverts", |rng| {
        let (n, t) = sparse(rng);
        let fill = rng.range_f64(1.0, 5.0);
        // Build a lower triangular matrix with a safe diagonal.
        let mut lt: Vec<(usize, usize, f64)> =
            t.iter().copied().filter(|&(r, c, _)| c < r).collect();
        for i in 0..n {
            lt.push((i, i, fill));
        }
        let exec = Executor::reference();
        let l = Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &lt).unwrap());
        let x_true = Dense::<f64>::vector(&exec, n, 0.75);
        let mut b = Dense::zeros(&exec, Dim2::new(n, 1));
        l.apply(&x_true, &mut b).unwrap();
        let solver = LowerTrs::new(l).unwrap();
        let mut x = Dense::zeros(&exec, Dim2::new(n, 1));
        solver.apply(&b, &mut x).unwrap();
        for (got, want) in x.to_host_vec().iter().zip(x_true.to_host_vec()) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    });
}

/// JSON print/parse round trip is the identity on arbitrary trees.
#[test]
fn json_roundtrip() {
    check("json_roundtrip", |rng| {
        let cfg = config_tree(rng, 3);
        let text = cfg.to_json();
        let back = Config::from_json(&text).unwrap();
        assert_eq!(back, cfg);
    });
}

/// Dense GEMV distributes over vector addition.
#[test]
fn gemv_distributes() {
    check("gemv_distributes", |rng| {
        let (n, t) = sparse(rng);
        let exec = Executor::reference();
        let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t)
            .unwrap()
            .to_dense();
        let b1 = Dense::<f64>::vector(&exec, n, 0.5);
        let b2 = Dense::<f64>::vector(&exec, n, -1.5);
        let mut sum = b1.clone();
        sum.add_scaled(1.0, &b2).unwrap();

        let mut lhs = Dense::zeros(&exec, Dim2::new(n, 1));
        a.apply(&sum, &mut lhs).unwrap();
        let mut rhs = Dense::zeros(&exec, Dim2::new(n, 1));
        a.apply(&b1, &mut rhs).unwrap();
        let mut ab2 = Dense::zeros(&exec, Dim2::new(n, 1));
        a.apply(&b2, &mut ab2).unwrap();
        rhs.add_scaled(1.0, &ab2).unwrap();
        for (l, r) in lhs.to_host_vec().iter().zip(rhs.to_host_vec()) {
            assert!((l - r).abs() < 1e-9 * (1.0 + r.abs()));
        }
    });
}
