//! Acceptance tests for the continuous profiling plane: concurrent
//! `/profile` + `/profile/diff` scrapes during an armed omp-16 batched
//! solve (no torn snapshots, folded grammar holds), profiler gauges on
//! `/metrics`, and the executor-level arming contract.

use gko::config::Config;
use gko::matrix::{BatchCsr, BatchDense, Csr};
use gko::solver::BatchCg;
use gko::stop::Criteria;
use gko::telemetry::{prom, DetectorConfig};
use gko::{Dim2, Executor, LinOp, ProfileConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn poisson_csr(exec: &Executor, n: usize) -> Csr<f64, i32> {
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 4.0));
        if i > 0 {
            t.push((i, i - 1, -1.0));
            t.push((i - 1, i, -1.0));
        }
    }
    Csr::from_triplets(exec, Dim2::square(n), &t).unwrap()
}

/// Minimal HTTP/1.1 GET over a raw `TcpStream`; returns (status line, body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: profile\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Asserts the folded-stacks grammar: every line is `path(;path)* <count>`.
fn assert_folded_grammar(text: &str, context: &str) {
    for line in text.lines() {
        let (stack, count) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("{context}: no count separator in {line:?}"));
        count
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("{context}: non-integer count in {line:?}"));
        assert!(!stack.is_empty(), "{context}: empty stack in {line:?}");
        for seg in stack.split(';') {
            assert!(!seg.is_empty(), "{context}: empty segment in {line:?}");
        }
    }
}

/// Recursively checks a `/profile` JSON subtree: every node carries the
/// required fields and children nest one level deeper.
fn assert_flame_node(node: &Config, context: &str) {
    for field in ["name", "kind", "path"] {
        assert!(
            node.get(field).and_then(Config::as_str).is_some(),
            "{context}: node lacks {field}"
        );
    }
    for field in ["calls", "wall_ns", "self_wall_ns", "p50_ns", "p99_ns"] {
        assert!(
            node.get(field).and_then(Config::as_int).is_some(),
            "{context}: node lacks {field}"
        );
    }
    let total = node.get("wall_ns").and_then(Config::as_int).unwrap();
    let own = node.get("self_wall_ns").and_then(Config::as_int).unwrap();
    assert!(own <= total, "{context}: self {own} exceeds total {total}");
    for child in node.get("children").and_then(Config::as_array).unwrap_or(&[]) {
        assert_flame_node(child, context);
    }
}

/// Satellite: three scraper threads hammer `/profile`,
/// `/profile?format=folded`, and `/profile/diff?base=start` while batched
/// CG solves run profiled on an omp-16 executor. Every scrape must be a
/// complete well-formed document — no torn snapshots — and the folded
/// output must parse line by line.
#[test]
fn concurrent_profile_scrapes_during_armed_batched_solve() {
    let exec = Executor::omp(16);
    exec.enable_flight_recorder_with(DetectorConfig {
        drift_min_solves: u64::MAX,
        imbalance_ratio: f64::INFINITY,
        ..DetectorConfig::default()
    });
    exec.enable_profiling();
    assert!(exec.profile().is_armed());
    assert!(
        exec.tracer().is_armed(),
        "profiling must arm tracing (it consumes the span stream)"
    );
    // An empty-window baseline: every later path shows up as "new" in the
    // diff, which is exactly the torn-snapshot-or-not shape being tested.
    exec.profile_commit_baseline("start");
    let server = exec.serve_telemetry("127.0.0.1:0").unwrap();
    let addr = server.addr();

    let done = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = (0..3)
        .map(|id| {
            let done = done.clone();
            std::thread::spawn(move || {
                let mut scrapes = 0u32;
                while scrapes < 10 || !done.load(Ordering::Acquire) {
                    let (status, body) = http_get(addr, "/profile");
                    assert_eq!(status, "HTTP/1.1 200 OK", "scraper {id}");
                    let doc = Config::from_json(&body)
                        .unwrap_or_else(|e| panic!("scraper {id}: torn /profile: {e:?}\n{body}"));
                    for root in doc.get("roots").and_then(Config::as_array).unwrap_or(&[]) {
                        assert_flame_node(root, "scraper");
                    }
                    let (status, folded) = http_get(addr, "/profile?format=folded");
                    assert_eq!(status, "HTTP/1.1 200 OK", "scraper {id}");
                    assert_folded_grammar(&folded, "scraper");
                    let (status, diff) = http_get(addr, "/profile/diff?base=start");
                    assert_eq!(status, "HTTP/1.1 200 OK", "scraper {id}");
                    let diff = Config::from_json(&diff)
                        .unwrap_or_else(|e| panic!("scraper {id}: torn diff: {e:?}"));
                    assert_eq!(diff.get("base").and_then(Config::as_str), Some("start"));
                    assert!(diff.get("rows").and_then(Config::as_array).is_some());
                    scrapes += 1;
                }
                scrapes
            })
        })
        .collect();

    let single = poisson_csr(&exec, 128);
    let batch = Arc::new(BatchCsr::replicated(&single, 6).unwrap());
    for _ in 0..8 {
        let mut b = BatchDense::<f64>::zeros(&exec, 6, Dim2::new(128, 1));
        b.fill(1.0);
        let mut x = BatchDense::<f64>::zeros(&exec, 6, Dim2::new(128, 1));
        let record = BatchCg::new(batch.clone())
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(500, 1e-10))
            .apply_batch(&b, &mut x)
            .unwrap();
        assert!(record.all_converged());
    }
    done.store(true, Ordering::Release);
    for handle in scrapers {
        assert!(handle.join().unwrap() >= 10);
    }

    // Every batched solve was folded (the profiler sees solves the trace
    // store samples out, so the count is exact, not 1-in-sample_n).
    let snap = exec.profile_snapshot();
    assert_eq!(snap.solves, 8, "all armed solves folded: {}", snap.solves);
    assert!(!snap.nodes.is_empty());
    assert!(snap.nodes.len() <= snap.max_nodes);
    assert!(
        snap.nodes.iter().any(|n| n.kind == "chunk" && !n.lanes.is_empty()),
        "chunk nodes carry per-lane attribution"
    );

    // The post-solve diff against the empty baseline reports every live
    // path as new growth.
    let (_, diff) = http_get(addr, "/profile/diff?base=start");
    let diff = Config::from_json(&diff).unwrap();
    let rows = diff.get("rows").and_then(Config::as_array).unwrap();
    assert_eq!(rows.len(), snap.nodes.len());
    assert!(rows
        .iter()
        .any(|r| r.get("delta_pct").and_then(Config::as_str) == Some("new")));

    // Profiler gauges are exposed on /metrics while armed, and the
    // document still passes the strict validator.
    let (_, metrics) = http_get(addr, "/metrics");
    prom::validate(&metrics).expect("strict exposition");
    for needle in [
        "# TYPE gko_profile_nodes gauge",
        "# TYPE gko_profile_evicted_total counter",
        "gko_profile_solves_total 8",
        "gko_build_info{",
        "# TYPE gko_uptime_seconds gauge",
    ] {
        assert!(metrics.contains(needle), "missing {needle:?} in:\n{metrics}");
    }

    // /healthz carries the profiling block.
    let (_, health) = http_get(addr, "/healthz");
    let health = Config::from_json(&health).unwrap();
    let profiling = health.get("profiling").expect("profiling block");
    assert!(matches!(profiling.get("armed"), Some(Config::Bool(true))));
    assert_eq!(profiling.get("solves").and_then(Config::as_int), Some(8));

    server.shutdown();
    exec.disable_profiling();
    assert!(!exec.profile().is_armed());
}

/// A `/profile/diff` request without a base is a 400; an unknown baseline
/// is a 404 listing the known names; `/profile` before any solve serves an
/// empty (but valid) document.
#[test]
fn profile_diff_error_paths_and_empty_window() {
    let exec = Executor::reference();
    let server = exec.serve_telemetry("127.0.0.1:0").unwrap();
    let addr = server.addr();

    // Never armed: /profile still serves a valid empty tree.
    let (status, body) = http_get(addr, "/profile");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let doc = Config::from_json(&body).unwrap();
    assert_eq!(doc.get("solves").and_then(Config::as_int), Some(0));
    let (status, folded) = http_get(addr, "/profile?format=folded");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(folded.is_empty(), "empty window folds to an empty document");

    let (status, body) = http_get(addr, "/profile/diff");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    assert!(body.contains("missing base"), "{body}");
    exec.profile_commit_baseline("known");
    let (status, body) = http_get(addr, "/profile/diff?base=unknown");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    assert!(body.contains("\"known\""), "404 lists known baselines: {body}");
    let (status, _) = http_get(addr, "/profile/diff?base=known");
    assert_eq!(status, "HTTP/1.1 200 OK");
    server.shutdown();
}

/// Executor-level arming contract: a custom node cap is respected under
/// real solves, eviction is observable, and disarm/rearm keeps aggregates.
#[test]
fn tiny_node_cap_bounds_real_solves() {
    let exec = Executor::omp(4);
    exec.enable_flight_recorder_with(DetectorConfig {
        drift_min_solves: u64::MAX,
        imbalance_ratio: f64::INFINITY,
        ..DetectorConfig::default()
    });
    exec.enable_profiling_with(ProfileConfig {
        max_nodes: 8,
        ..ProfileConfig::default()
    });
    let a = Arc::new(poisson_csr(&exec, 256));
    let solver = gko::solver::Cg::new(a)
        .unwrap()
        .with_criteria(Criteria::iterations_and_reduction(512, 1e-10));
    let b = gko::matrix::Dense::<f64>::filled(&exec, Dim2::new(256, 1), 1.0);
    let mut x = gko::matrix::Dense::<f64>::zeros(&exec, Dim2::new(256, 1));
    solver.apply(&b, &mut x).unwrap();

    let snap = exec.profile_snapshot();
    assert!(snap.nodes.len() <= 8, "cap respected: {} nodes", snap.nodes.len());
    assert!(
        exec.profile().evicted() > 0,
        "a real solve tree has more than 8 distinct paths"
    );
    // Disarm: folds stop, aggregates stay readable.
    exec.disable_profiling();
    solver.apply(&b, &mut x).unwrap();
    assert_eq!(exec.profile_snapshot().solves, snap.solves, "disarmed solves not folded");
    exec.disable_tracing();
}
