//! Executor parity: every parallel kernel must produce (near-)identical
//! results on the omp executor — for any thread count — as on the serial
//! reference executor.
//!
//! Chunk partitions are derived from the executor spec, so results are
//! deterministic per spec; across *different* specs the segment structure
//! (and hence floating-point summation order) may differ, which is why the
//! comparisons below use an ulp-distance tolerance rather than bitwise
//! equality. A handful of ulps is the honest bound for reassociated sums of
//! well-scaled data; anything larger indicates a racing or mispartitioned
//! kernel.

use gko::linop::LinOp;
use gko::matrix::{Coo, Csr, Dense, Diagonal, Ell, Hybrid, Sellp, SpmvStrategy};
use gko::{Dim2, Executor};
use pygko_sim::testing::{case_rng, sparse_triplets};

/// Thread counts exercised for every kernel: serial-on-omp, even split,
/// prime (uneven chunk boundaries), and wider than any test matrix's
/// natural chunk count.
const THREADS: [usize; 4] = [1, 2, 7, 16];

/// Ulp tolerance for reassociated sums (different chunk partitions change
/// the order in which partial results are merged).
const TOL_ULPS: u64 = 4;

/// Maps a float to an integer such that consecutive representable values
/// differ by 1 and ordering is preserved (two's-complement trick).
fn ordered(x: f64) -> i64 {
    let b = x.to_bits() as i64;
    if b < 0 {
        i64::MIN - b
    } else {
        b
    }
}

fn ulps(a: f64, b: f64) -> u64 {
    ordered(a).wrapping_sub(ordered(b)).unsigned_abs()
}

fn assert_close(got: &[f64], want: &[f64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            ulps(*g, *w) <= TOL_ULPS,
            "{ctx}[{i}]: {g} vs {w} ({} ulps apart)",
            ulps(*g, *w)
        );
    }
}

/// A named test matrix: shape name, dimensions, triplets.
type Shape = (&'static str, Dim2, Vec<(usize, usize, f64)>);

/// Test matrices covering the degenerate shapes that stress chunk
/// partitioning: zero rows, rows with no entries, a single wide row, and
/// one dense row inside an otherwise sparse matrix (the arrow head that
/// used to break load-balanced bounds).
fn shapes() -> Vec<Shape> {
    let mut shapes: Vec<Shape> = Vec::new();

    shapes.push(("zero_rows", Dim2::new(0, 7), vec![]));
    shapes.push(("all_rows_empty", Dim2::new(9, 9), vec![]));

    // Tridiagonal with a band of empty rows in the middle.
    let n = 40;
    let mut t = Vec::new();
    for i in 0..n {
        if (15..25).contains(&i) {
            continue;
        }
        t.push((i, i, 2.0 + i as f64 * 0.25));
        if i > 0 {
            t.push((i, i - 1, -1.0));
        }
        if i + 1 < n {
            t.push((i, i + 1, -0.5));
        }
    }
    shapes.push(("empty_row_band", Dim2::square(n), t));

    // A single 1 x n dense row.
    let n = 33;
    let row: Vec<(usize, usize, f64)> =
        (0..n).map(|j| (0usize, j, 1.0 + (j as f64) * 0.125)).collect();
    shapes.push(("one_by_n", Dim2::new(1, n), row));

    // Arrow head: dense first row and column plus diagonal.
    let n = 48;
    let mut t = Vec::new();
    for j in 1..n {
        t.push((0, j, 0.5 + j as f64 * 0.0625));
        t.push((j, 0, -0.25));
        t.push((j, j, 3.0 + j as f64 * 0.5));
    }
    t.push((0, 0, 4.0));
    shapes.push(("arrow_head", Dim2::square(n), t));

    // A few deterministic random sparse matrices.
    for case in 0..3u64 {
        let mut rng = case_rng("parity_shapes", case);
        let (n, t) = sparse_triplets(&mut rng, 8, 48, 160, 4.0);
        shapes.push(("random", Dim2::square(n), t));
    }
    shapes
}

/// b-vector with varied, exactly representable entries.
fn rhs(exec: &Executor, n: usize) -> Dense<f64> {
    let v: Vec<f64> = (0..n).map(|i| 0.25 + (i % 13) as f64 * 0.125).collect();
    Dense::from_vec(exec, Dim2::new(n, 1), v).unwrap()
}

/// Runs SpMV (plain and advanced) for a format built by `make` on the
/// given executor; returns (apply result, apply_advanced result).
fn spmv_outputs<F, O>(exec: &Executor, dim: Dim2, t: &[(usize, usize, f64)], make: F)
    -> (Vec<f64>, Vec<f64>)
where
    F: Fn(&Csr<f64, i32>) -> O,
    O: LinOp<f64>,
{
    let csr = Csr::<f64, i32>::from_triplets(exec, dim, t).unwrap();
    let op = make(&csr);
    let b = rhs(exec, dim.cols);
    let mut x = Dense::zeros(exec, Dim2::new(dim.rows, 1));
    op.apply(&b, &mut x).unwrap();
    let plain = x.to_host_vec();
    // Advanced apply with nontrivial alpha/beta on a nonzero x.
    let mut x = Dense::<f64>::vector(exec, dim.rows, 1.5);
    op.apply_advanced(2.0, &b, -0.5, &mut x).unwrap();
    (plain, x.to_host_vec())
}

fn check_format_parity<F, O>(name: &str, make: F)
where
    F: Fn(&Csr<f64, i32>) -> O,
    O: LinOp<f64>,
{
    let reference = Executor::reference();
    for (shape, dim, t) in shapes() {
        let (want_plain, want_adv) = spmv_outputs(&reference, dim, &t, &make);
        for threads in THREADS {
            let omp = Executor::omp(threads);
            let (got_plain, got_adv) = spmv_outputs(&omp, dim, &t, &make);
            assert_close(&got_plain, &want_plain, &format!("{name}/{shape}/omp{threads}"));
            assert_close(
                &got_adv,
                &want_adv,
                &format!("{name}/{shape}/omp{threads}/advanced"),
            );
        }
    }
}

#[test]
fn csr_classical_matches_reference() {
    check_format_parity("csr_classical", |csr| {
        csr.clone().with_strategy(SpmvStrategy::Classical)
    });
}

#[test]
fn csr_load_balance_matches_reference() {
    check_format_parity("csr_load_balance", |csr| {
        csr.clone().with_strategy(SpmvStrategy::LoadBalance)
    });
}

#[test]
fn csr_merge_path_matches_reference() {
    check_format_parity("csr_merge_path", |csr| {
        csr.clone().with_strategy(SpmvStrategy::MergePath)
    });
}

#[test]
fn csr_auto_matches_reference() {
    check_format_parity("csr_auto", |csr| csr.clone().with_strategy(SpmvStrategy::Auto));
}

#[test]
fn coo_matches_reference() {
    check_format_parity("coo", Coo::from_csr);
}

#[test]
fn ell_matches_reference() {
    check_format_parity("ell", Ell::from_csr);
}

#[test]
fn sellp_matches_reference() {
    check_format_parity("sellp", Sellp::from_csr);
}

#[test]
fn hybrid_matches_reference() {
    check_format_parity("hybrid", Hybrid::from_csr);
}

#[test]
fn diagonal_matches_reference() {
    let reference = Executor::reference();
    for n in [0usize, 1, 7, 64, 257] {
        let d: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect();
        let want = {
            let diag = Diagonal::new(&reference, d.clone());
            let b = rhs(&reference, n);
            let mut x = Dense::zeros(&reference, Dim2::new(n, 1));
            diag.apply(&b, &mut x).unwrap();
            x.to_host_vec()
        };
        for threads in THREADS {
            let omp = Executor::omp(threads);
            let diag = Diagonal::new(&omp, d.clone());
            let b = rhs(&omp, n);
            let mut x = Dense::zeros(&omp, Dim2::new(n, 1));
            diag.apply(&b, &mut x).unwrap();
            assert_close(&x.to_host_vec(), &want, &format!("diagonal/n{n}/omp{threads}"));
        }
    }
}

/// Vectors for the BLAS-1 parity checks; entries vary in sign and
/// magnitude so reassociation actually changes intermediate sums.
fn blas1_vectors(exec: &Executor, n: usize) -> (Dense<f64>, Dense<f64>) {
    let a: Vec<f64> = (0..n)
        .map(|i| (if i % 2 == 0 { 1.0 } else { -1.0 }) * (0.5 + (i % 31) as f64 * 0.375))
        .collect();
    let b: Vec<f64> = (0..n).map(|i| 0.125 + (i % 17) as f64 * 0.0625).collect();
    (
        Dense::from_vec(exec, Dim2::new(n, 1), a).unwrap(),
        Dense::from_vec(exec, Dim2::new(n, 1), b).unwrap(),
    )
}

#[test]
fn dot_matches_reference() {
    let reference = Executor::reference();
    for n in [0usize, 1, 13, 100, 1023] {
        let (a, b) = blas1_vectors(&reference, n);
        let want = a.compute_dot(&b).unwrap();
        for threads in THREADS {
            let omp = Executor::omp(threads);
            let (a, b) = blas1_vectors(&omp, n);
            let got = a.compute_dot(&b).unwrap();
            assert!(
                ulps(got, want) <= TOL_ULPS,
                "dot/n{n}/omp{threads}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn norm_matches_reference() {
    let reference = Executor::reference();
    for n in [0usize, 1, 13, 100, 1023] {
        let (a, _) = blas1_vectors(&reference, n);
        let want = a.compute_norm2();
        for threads in THREADS {
            let omp = Executor::omp(threads);
            let (a, _) = blas1_vectors(&omp, n);
            let got = a.compute_norm2();
            assert!(
                ulps(got, want) <= TOL_ULPS,
                "norm/n{n}/omp{threads}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn axpy_matches_reference() {
    let reference = Executor::reference();
    for n in [0usize, 1, 13, 100, 1023] {
        let (mut a, b) = blas1_vectors(&reference, n);
        a.add_scaled(-1.75, &b).unwrap();
        let want = a.to_host_vec();
        for threads in THREADS {
            let omp = Executor::omp(threads);
            let (mut a, b) = blas1_vectors(&omp, n);
            a.add_scaled(-1.75, &b).unwrap();
            // axpy is elementwise (no reassociation), so demand bitwise.
            assert_eq!(a.to_host_vec(), want, "axpy/n{n}/omp{threads}");
        }
    }
}
