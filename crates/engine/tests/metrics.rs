//! Acceptance tests for the engine-wide metrics registry: inert fast path,
//! histogram bucketing, end-to-end aggregation over real kernels, and
//! exporter correctness (Prometheus text, Chrome-trace JSON).

use gko::config::Config;
use gko::linop::LinOp;
use gko::matrix::{Csr, Dense};
use gko::metrics::{bucket_index, bucket_upper_bound, LatencyHistogram, HISTOGRAM_BUCKETS};
use gko::solver::Cg;
use gko::stop::Criteria;
use gko::{Dim2, Executor};
use std::sync::Arc;

fn poisson_csr(exec: &Executor, n: usize) -> Csr<f64, i32> {
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 4.0));
        if i > 0 {
            t.push((i, i - 1, -1.0));
            t.push((i - 1, i, -1.0));
        }
    }
    Csr::from_triplets(exec, Dim2::square(n), &t).unwrap()
}

fn run_spmv(exec: &Executor, a: &Csr<f64, i32>) {
    let n = a.size().cols;
    let b = Dense::<f64>::filled(exec, Dim2::new(n, 1), 1.0);
    let mut x = Dense::<f64>::zeros(exec, Dim2::new(a.size().rows, 1));
    a.apply(&b, &mut x).unwrap();
}

/// The acceptance criterion for the inert path: an executor with no metrics
/// registry (and no other logger) must not record anything anywhere — the
/// instrumented sites branch away after one relaxed load, so a registry
/// enabled *afterwards* starts from zero observed events.
#[test]
fn unlogged_spmv_performs_no_histogram_writes() {
    let exec = Executor::omp(2);
    let a = poisson_csr(&exec, 512);
    assert!(
        !exec.loggers().is_active(),
        "precondition: nothing attached, the OpTimer fast path is one relaxed load"
    );
    assert!(exec.metrics_snapshot().is_none(), "no registry installed");
    for _ in 0..4 {
        run_spmv(&exec, &a);
    }
    // Enable metrics only now: everything that ran before must be invisible.
    let registry = exec.enable_metrics();
    assert_eq!(
        registry.events_observed(),
        0,
        "pre-attachment kernels must not have recorded any event"
    );
    let snap = exec.metrics_snapshot().unwrap();
    assert!(snap.kernels.is_empty());
    assert_eq!(snap.pool_dispatch_ns.count, 0);
    assert_eq!(snap.alloc_bytes.count, 0);
    exec.disable_metrics();
    assert!(!exec.loggers().is_active(), "disable detaches the registry");
}

#[test]
fn executor_metrics_aggregate_spmv_and_pool_dispatches() {
    let exec = Executor::omp(2);
    let a = poisson_csr(&exec, 4096);
    exec.enable_metrics();
    for _ in 0..5 {
        run_spmv(&exec, &a);
    }
    let snap = exec.metrics_snapshot().unwrap();
    let csr = snap.kernel("csr").expect("csr kernel aggregated");
    assert_eq!(csr.calls, 5);
    assert!(csr.virtual_ns.max > 0, "virtual time recorded");
    assert!(csr.wall_ns.p50() <= csr.wall_ns.p99());
    assert!(csr.wall_ns.p99() <= csr.wall_ns.max);
    assert!(
        snap.pool_dispatch_ns.count >= 5,
        "each parallel apply dispatches through the pool: {}",
        snap.pool_dispatch_ns.count
    );
    assert!(snap.alloc_bytes.count > 0, "vector allocations observed");
    assert!(snap.events > 0);

    // Enabling twice returns the same registry (idempotent).
    let again = exec.enable_metrics();
    assert_eq!(again.events_observed(), snap.events);
}

#[test]
fn cg_solve_reports_per_kernel_quantiles_and_iterations() {
    let exec = Executor::reference();
    let a = Arc::new(poisson_csr(&exec, 256));
    exec.enable_metrics();
    let solver = Cg::new(a.clone())
        .unwrap()
        .with_criteria(Criteria::iterations_and_reduction(400, 1e-10));
    let b = Dense::<f64>::filled(&exec, Dim2::new(256, 1), 1.0);
    let mut x = Dense::<f64>::zeros(&exec, Dim2::new(256, 1));
    solver.apply(&b, &mut x).unwrap();
    let snap = exec.metrics_snapshot().unwrap();

    let iters = solver.logger().snapshot().iterations as u64;
    assert!(iters > 0);
    assert_eq!(
        snap.solver_iterations,
        vec![("solver::Cg".to_string(), iters)],
        "iteration events are counted per solver"
    );
    assert_eq!(snap.solves, 1);
    assert!(snap.criterion_checks >= iters);

    // Per-kernel latency quantiles for the kernels a CG solve exercises.
    for op in ["csr", "dense::dot", "solver::Cg"] {
        let k = snap.kernel(op).unwrap_or_else(|| panic!("missing {op}"));
        assert!(k.calls > 0, "{op}");
        let (p50, p95, p99) = (k.wall_ns.p50(), k.wall_ns.p95(), k.wall_ns.p99());
        assert!(p50 <= p95 && p95 <= p99 && p99 <= k.wall_ns.max, "{op}");
    }
    // The solve's inclusive virtual time dominates each inner kernel's.
    let solve = snap.kernel("solver::Cg").unwrap();
    let spmv = snap.kernel("csr").unwrap();
    assert!(solve.virtual_ns.max >= spmv.virtual_ns.max);
}

#[test]
fn chrome_trace_is_valid_json_with_balanced_spans() {
    let exec = Executor::reference();
    let a = Arc::new(poisson_csr(&exec, 128));
    exec.enable_metrics();
    let solver = Cg::new(a.clone())
        .unwrap()
        .with_criteria(Criteria::iterations(10));
    let b = Dense::<f64>::filled(&exec, Dim2::new(128, 1), 1.0);
    let mut x = Dense::<f64>::zeros(&exec, Dim2::new(128, 1));
    solver.apply(&b, &mut x).unwrap();

    let snap = exec.metrics_snapshot().unwrap();
    assert!(!snap.spans.is_empty());
    let trace = snap.to_chrome_trace();

    // Must parse with the engine's own (strict, RFC 8259) JSON parser.
    let doc = Config::from_json(&trace).expect("chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let mut depth_by_lane: std::collections::BTreeMap<i64, i64> = Default::default();
    let (mut begins, mut ends, mut metas) = (0u64, 0u64, 0u64);
    for ev in events {
        let ph = ev.get("ph").and_then(|p| p.as_str()).expect("ph field");
        let tid = ev.get("tid").and_then(|t| t.as_int()).expect("tid field");
        match ph {
            "B" => {
                begins += 1;
                *depth_by_lane.entry(tid).or_default() += 1;
            }
            "E" => {
                ends += 1;
                let d = depth_by_lane.entry(tid).or_default();
                *d -= 1;
                assert!(*d >= 0, "E without matching B on lane {tid}");
            }
            "M" => metas += 1,
            other => panic!("unexpected phase {other}"),
        }
        assert!(ev.get("name").and_then(|n| n.as_str()).is_some());
    }
    assert_eq!(begins, ends, "balanced begin/end pairs");
    assert_eq!(begins, snap.spans.len() as u64);
    assert!(metas >= 2, "process_name + at least one thread_name");
    assert!(depth_by_lane.values().all(|&d| d == 0));
}

#[test]
fn prometheus_export_covers_kernels_and_pool() {
    let exec = Executor::omp(2);
    let a = poisson_csr(&exec, 4096);
    exec.enable_metrics();
    run_spmv(&exec, &a);
    let text = exec.metrics_snapshot().unwrap().to_prometheus();
    for needle in [
        "# TYPE gko_kernel_wall_ns histogram",
        "gko_kernel_calls_total{op=\"csr\"} 1",
        "gko_kernel_virtual_ns_count{op=\"csr\"} 1",
        "gko_pool_dispatch_ns_bucket{le=\"+Inf\"}",
        "gko_alloc_bytes_count",
        "gko_events_total",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    // Cumulative le-buckets: the +Inf bucket equals the count.
    let count_line = text
        .lines()
        .find(|l| l.starts_with("gko_kernel_wall_ns_count{op=\"csr\"}"))
        .unwrap();
    let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert_eq!(count, 1);
}

#[test]
fn histogram_bucket_boundaries_partition_the_range() {
    // Exhaustive boundary check around every power of two.
    for bit in 1..63u32 {
        let lo = 1u64 << (bit - 1);
        let hi = 1u64 << bit;
        assert_eq!(bucket_index(lo), bit as usize, "lower edge of bucket {bit}");
        assert_eq!(bucket_index(hi - 1), bit as usize, "upper edge of bucket {bit}");
        assert_eq!(
            bucket_index(hi),
            (bit as usize + 1).min(HISTOGRAM_BUCKETS - 1),
            "next bucket at 2^{bit}"
        );
    }
    assert_eq!(bucket_upper_bound(0), 0);
    assert_eq!(bucket_upper_bound(1), 1);
    assert_eq!(bucket_upper_bound(10), 1023);
    assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);

    // Recording exactly the boundary values lands them in distinct buckets.
    let h = LatencyHistogram::new();
    for v in [1u64, 2, 4, 8, 16] {
        h.record(v);
    }
    let s = h.snapshot();
    for i in 1..=5usize {
        assert_eq!(s.buckets[i], 1, "bucket {i}");
    }
}
