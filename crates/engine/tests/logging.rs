//! End-to-end event-logging acceptance: a CG solve with `Record` and
//! `Profiler` loggers attached to the executor yields a per-iteration event
//! stream and a per-kernel time breakdown that accounts for the whole solve.

use gko::linop::LinOp;
use gko::log::{Event, Profiler, Record, SharedBuf, Stream};
use gko::matrix::{Csr, Dense};
use gko::solver::Cg;
use gko::stop::{Criteria, StopReason};
use gko::{Dim2, Executor};
use std::sync::Arc;

fn poisson(exec: &Executor, g: usize) -> Arc<Csr<f64, i32>> {
    let n = g * g;
    let mut t = Vec::new();
    for i in 0..g {
        for j in 0..g {
            let r = i * g + j;
            t.push((r, r, 4.0));
            if i > 0 {
                t.push((r, r - g, -1.0));
            }
            if i + 1 < g {
                t.push((r, r + g, -1.0));
            }
            if j > 0 {
                t.push((r, r - 1, -1.0));
            }
            if j + 1 < g {
                t.push((r, r + 1, -1.0));
            }
        }
    }
    Arc::new(Csr::from_triplets(exec, Dim2::square(n), &t).unwrap())
}

#[test]
fn cg_solve_emits_event_stream_and_kernel_breakdown() {
    let exec = Executor::omp(4);
    let a = poisson(&exec, 20);
    let n = a.size().rows;
    let b = Dense::<f64>::vector(&exec, n, 1.0);
    let mut x = Dense::<f64>::vector(&exec, n, 0.0);

    // Attach after constructing operands so every observed kernel belongs
    // to the solve.
    let record = Arc::new(Record::with_capacity(1 << 17));
    let profiler = Arc::new(Profiler::new());
    exec.add_logger(record.clone());
    exec.add_logger(profiler.clone());
    assert_eq!(exec.loggers().len(), 2);

    let solver = Cg::new(a as Arc<dyn LinOp<f64>>)
        .unwrap()
        .with_criteria(Criteria::iterations_and_reduction(500, 1e-9));
    solver.apply(&b, &mut x).unwrap();
    exec.clear_loggers();

    let rec = solver.logger().snapshot();
    assert!(rec.converged());
    let iters = rec.iterations;
    assert!(iters > 10, "poisson(20) CG needs a real iteration count");

    let events = record.events();
    assert_eq!(record.dropped(), 0, "capacity must cover the whole solve");

    // Per-iteration stream: IterationComplete 1..=iters, in order.
    let iterations: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            Event::IterationComplete {
                solver, iteration, ..
            } => {
                assert_eq!(*solver, "solver::Cg");
                Some(*iteration)
            }
            _ => None,
        })
        .collect();
    assert_eq!(iterations, (1..=iters).collect::<Vec<_>>());

    // One criterion check before the loop plus one per iteration.
    let checks = events
        .iter()
        .filter(|e| matches!(e, Event::CriterionChecked { .. }))
        .count();
    assert_eq!(checks, iters + 1);

    // Exactly one completion event, consistent with the logger snapshot.
    let completions: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e, Event::SolveCompleted { .. }))
        .collect();
    assert_eq!(completions.len(), 1);
    match completions[0] {
        Event::SolveCompleted {
            solver,
            iterations,
            reason,
            ..
        } => {
            assert_eq!(*solver, "solver::Cg");
            assert_eq!(*iterations, iters);
            assert_eq!(*reason, StopReason::ResidualReduction);
        }
        _ => unreachable!(),
    }

    // Kernel events arrive as balanced started/completed pairs, and the
    // omp pool reports its dispatches.
    let started = events
        .iter()
        .filter(|e| matches!(e, Event::LinOpApplyStarted { .. }))
        .count();
    let completed = events
        .iter()
        .filter(|e| matches!(e, Event::LinOpApplyCompleted { .. }))
        .count();
    assert_eq!(started, completed);
    assert!(started > 3 * iters, "spmv + dots + axpys each iteration");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::PoolDispatch { chunks, .. } if *chunks > 0)),
        "omp executor must report pool dispatches"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::AllocationComplete { .. })));

    // Profiler folded the same stream into per-kernel aggregates.
    let summary = profiler.summary();
    assert_eq!(summary.solves, 1);
    assert_eq!(summary.iterations as usize, iters);
    assert_eq!(summary.criterion_checks as usize, iters + 1);
    assert!(summary.pool_dispatches > 0);
    assert!(summary.allocations > 0);
    let ops: Vec<&str> = summary.kernels.iter().map(|k| k.op).collect();
    for expected in ["solver::Cg", "csr", "dense::dot", "dense::axpy"] {
        assert!(ops.contains(&expected), "missing {expected} in {ops:?}");
    }
    let spmv = profiler.kernel("csr").unwrap();
    assert_eq!(spmv.calls as usize, iters + 1, "one SpMV per iteration + r0");

    // The per-kernel self times decompose the solve: summed over every
    // kernel nested inside the solver frame they must account for the
    // solver's inclusive virtual time (within 10%; exact up to events
    // outside the frame).
    let solve = profiler.kernel("solver::Cg").unwrap();
    assert_eq!(solve.calls, 1);
    let child_self: u64 = summary
        .kernels
        .iter()
        .filter(|k| k.op != "solver::Cg")
        .map(|k| k.self_virtual_ns)
        .sum();
    let total = solve.virtual_ns;
    assert!(total > 0);
    let covered = child_self + solve.self_virtual_ns;
    let gap = total.abs_diff(covered);
    assert!(
        gap * 10 <= total,
        "kernel breakdown ({covered} ns) must account for the solve \
         ({total} ns) within 10%"
    );
}

/// Loggers attached to the *solver* see iteration-level events only; kernel
/// and allocation events flow to the executor registry.
#[test]
fn solver_attached_logger_sees_iteration_events_only() {
    let exec = Executor::reference();
    let a = poisson(&exec, 8);
    let n = a.size().rows;
    let record = Arc::new(Record::new());
    let solver = Cg::new(a as Arc<dyn LinOp<f64>>)
        .unwrap()
        .with_criteria(Criteria::iterations_and_reduction(200, 1e-8))
        .with_logger(record.clone());
    let b = Dense::<f64>::vector(&exec, n, 1.0);
    let mut x = Dense::<f64>::vector(&exec, n, 0.0);
    solver.apply(&b, &mut x).unwrap();

    assert_eq!(solver.loggers().len(), 1);
    let events = record.events();
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::IterationComplete { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::SolveCompleted { .. })));
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, Event::LinOpApplyStarted { .. })),
        "kernel events belong to the executor registry, not the solver's"
    );
}

/// The `Stream` logger renders a line per event into any writer.
#[test]
fn stream_logger_renders_solve_as_text() {
    let exec = Executor::reference();
    let a = poisson(&exec, 6);
    let n = a.size().rows;
    let buf = SharedBuf::new();
    exec.add_logger(Arc::new(Stream::new(buf.clone())));
    let solver = Cg::new(a as Arc<dyn LinOp<f64>>)
        .unwrap()
        .with_criteria(Criteria::iterations_and_reduction(200, 1e-8));
    let b = Dense::<f64>::vector(&exec, n, 1.0);
    let mut x = Dense::<f64>::vector(&exec, n, 0.0);
    solver.apply(&b, &mut x).unwrap();
    exec.clear_loggers();

    let text = buf.contents();
    assert!(text.lines().count() > 10, "one line per event: {text}");
    assert!(text.contains("[gko] solver::Cg iteration"));
    assert!(text.contains("solve completed"));
    assert!(text.contains("[gko] apply csr completed"));
}

/// `clear_loggers` detaches: subsequent work emits nothing.
#[test]
fn cleared_registry_stops_observing() {
    let exec = Executor::reference();
    let record = Arc::new(Record::new());
    exec.add_logger(record.clone());
    let mut v = Dense::<f64>::vector(&exec, 16, 1.0);
    v.scale(2.0);
    let before = record.len();
    assert!(before > 0);
    exec.clear_loggers();
    assert!(exec.loggers().is_empty());
    v.scale(3.0);
    assert_eq!(record.len(), before);
}
