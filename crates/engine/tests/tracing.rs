//! Acceptance tests for causal span tracing: an armed CG solve on a 16-lane
//! pool yields one rooted span tree whose per-lane chunk spans exactly tile
//! every pool dispatch; anomalous solves are always retained while healthy
//! ones head-sample 1-in-N; slow solves are retained by the latency
//! threshold; and the inert/disarmed paths observe nothing.

use gko::linop::LinOp;
use gko::matrix::{BatchCsr, BatchDense, Csr, Dense};
use gko::preconditioner::Jacobi;
use gko::solver::{BatchCg, Cg, Ir};
use gko::stop::Criteria;
use gko::trace::{SpanKind, TraceConfig, TraceReport, OWNER_LANE};
use gko::{DetectorConfig, Dim2, Executor};
use std::collections::BTreeSet;
use std::sync::Arc;

fn poisson_csr(exec: &Executor, n: usize) -> Csr<f64, i32> {
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 4.0));
        if i > 0 {
            t.push((i, i - 1, -1.0));
            t.push((i - 1, i, -1.0));
        }
    }
    Csr::from_triplets(exec, Dim2::square(n), &t).unwrap()
}

fn solve_cg(exec: &Executor, a: &Arc<Csr<f64, i32>>) {
    let n = a.size().rows;
    let solver = Cg::new(a.clone())
        .unwrap()
        .with_criteria(Criteria::iterations_and_reduction(2 * n, 1e-10));
    let b = Dense::<f64>::filled(exec, Dim2::new(n, 1), 1.0);
    let mut x = Dense::<f64>::zeros(exec, Dim2::new(n, 1));
    solver.apply(&b, &mut x).unwrap();
    assert!(
        solver.logger().snapshot().stop_reason.unwrap().is_converged(),
        "reference solve must converge"
    );
}

/// Flight-recorder thresholds with the timing-based detectors neutralized:
/// these tests assert on *tracing* behaviour, and wall-clock detectors fire
/// spuriously on oversubscribed CI hosts.
fn quiet_detectors() -> DetectorConfig {
    DetectorConfig {
        drift_min_solves: u64::MAX,
        imbalance_ratio: f64::INFINITY,
        ..DetectorConfig::default()
    }
}

/// Structural validation of a span tree: unique ids, exactly one root (the
/// report's `root`), every parent resolvable, and for every dispatch span
/// the chunk spans parented under it exactly tile `0..chunk_count`.
fn assert_rooted_tree(report: &TraceReport, lanes: usize) {
    let mut ids = BTreeSet::new();
    for s in &report.spans {
        assert!(ids.insert(s.id), "duplicate span id {} in {report:?}", s.id);
    }
    let roots: Vec<_> = report.spans.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(roots.len(), 1, "exactly one root span: {report:?}");
    assert_eq!(roots[0].id, report.root);
    assert_eq!(roots[0].kind, SpanKind::Solve);
    for s in &report.spans {
        if s.parent != 0 {
            assert!(
                ids.contains(&s.parent),
                "span {} has dangling parent {}",
                s.id,
                s.parent
            );
        }
        match s.kind {
            SpanKind::Chunk => {
                assert!(
                    (s.lane as usize) < lanes,
                    "chunk lane {} out of range",
                    s.lane
                );
            }
            _ => assert_eq!(s.lane, OWNER_LANE, "owner-thread span has a lane"),
        }
    }
    // Per-dispatch tiling: a dispatch span's `index` is its chunk count, and
    // the chunk spans parented under it must carry exactly the indices
    // 0..count, each once.
    let dispatches: Vec<_> = report
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Dispatch)
        .collect();
    assert!(!dispatches.is_empty(), "pooled solve produced no dispatch spans");
    for d in &dispatches {
        let mut chunk_indices: Vec<u64> = report
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Chunk && s.parent == d.id)
            .map(|s| s.index)
            .collect();
        chunk_indices.sort_unstable();
        let expected: Vec<u64> = (0..d.index).collect();
        assert_eq!(
            chunk_indices, expected,
            "chunk spans must tile dispatch {} exactly",
            d.id
        );
    }
}

/// Tentpole acceptance: an armed CG solve on omp-16 yields a single rooted
/// span tree with solve, iteration, kernel, and dispatch layers, whose
/// per-lane chunk spans exactly tile every pool dispatch.
#[test]
fn armed_cg_solve_yields_one_rooted_tree_with_tiled_chunks() {
    let exec = Executor::omp(16);
    exec.enable_flight_recorder_with(quiet_detectors());
    exec.enable_tracing(1);
    let a = Arc::new(poisson_csr(&exec, 2048));
    solve_cg(&exec, &a);

    let report = exec.tracer().latest().expect("sample_n=1 retains the solve");
    assert_eq!(report.annotation, "solver::Cg");
    assert!(report.converged, "{report:?}");
    assert_eq!(report.stop_reason, "residual_reduction");
    assert!(report.iterations > 0);
    assert_eq!(report.retained, "sampled");
    assert_eq!(report.truncated_spans, 0);
    assert!(report.duration_ns > 0);
    assert_rooted_tree(&report, 16);

    // All four owner-thread layers are present.
    for kind in [
        SpanKind::Solve,
        SpanKind::Iteration,
        SpanKind::Kernel,
        SpanKind::Dispatch,
    ] {
        assert!(
            report.spans.iter().any(|s| s.kind == kind),
            "missing {kind:?} layer: {report:?}"
        );
    }
    // Iteration spans are numbered and parent under the root.
    let iters: Vec<_> = report
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Iteration)
        .collect();
    assert_eq!(iters.len() as u64, report.iterations);
    for it in &iters {
        assert_eq!(it.parent, report.root);
        assert!(it.index >= 1 && it.index <= report.iterations);
    }
    // The flight recorder's report links back to this trace.
    let flight = exec.flight_recorder().unwrap().latest().unwrap();
    assert_eq!(flight.trace_id, Some(report.trace_id));

    // The JSON and Chrome-trace exports are well-formed.
    let doc = gko::config::Config::from_json(&gko::config::json::to_string_pretty(
        &report.to_config(),
    ))
    .expect("trace JSON round-trips");
    assert_eq!(
        doc.get("spans").and_then(|s| s.as_array()).unwrap().len(),
        report.spans.len()
    );
    let chrome = report.to_chrome_trace();
    let chrome_doc = gko::config::Config::from_json(&chrome).expect("chrome trace is JSON");
    assert!(chrome_doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .is_some_and(|e| !e.is_empty()));
    exec.disable_tracing();
}

/// Healthy solves head-sample 1-in-N: with `sample_n = 4`, eight healthy
/// solves retain exactly solves 1 and 5 and count six drops.
#[test]
fn healthy_solves_sample_one_in_n() {
    let exec = Executor::omp(4);
    exec.enable_flight_recorder_with(quiet_detectors());
    exec.enable_tracing(4);
    let a = Arc::new(poisson_csr(&exec, 512));
    for _ in 0..8 {
        solve_cg(&exec, &a);
    }
    let tracer = exec.tracer();
    let reports = tracer.reports();
    assert_eq!(reports.len(), 2, "1-in-4 of 8 solves: {reports:?}");
    assert_eq!(tracer.drops(), 6);
    assert_eq!(
        reports.iter().map(|r| r.seq).collect::<Vec<_>>(),
        vec![1, 5]
    );
    for r in &reports {
        assert_eq!(r.retained, "sampled");
        assert!(r.anomalies.is_empty());
    }
    exec.disable_tracing();
}

/// Anomalous solves are always retained, regardless of the head sample: a
/// stagnating Richardson solve lands in the store with `retained =
/// "anomaly"` even though its ordinal is sampled out.
#[test]
fn anomalous_solves_are_always_retained() {
    let exec = Executor::reference();
    exec.enable_flight_recorder();
    exec.enable_tracing(1_000_000);
    // Solve 1 is the head-kept ordinal; it is healthy and retained as
    // "sampled", so the stagnating solve below is *not* head-kept.
    let a = Arc::new(poisson_csr(&exec, 64));
    solve_cg(&exec, &a);

    let indefinite = Csr::<f64, i32>::from_triplets(
        &exec,
        Dim2::square(2),
        &[(0, 0, 2.0), (0, 1, 3.0), (1, 0, 3.0), (1, 1, 2.0)],
    )
    .unwrap();
    let jacobi = Arc::new(Jacobi::new(&indefinite).unwrap());
    let solver = Ir::new(Arc::new(indefinite))
        .unwrap()
        .with_solver(jacobi)
        .unwrap()
        .with_criteria(Criteria::iterations(12));
    let b = Dense::<f64>::filled(&exec, Dim2::new(2, 1), 1.0);
    let mut x = Dense::<f64>::zeros(&exec, Dim2::new(2, 1));
    solver.apply(&b, &mut x).unwrap();

    let report = exec.tracer().latest().expect("anomalous solve retained");
    assert_eq!(report.seq, 2, "the stagnating solve is ordinal 2");
    assert_eq!(report.retained, "anomaly");
    assert_eq!(report.annotation, "solver::Ir");
    assert!(!report.converged);
    assert_eq!(report.anomalies, vec!["stagnation".to_string()]);
    assert_eq!(report.stop_reason, "max_iterations");
    // Two-way linkage: the flight recorder's run carries this trace id.
    let flight = exec.flight_recorder().unwrap().latest().unwrap();
    assert_eq!(flight.trace_id, Some(report.trace_id));
    assert!(!flight.anomalies.is_empty());
    assert_eq!(exec.tracer().drops(), 0, "anomalies never count as drops");
    exec.disable_tracing();
}

/// Solves slower than the latency threshold are always retained, even when
/// their ordinal is sampled out.
#[test]
fn slow_solves_are_retained_by_latency_threshold() {
    let exec = Executor::omp(2);
    exec.enable_flight_recorder_with(quiet_detectors());
    exec.enable_tracing_with(TraceConfig {
        sample_n: 1_000_000,
        latency_threshold_ns: 1, // every real solve exceeds this
        ..TraceConfig::default()
    });
    let a = Arc::new(poisson_csr(&exec, 256));
    solve_cg(&exec, &a);
    solve_cg(&exec, &a);
    let tracer = exec.tracer();
    let reports = tracer.reports();
    assert_eq!(reports.len(), 2);
    // Solve 1 is head-kept anyway, but the anomaly/latency verdict takes
    // precedence over the head sample; solve 2 survives only via latency.
    assert!(reports.iter().all(|r| r.retained == "latency"), "{reports:?}");
    assert_eq!(tracer.drops(), 0);
    exec.disable_tracing();
}

/// Inert-path regression: an untraced executor assembles nothing, and
/// disabling tracing stops assembly while keeping retained traces readable.
#[test]
fn disarmed_tracer_observes_nothing() {
    let exec = Executor::omp(2);
    let a = Arc::new(poisson_csr(&exec, 256));
    assert!(!exec.tracer().is_armed());
    solve_cg(&exec, &a);
    assert_eq!(exec.tracer().retained(), 0);
    assert_eq!(exec.tracer().drops(), 0);
    assert!(exec.tracer().active_trace_id().is_none());

    exec.enable_flight_recorder_with(quiet_detectors());
    exec.enable_tracing(1);
    solve_cg(&exec, &a);
    assert_eq!(exec.tracer().retained(), 1);

    exec.disable_tracing();
    assert!(!exec.tracer().is_armed());
    solve_cg(&exec, &a);
    assert_eq!(
        exec.tracer().retained(),
        1,
        "disarmed solves must not be traced"
    );
    assert!(exec.tracer().latest().is_some(), "store stays readable");
}

/// Batched solves trace too: one root per `apply_batch`, no synthesized
/// iteration layer (batched solvers emit no per-iteration events), and a
/// batch-outcome stop reason.
#[test]
fn batched_solve_produces_rooted_trace_without_iteration_layer() {
    let exec = Executor::omp(4);
    exec.enable_flight_recorder_with(quiet_detectors());
    exec.enable_tracing(1);
    let single = poisson_csr(&exec, 96);
    let batch = Arc::new(BatchCsr::replicated(&single, 5).unwrap());
    let mut b = BatchDense::<f64>::zeros(&exec, 5, Dim2::new(96, 1));
    b.fill(1.0);
    let mut x = BatchDense::<f64>::zeros(&exec, 5, Dim2::new(96, 1));
    let record = BatchCg::new(batch)
        .unwrap()
        .with_criteria(Criteria::iterations_and_reduction(400, 1e-10))
        .apply_batch(&b, &mut x)
        .unwrap();
    assert!(record.all_converged(), "{record:?}");

    let report = exec.tracer().latest().expect("batched solve retained");
    assert_eq!(report.annotation, "solver::BatchCg");
    assert!(report.converged);
    assert!(
        report.stop_reason.starts_with("batch: 5/5 converged"),
        "{}",
        report.stop_reason
    );
    assert!(
        report.spans.iter().all(|s| s.kind != SpanKind::Iteration),
        "batched solves have no iteration layer: {report:?}"
    );
    assert_rooted_tree(&report, 4);
    exec.disable_tracing();
}
