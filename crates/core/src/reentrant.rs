//! A minimal reentrant mutex built on `std` primitives.
//!
//! `parking_lot::ReentrantMutex` cannot be vendored in this offline build, so
//! the GIL analog uses this implementation instead: a plain mutex/condvar
//! pair plus an owner tag, allowing the owning thread to re-lock without
//! deadlocking (exactly the property the CPython GIL has).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Process-unique numeric thread ids (`std::thread::ThreadId` does not expose
/// a stable integer, so we mint our own).
// atomic: counter
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

fn current_thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// A mutex the owning thread may lock again without deadlocking.
///
/// Only the zero-sized payload case is needed here, so no data access is
/// provided — the guard is purely a critical-section token.
pub struct ReentrantMutex {
    /// Numeric id of the owning thread, 0 when unowned. Written only while
    /// `inner` is held; read lock-free on the reentrant fast path (a thread
    /// can only observe its *own* id there, which it itself published).
    owner: AtomicU64, // atomic: flag
    /// Recursion depth; touched only by the owning thread.
    depth: UnsafeCell<usize>,
    inner: Mutex<()>, // lock: reentrant.inner
    unlocked: Condvar,
}

// SAFETY: `depth` is only accessed by the thread that owns the lock, and
// ownership handoff is synchronized through `inner`.
unsafe impl Sync for ReentrantMutex {}
unsafe impl Send for ReentrantMutex {}

impl ReentrantMutex {
    /// Creates an unlocked mutex (usable in `static` position).
    pub const fn new() -> Self {
        ReentrantMutex {
            owner: AtomicU64::new(0),
            depth: UnsafeCell::new(0),
            inner: Mutex::new(()),
            unlocked: Condvar::new(),
        }
    }

    /// Acquires the lock, returning a guard that releases it on drop.
    pub fn lock(&self) -> ReentrantGuard<'_> {
        let me = current_thread_id();
        if self.owner.load(Ordering::Acquire) == me {
            // Reentrant fast path: we already hold the lock.
            // SAFETY: `owner == me` means this thread holds the lock, so it
            // is the only one touching `depth`.
            unsafe { *self.depth.get() += 1 };
            return ReentrantGuard { mutex: self };
        }
        let mut held = self.inner.lock().expect("reentrant mutex poisoned");
        while self.owner.load(Ordering::Relaxed) != 0 {
            held = self.unlocked.wait(held).expect("reentrant mutex poisoned");
        }
        self.owner.store(me, Ordering::Release);
        // SAFETY: we just became the owner under `inner`, so no other
        // thread can reach `depth` until we release ownership.
        unsafe { *self.depth.get() = 1 };
        ReentrantGuard { mutex: self }
    }
}

impl Default for ReentrantMutex {
    fn default() -> Self {
        ReentrantMutex::new()
    }
}

/// Lock token returned by [`ReentrantMutex::lock`].
pub struct ReentrantGuard<'a> {
    mutex: &'a ReentrantMutex,
}

impl Drop for ReentrantGuard<'_> {
    fn drop(&mut self) {
        // SAFETY: only the owning thread holds guards, so `depth` is ours.
        let depth = unsafe { &mut *self.mutex.depth.get() };
        *depth -= 1;
        if *depth == 0 {
            let _held = self.mutex.inner.lock().expect("reentrant mutex poisoned");
            self.mutex.owner.store(0, Ordering::Release);
            self.mutex.unlocked.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn reentrant_locking_does_not_deadlock() {
        let m = ReentrantMutex::new();
        let g1 = m.lock();
        let g2 = m.lock();
        drop(g2);
        drop(g1);
        let _g3 = m.lock();
    }

    #[test]
    fn excludes_other_threads() {
        let m = Arc::new(ReentrantMutex::new());
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let _g = m.lock();
                        // Non-atomic read-modify-write under the lock; torn
                        // updates would lose counts.
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn nested_guards_release_in_any_order() {
        let m = ReentrantMutex::new();
        let g1 = m.lock();
        let g2 = m.lock();
        drop(g1);
        drop(g2);
        // Another thread can now acquire it.
        let m = Arc::new(m);
        let m2 = Arc::clone(&m);
        std::thread::spawn(move || {
            let _g = m2.lock();
        })
        .join()
        .unwrap();
    }
}
