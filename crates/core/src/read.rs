//! `pg.read` / `pg.write` — Matrix Market IO (Listing 1 lines 4–7).

use crate::device::Device;
use crate::error::{PyGinkgoError, PyResult};
use crate::matrix::SparseMatrix;
use std::path::Path;

/// Reads a Matrix Market file into a [`SparseMatrix`]:
/// `pg.read(device=dev, path="m1.mtx", dtype="double", format="Csr")`.
pub fn read(
    device: &Device,
    path: impl AsRef<Path>,
    dtype: &str,
    format: &str,
) -> PyResult<SparseMatrix> {
    read_with_index_type(device, path, dtype, "int32", format)
}

/// Like [`read`] with an explicit index type.
pub fn read_with_index_type(
    device: &Device,
    path: impl AsRef<Path>,
    dtype: &str,
    index_type: &str,
    format: &str,
) -> PyResult<SparseMatrix> {
    let data = pygko_mtx::read_mtx_file(path.as_ref()).map_err(|e| match e {
        pygko_mtx::MtxError::Io(io) => PyGinkgoError::Os(io.to_string()),
        other => PyGinkgoError::Value(other.to_string()),
    })?;
    SparseMatrix::from_triplets(
        device,
        (data.rows, data.cols),
        &data.entries,
        dtype,
        index_type,
        format,
    )
}

/// Writes a matrix to a Matrix Market file.
pub fn write(matrix: &SparseMatrix, path: impl AsRef<Path>) -> PyResult<()> {
    let (rows, cols) = matrix.shape();
    let triplets = matrix.to_triplets();
    pygko_mtx::write_mtx_file(path, rows, cols, &triplets)
        .map_err(|e| PyGinkgoError::Os(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::device;
    use crate::tensor::as_tensor;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pyginkgo_read_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn listing_1_read_flow() {
        let path = temp_path("m1.mtx");
        std::fs::write(
            &path,
            "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 4.0\n1 2 1.0\n2 2 2.0\n",
        )
        .unwrap();
        let dev = device("reference").unwrap();
        let mtx = read(&dev, &path, "double", "Csr").unwrap();
        assert_eq!(mtx.shape(), (2, 2));
        assert_eq!(mtx.nnz(), 3);
        let b = as_tensor(vec![1.0, 1.0], &dev, (2, 1), "double").unwrap();
        assert_eq!(mtx.spmv(&b).unwrap().to_vec(), vec![5.0, 2.0]);
    }

    #[test]
    fn write_read_roundtrip() {
        let dev = device("reference").unwrap();
        let m = SparseMatrix::from_triplets(
            &dev,
            (3, 3),
            &[(0, 1, 1.5), (2, 2, -2.0)],
            "double",
            "int32",
            "Coo",
        )
        .unwrap();
        let path = temp_path("rt.mtx");
        write(&m, &path).unwrap();
        let back = read(&dev, &path, "double", "Coo").unwrap();
        assert_eq!(back.to_dense().to_vec(), m.to_dense().to_vec());
    }

    #[test]
    fn missing_file_is_os_error() {
        let dev = device("reference").unwrap();
        let err = read(&dev, "/definitely/not/here.mtx", "double", "Csr").unwrap_err();
        assert!(matches!(err, PyGinkgoError::Os(_)), "{err}");
    }

    #[test]
    fn malformed_file_is_value_error() {
        let path = temp_path("bad.mtx");
        std::fs::write(&path, "this is not matrix market\n").unwrap();
        let dev = device("reference").unwrap();
        let err = read(&dev, &path, "double", "Csr").unwrap_err();
        assert!(matches!(err, PyGinkgoError::Value(_)), "{err}");
    }
}
