//! Preconditioner bindings: `pg.preconditioner.Ilu(dev, mtx)` and friends
//! (Listing 1 line 17, Fig. 2).

use crate::device::Device;
use crate::error::{PyGinkgoError, PyResult};
use crate::gil::binding_call;
use crate::matrix::{MatrixFormat, MatrixImpl, SparseMatrix};
use gko::preconditioner::{Ic, Ilu, Jacobi};
use gko::LinOp;
use pygko_half::Half;
use std::sync::Arc;

/// Type-erased preconditioner operator, one variant per value type.
#[derive(Clone)]
pub(crate) enum PrecondImpl {
    Half(Arc<dyn LinOp<Half>>),
    Float(Arc<dyn LinOp<f32>>),
    Double(Arc<dyn LinOp<f64>>),
}

/// A generated preconditioner, ready to attach to a solver.
#[derive(Clone)]
pub struct Preconditioner {
    pub(crate) inner: PrecondImpl,
    kind: &'static str,
    device: Device,
}

impl Preconditioner {
    /// Preconditioner kind (`"jacobi"`, `"ilu"`, `"ic"`).
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// The device the factors live on.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

#[derive(Clone, Copy)]
enum Kind {
    Jacobi { block_size: usize },
    Ilu,
    Ic,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Jacobi { .. } => "jacobi",
            Kind::Ilu => "ilu",
            Kind::Ic => "ic",
        }
    }
}

fn generate(device: &Device, matrix: &SparseMatrix, kind: Kind) -> PyResult<Preconditioner> {
    binding_call(device, || {
        // Factorizations work on CSR; convert COO inputs transparently,
        // exactly like Ginkgo's factory generate() would.
        let csr;
        let source = if matrix.format() == MatrixFormat::Csr {
            matrix
        } else {
            csr = matrix.convert("Csr")?;
            &csr
        };

        macro_rules! build {
            ($m:expr, $tag:ident) => {{
                let op: PrecondImpl = match kind {
                    Kind::Jacobi { block_size } => PrecondImpl::$tag(Arc::new(
                        Jacobi::with_block_size($m.as_ref(), block_size)
                            .map_err(PyGinkgoError::from)?,
                    )),
                    Kind::Ilu => PrecondImpl::$tag(Arc::new(
                        Ilu::new($m.as_ref()).map_err(PyGinkgoError::from)?,
                    )),
                    Kind::Ic => PrecondImpl::$tag(Arc::new(
                        Ic::new($m.as_ref()).map_err(PyGinkgoError::from)?,
                    )),
                };
                op
            }};
        }
        let inner = match &source.inner {
            MatrixImpl::CsrHalfI32(m) => build!(m, Half),
            MatrixImpl::CsrHalfI64(m) => build!(m, Half),
            MatrixImpl::CsrFloatI32(m) => build!(m, Float),
            MatrixImpl::CsrFloatI64(m) => build!(m, Float),
            MatrixImpl::CsrDoubleI32(m) => build!(m, Double),
            MatrixImpl::CsrDoubleI64(m) => build!(m, Double),
            _ => unreachable!("converted to CSR above"),
        };
        Ok(Preconditioner {
            inner,
            kind: kind.name(),
            device: device.clone(),
        })
    })
}

/// Scalar Jacobi preconditioner.
pub fn jacobi(device: &Device, matrix: &SparseMatrix) -> PyResult<Preconditioner> {
    generate(device, matrix, Kind::Jacobi { block_size: 1 })
}

/// Block Jacobi with the given block size (Listing 2's `max_block_size`).
pub fn jacobi_with_block_size(
    device: &Device,
    matrix: &SparseMatrix,
    block_size: usize,
) -> PyResult<Preconditioner> {
    if block_size == 0 {
        return Err(PyGinkgoError::Value("block size must be positive".into()));
    }
    generate(device, matrix, Kind::Jacobi { block_size })
}

/// ILU(0) preconditioner (Listing 1's `pg.preconditioner.Ilu(dev, mtx)`).
pub fn ilu(device: &Device, matrix: &SparseMatrix) -> PyResult<Preconditioner> {
    generate(device, matrix, Kind::Ilu)
}

/// IC(0) preconditioner for SPD systems.
pub fn ic(device: &Device, matrix: &SparseMatrix) -> PyResult<Preconditioner> {
    generate(device, matrix, Kind::Ic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::device;

    fn spd(dev: &Device, format: &str, dtype: &str) -> SparseMatrix {
        let n = 10;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        SparseMatrix::from_triplets(dev, (n, n), &t, dtype, "int32", format).unwrap()
    }

    #[test]
    fn all_kinds_generate_on_csr() {
        let dev = device("reference").unwrap();
        let m = spd(&dev, "Csr", "double");
        assert_eq!(jacobi(&dev, &m).unwrap().kind(), "jacobi");
        assert_eq!(ilu(&dev, &m).unwrap().kind(), "ilu");
        assert_eq!(ic(&dev, &m).unwrap().kind(), "ic");
        assert_eq!(jacobi_with_block_size(&dev, &m, 2).unwrap().kind(), "jacobi");
    }

    #[test]
    fn coo_matrices_are_converted_transparently() {
        let dev = device("reference").unwrap();
        let m = spd(&dev, "Coo", "float");
        assert!(ilu(&dev, &m).is_ok());
    }

    #[test]
    fn half_precision_preconditioners_exist() {
        let dev = device("reference").unwrap();
        let m = spd(&dev, "Csr", "half");
        assert!(jacobi(&dev, &m).is_ok());
    }

    #[test]
    fn singular_matrix_raises_runtime_error() {
        let dev = device("reference").unwrap();
        let m = SparseMatrix::from_triplets(
            &dev,
            (2, 2),
            &[(0, 1, 1.0), (1, 0, 1.0)],
            "double",
            "int32",
            "Csr",
        )
        .unwrap();
        assert!(matches!(ilu(&dev, &m), Err(PyGinkgoError::Runtime(_))));
    }

    #[test]
    fn zero_block_size_is_a_value_error() {
        let dev = device("reference").unwrap();
        let m = spd(&dev, "Csr", "double");
        assert!(matches!(
            jacobi_with_block_size(&dev, &m, 0),
            Err(PyGinkgoError::Value(_))
        ));
    }
}
