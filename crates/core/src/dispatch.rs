//! The pre-instantiation registry (§5.1).
//!
//! C++ function overloading does not exist in Python, so pyGinkgo
//! pre-instantiates every template combination under a mangled name
//! (`funcxx_int`, `funcxx_float`) inside the `pyGinkgoBindings` module and
//! dispatches to them from single-entry-point Python functions. This module
//! makes that registry explicit: it enumerates every instantiated kernel
//! the facade can dispatch to, and offers the lookup the dynamic layer uses.

use crate::dtype::{DType, IndexType};
use crate::error::{PyGinkgoError, PyResult};
use crate::matrix::MatrixFormat;

/// One pre-instantiated binding, identified by its mangled name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BindingEntry {
    /// Operation (`"spmv"`, `"convert"`, `"solve"`...).
    pub op: &'static str,
    /// Storage format the instantiation is bound to.
    pub format: MatrixFormat,
    /// Value type.
    pub dtype: DType,
    /// Index type.
    pub index_type: IndexType,
}

impl BindingEntry {
    /// The mangled symbol name, e.g. `"spmv_csr_double_int32"`.
    pub fn mangled(&self) -> String {
        format!(
            "{}_{}_{}_{}",
            self.op,
            self.format.name().to_ascii_lowercase(),
            self.dtype.name(),
            self.index_type.name()
        )
    }
}

/// Operations with per-(format, dtype, itype) instantiations.
pub const OPS: [&str; 4] = ["spmv", "spmv_advanced", "convert", "solve"];

/// Enumerates every pre-instantiated binding (the Table 1 cross product
/// times the formats and operations).
pub fn registry() -> Vec<BindingEntry> {
    let mut out = Vec::new();
    for &op in &OPS {
        for format in [MatrixFormat::Csr, MatrixFormat::Coo] {
            for dtype in DType::all() {
                for index_type in IndexType::all() {
                    out.push(BindingEntry {
                        op,
                        format,
                        dtype,
                        index_type,
                    });
                }
            }
        }
    }
    out
}

/// Resolves the binding a dynamic call dispatches to; errors mirror what a
/// Python user sees when requesting an uninstantiated combination.
pub fn lookup(
    op: &str,
    format: MatrixFormat,
    dtype: DType,
    index_type: IndexType,
) -> PyResult<BindingEntry> {
    if !OPS.contains(&op) {
        return Err(PyGinkgoError::Value(format!("unknown operation '{op}'")));
    }
    Ok(BindingEntry {
        op: OPS.iter().find(|&&o| o == op).copied().expect("checked"),
        format,
        dtype,
        index_type,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_the_full_cross_product() {
        let reg = registry();
        // 4 ops x 2 formats x 3 dtypes x 2 index types.
        assert_eq!(reg.len(), 4 * 2 * 3 * 2);
        // All mangled names are unique.
        let mut names: Vec<String> = reg.iter().map(BindingEntry::mangled).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), reg.len());
    }

    #[test]
    fn mangling_matches_the_papers_scheme() {
        let e = lookup("spmv", MatrixFormat::Csr, DType::Double, IndexType::Int32).unwrap();
        assert_eq!(e.mangled(), "spmv_csr_double_int32");
        let e = lookup("convert", MatrixFormat::Coo, DType::Half, IndexType::Int64).unwrap();
        assert_eq!(e.mangled(), "convert_coo_half_int64");
    }

    #[test]
    fn unknown_ops_are_rejected() {
        assert!(lookup("fft", MatrixFormat::Csr, DType::Float, IndexType::Int32).is_err());
    }
}
