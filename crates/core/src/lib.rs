//! pyGinkgo-in-Rust: a Pythonic, dynamically typed operator facade over the
//! `gko` engine — the reproduction of the paper's primary contribution.
//!
//! The real pyGinkgo wraps Ginkgo's C++ templates with pybind11 and exposes
//! a NumPy/PyTorch-flavoured API. This crate reproduces that architecture
//! faithfully (paper §3–§5):
//!
//! * **Dynamic typing at the boundary.** Users pass dtype *strings*
//!   (`"double"`, `"float32"`, ...) and get type-erased [`Tensor`]s and
//!   [`SparseMatrix`]es; dispatch to the pre-instantiated monomorphic
//!   kernels happens at runtime ([`dispatch`], §5.1's
//!   `funcxx_int`/`funcxx_float` scheme).
//! * **A GIL analog.** Every facade call acquires a global lock and charges
//!   a calibrated per-call binding cost to the device timeline ([`gil`]),
//!   reproducing the overhead the paper measures in §6.3.
//! * **The Listing 1 API.** [`device`], [`read`], [`as_tensor`],
//!   [`solver::gmres`] + preconditioners, and `apply` returning
//!   `(logger, result)`.
//! * **The Listing 2 config path.** [`solve`] builds a config dictionary,
//!   serializes it to JSON, and hands it to the engine's generic
//!   config-solver entry point — no temporary files.
//! * **Pure-"Python" algorithms.** [`algorithms`] implements Rayleigh–Ritz
//!   (plus power iteration and Lanczos) entirely in facade-level operations,
//!   demonstrating the extensibility story of §3.4.
//!
//! # Quickstart (Listing 1 analog)
//!
//! ```
//! use pyginkgo as pg;
//!
//! let dev = pg::device("reference").unwrap();
//! // A tiny SPD system instead of the paper's m1.mtx download.
//! let mtx = pg::SparseMatrix::from_triplets(
//!     &dev, (2, 2), &[(0, 0, 4.0), (1, 1, 2.0)], "double", "int32", "Csr",
//! ).unwrap();
//! let b = pg::as_tensor_fill(&dev, (2, 1), "double", 1.0).unwrap();
//! let mut x = pg::as_tensor_fill(&dev, (2, 1), "double", 0.0).unwrap();
//!
//! let pre = pg::preconditioner::jacobi(&dev, &mtx).unwrap();
//! let solver = pg::solver::gmres(&dev, &mtx, Some(pre), 1000, 30, 1e-6).unwrap();
//! let logger = solver.apply(&b, &mut x).unwrap();
//! assert!(logger.converged());
//! assert!((x.get(0, 0).unwrap() - 0.25).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod algorithms;
pub mod config_solver;
pub mod conv;
pub mod device;
pub mod dispatch;
pub mod dtype;
pub mod error;
pub mod gil;
pub mod logger;
pub mod matrix;
pub mod preconditioner;
pub mod read;
pub mod reentrant;
pub mod solver;
pub mod tensor;

pub use config_solver::{solve, solve_from_config_file};
pub use conv::conv2d;
pub use device::{device, device_with_id, Device};
pub use dtype::{DType, IndexType};
pub use error::{PyGinkgoError, PyResult};
pub use gko::{HistogramSnapshot, MetricsSnapshot};
pub use logger::{Logger, LoggerData, ProfileEntry};
pub use matrix::{MatrixFormat, SparseMatrix};
pub use read::{read, write};
pub use tensor::{as_tensor, as_tensor_fill, Tensor};
