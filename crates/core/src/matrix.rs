//! Type-erased sparse matrices.
//!
//! Ginkgo's templates would generate one class per (format, value type,
//! index type) combination; pybind11 bindings pre-instantiate all of them
//! and the Python layer dispatches at runtime (§5.1). [`SparseMatrix`] is
//! that mechanism in Rust: an enum with one variant per pre-instantiated
//! combination (2 formats x 3 value types x 2 index types = 12), and
//! macro-generated dispatch.

use crate::device::Device;
use crate::dtype::{DType, IndexType};
use crate::error::{PyGinkgoError, PyResult};
use crate::gil::binding_call;
use crate::tensor::{Tensor, TensorData};
use gko::matrix::{Coo, Csr, SpmvStrategy};
use gko::{Dim2, LinOp, Value};
use pygko_half::Half;
use std::sync::Arc;

/// Sparse storage format exposed by the facade.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatrixFormat {
    /// Compressed sparse row.
    Csr,
    /// Coordinate.
    Coo,
}

impl MatrixFormat {
    /// Parses `"Csr"`/`"csr"`/`"Coo"`/... (Listing 1 passes `format="Csr"`).
    pub fn parse(s: &str) -> PyResult<Self> {
        match s.to_ascii_lowercase().as_str() {
            "csr" => Ok(MatrixFormat::Csr),
            "coo" | "coordinate" => Ok(MatrixFormat::Coo),
            other => Err(PyGinkgoError::Value(format!(
                "unknown matrix format '{other}' (expected Csr or Coo)"
            ))),
        }
    }

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            MatrixFormat::Csr => "Csr",
            MatrixFormat::Coo => "Coo",
        }
    }
}

/// One variant per pre-instantiated (format, value, index) combination.
#[derive(Clone, Debug)]
pub(crate) enum MatrixImpl {
    CsrHalfI32(Arc<Csr<Half, i32>>),
    CsrHalfI64(Arc<Csr<Half, i64>>),
    CsrFloatI32(Arc<Csr<f32, i32>>),
    CsrFloatI64(Arc<Csr<f32, i64>>),
    CsrDoubleI32(Arc<Csr<f64, i32>>),
    CsrDoubleI64(Arc<Csr<f64, i64>>),
    CooHalfI32(Arc<Coo<Half, i32>>),
    CooHalfI64(Arc<Coo<Half, i64>>),
    CooFloatI32(Arc<Coo<f32, i32>>),
    CooFloatI64(Arc<Coo<f32, i64>>),
    CooDoubleI32(Arc<Coo<f64, i32>>),
    CooDoubleI64(Arc<Coo<f64, i64>>),
}

/// Dispatches over every variant, binding the inner `Arc` to `$m`.
macro_rules! with_impl {
    ($data:expr, $m:ident => $body:expr) => {
        match $data {
            MatrixImpl::CsrHalfI32($m) => $body,
            MatrixImpl::CsrHalfI64($m) => $body,
            MatrixImpl::CsrFloatI32($m) => $body,
            MatrixImpl::CsrFloatI64($m) => $body,
            MatrixImpl::CsrDoubleI32($m) => $body,
            MatrixImpl::CsrDoubleI64($m) => $body,
            MatrixImpl::CooHalfI32($m) => $body,
            MatrixImpl::CooHalfI64($m) => $body,
            MatrixImpl::CooFloatI32($m) => $body,
            MatrixImpl::CooFloatI64($m) => $body,
            MatrixImpl::CooDoubleI32($m) => $body,
            MatrixImpl::CooDoubleI64($m) => $body,
        }
    };
}

/// A sparse matrix with runtime-selected format, dtype, and index type.
#[derive(Clone, Debug)]
pub struct SparseMatrix {
    pub(crate) inner: MatrixImpl,
    pub(crate) device: Device,
}

fn cast_triplets<V: Value>(triplets: &[(usize, usize, f64)]) -> Vec<(usize, usize, V)> {
    triplets
        .iter()
        .map(|&(r, c, v)| (r, c, V::from_f64(v)))
        .collect()
}

impl SparseMatrix {
    /// Builds a matrix from (row, col, value) triplets with runtime type
    /// selection — the facade's central constructor, used by [`crate::read`]
    /// and the benchmark harness.
    pub fn from_triplets(
        device: &Device,
        shape: (usize, usize),
        triplets: &[(usize, usize, f64)],
        dtype: &str,
        index_type: &str,
        format: &str,
    ) -> PyResult<SparseMatrix> {
        binding_call(device, || {
            let dtype: DType = dtype.parse()?;
            let itype: IndexType = index_type.parse()?;
            let format = MatrixFormat::parse(format)?;
            let dim = Dim2::new(shape.0, shape.1);
            let exec = device.executor();

            macro_rules! build {
                ($variant:ident, $fmt:ident, $v:ty, $i:ty) => {
                    MatrixImpl::$variant(Arc::new(
                        $fmt::<$v, $i>::from_triplets(exec, dim, &cast_triplets::<$v>(triplets))
                            .map_err(PyGinkgoError::from)?,
                    ))
                };
            }
            let inner = match (format, dtype, itype) {
                (MatrixFormat::Csr, DType::Half, IndexType::Int32) => build!(CsrHalfI32, Csr, Half, i32),
                (MatrixFormat::Csr, DType::Half, IndexType::Int64) => build!(CsrHalfI64, Csr, Half, i64),
                (MatrixFormat::Csr, DType::Float, IndexType::Int32) => build!(CsrFloatI32, Csr, f32, i32),
                (MatrixFormat::Csr, DType::Float, IndexType::Int64) => build!(CsrFloatI64, Csr, f32, i64),
                (MatrixFormat::Csr, DType::Double, IndexType::Int32) => build!(CsrDoubleI32, Csr, f64, i32),
                (MatrixFormat::Csr, DType::Double, IndexType::Int64) => build!(CsrDoubleI64, Csr, f64, i64),
                (MatrixFormat::Coo, DType::Half, IndexType::Int32) => build!(CooHalfI32, Coo, Half, i32),
                (MatrixFormat::Coo, DType::Half, IndexType::Int64) => build!(CooHalfI64, Coo, Half, i64),
                (MatrixFormat::Coo, DType::Float, IndexType::Int32) => build!(CooFloatI32, Coo, f32, i32),
                (MatrixFormat::Coo, DType::Float, IndexType::Int64) => build!(CooFloatI64, Coo, f32, i64),
                (MatrixFormat::Coo, DType::Double, IndexType::Int32) => build!(CooDoubleI32, Coo, f64, i32),
                (MatrixFormat::Coo, DType::Double, IndexType::Int64) => build!(CooDoubleI64, Coo, f64, i64),
            };
            Ok(SparseMatrix {
                inner,
                device: device.clone(),
            })
        })
    }

    /// Matrix shape (rows, cols) — exposed as `.size` in the paper's API.
    pub fn shape(&self) -> (usize, usize) {
        let d = with_impl!(&self.inner, m => m.size());
        (d.rows, d.cols)
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        with_impl!(&self.inner, m => m.nnz())
    }

    /// Runs the engine sanitizer's structural validation on the stored
    /// format: re-derives the CSR/COO invariants (monotone row pointers,
    /// in-bounds indices, sorted coordinates) from scratch and reports the
    /// first violation as a value error.
    pub fn validate(&self) -> PyResult<()> {
        with_impl!(&self.inner, m => m.validate().map_err(PyGinkgoError::from))
    }

    /// Runtime value type.
    pub fn dtype(&self) -> DType {
        match &self.inner {
            MatrixImpl::CsrHalfI32(_)
            | MatrixImpl::CsrHalfI64(_)
            | MatrixImpl::CooHalfI32(_)
            | MatrixImpl::CooHalfI64(_) => DType::Half,
            MatrixImpl::CsrFloatI32(_)
            | MatrixImpl::CsrFloatI64(_)
            | MatrixImpl::CooFloatI32(_)
            | MatrixImpl::CooFloatI64(_) => DType::Float,
            MatrixImpl::CsrDoubleI32(_)
            | MatrixImpl::CsrDoubleI64(_)
            | MatrixImpl::CooDoubleI32(_)
            | MatrixImpl::CooDoubleI64(_) => DType::Double,
        }
    }

    /// Runtime index type.
    pub fn index_type(&self) -> IndexType {
        match &self.inner {
            MatrixImpl::CsrHalfI32(_)
            | MatrixImpl::CsrFloatI32(_)
            | MatrixImpl::CsrDoubleI32(_)
            | MatrixImpl::CooHalfI32(_)
            | MatrixImpl::CooFloatI32(_)
            | MatrixImpl::CooDoubleI32(_) => IndexType::Int32,
            _ => IndexType::Int64,
        }
    }

    /// Storage format.
    pub fn format(&self) -> MatrixFormat {
        match &self.inner {
            MatrixImpl::CsrHalfI32(_)
            | MatrixImpl::CsrHalfI64(_)
            | MatrixImpl::CsrFloatI32(_)
            | MatrixImpl::CsrFloatI64(_)
            | MatrixImpl::CsrDoubleI32(_)
            | MatrixImpl::CsrDoubleI64(_) => MatrixFormat::Csr,
            _ => MatrixFormat::Coo,
        }
    }

    /// The device the matrix lives on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The §5.1 mangled binding name this matrix dispatches to, e.g.
    /// `"spmv_csr_double_int32"`.
    pub fn binding_name(&self, op: &str) -> String {
        format!(
            "{op}_{}_{}_{}",
            self.format().name().to_ascii_lowercase(),
            self.dtype().name(),
            self.index_type().name()
        )
    }

    /// SpMV: returns `x = A b` as a new tensor (`x = mtx @ b` in Python).
    pub fn spmv(&self, b: &Tensor) -> PyResult<Tensor> {
        let (rows, _) = self.shape();
        let (_, bcols) = b.shape();
        let mut x = crate::tensor::as_tensor_fill(
            &self.device,
            (rows, bcols),
            self.dtype().name(),
            0.0,
        )?;
        self.spmv_into(b, &mut x)?;
        Ok(x)
    }

    /// SpMV into an existing output tensor.
    pub fn spmv_into(&self, b: &Tensor, x: &mut Tensor) -> PyResult<()> {
        let dev = self.device.clone();
        binding_call(&dev, || {
            macro_rules! go {
                ($m:expr, $bvar:ident, $xvar:ident) => {
                    match (b.data(), x.data_mut()) {
                        (TensorData::$bvar(bd), TensorData::$xvar(xd)) => {
                            $m.apply(bd, xd).map_err(PyGinkgoError::from)
                        }
                        _ => Err(PyGinkgoError::Type(format!(
                            "dtype mismatch: matrix is {}, operands are {}/{}",
                            self.dtype(),
                            b.dtype(),
                            self.dtype()
                        ))),
                    }
                };
            }
            match &self.inner {
                MatrixImpl::CsrHalfI32(m) => go!(m, Half, Half),
                MatrixImpl::CsrHalfI64(m) => go!(m, Half, Half),
                MatrixImpl::CsrFloatI32(m) => go!(m, Float, Float),
                MatrixImpl::CsrFloatI64(m) => go!(m, Float, Float),
                MatrixImpl::CsrDoubleI32(m) => go!(m, Double, Double),
                MatrixImpl::CsrDoubleI64(m) => go!(m, Double, Double),
                MatrixImpl::CooHalfI32(m) => go!(m, Half, Half),
                MatrixImpl::CooHalfI64(m) => go!(m, Half, Half),
                MatrixImpl::CooFloatI32(m) => go!(m, Float, Float),
                MatrixImpl::CooFloatI64(m) => go!(m, Float, Float),
                MatrixImpl::CooDoubleI32(m) => go!(m, Double, Double),
                MatrixImpl::CooDoubleI64(m) => go!(m, Double, Double),
            }
        })
    }

    /// Converts to another storage format (same dtype/index type).
    pub fn convert(&self, format: &str) -> PyResult<SparseMatrix> {
        let dev = self.device.clone();
        binding_call(&dev, || {
            let target = MatrixFormat::parse(format)?;
            if target == self.format() {
                return Ok(self.clone());
            }
            let inner = match (&self.inner, target) {
                (MatrixImpl::CsrHalfI32(m), MatrixFormat::Coo) => MatrixImpl::CooHalfI32(Arc::new(Coo::from_csr(m))),
                (MatrixImpl::CsrHalfI64(m), MatrixFormat::Coo) => MatrixImpl::CooHalfI64(Arc::new(Coo::from_csr(m))),
                (MatrixImpl::CsrFloatI32(m), MatrixFormat::Coo) => MatrixImpl::CooFloatI32(Arc::new(Coo::from_csr(m))),
                (MatrixImpl::CsrFloatI64(m), MatrixFormat::Coo) => MatrixImpl::CooFloatI64(Arc::new(Coo::from_csr(m))),
                (MatrixImpl::CsrDoubleI32(m), MatrixFormat::Coo) => MatrixImpl::CooDoubleI32(Arc::new(Coo::from_csr(m))),
                (MatrixImpl::CsrDoubleI64(m), MatrixFormat::Coo) => MatrixImpl::CooDoubleI64(Arc::new(Coo::from_csr(m))),
                (MatrixImpl::CooHalfI32(m), MatrixFormat::Csr) => MatrixImpl::CsrHalfI32(Arc::new(m.to_csr())),
                (MatrixImpl::CooHalfI64(m), MatrixFormat::Csr) => MatrixImpl::CsrHalfI64(Arc::new(m.to_csr())),
                (MatrixImpl::CooFloatI32(m), MatrixFormat::Csr) => MatrixImpl::CsrFloatI32(Arc::new(m.to_csr())),
                (MatrixImpl::CooFloatI64(m), MatrixFormat::Csr) => MatrixImpl::CsrFloatI64(Arc::new(m.to_csr())),
                (MatrixImpl::CooDoubleI32(m), MatrixFormat::Csr) => MatrixImpl::CsrDoubleI32(Arc::new(m.to_csr())),
                (MatrixImpl::CooDoubleI64(m), MatrixFormat::Csr) => MatrixImpl::CsrDoubleI64(Arc::new(m.to_csr())),
                _ => unreachable!("same-format handled above"),
            };
            Ok(SparseMatrix {
                inner,
                device: self.device.clone(),
            })
        })
    }

    /// Selects the CSR SpMV strategy: `"classical"`, `"load_balance"`,
    /// `"merge"`/`"merge_path"`, or `"auto"` (the default, which resolves
    /// from the matrix's row-skew statistics). No-op for COO, which is
    /// inherently nnz-partitioned.
    pub fn with_spmv_strategy(&self, strategy: &str) -> PyResult<SparseMatrix> {
        let s = match strategy.to_ascii_lowercase().as_str() {
            "classical" => SpmvStrategy::Classical,
            "load_balance" => SpmvStrategy::LoadBalance,
            "merge" | "merge_path" => SpmvStrategy::MergePath,
            "auto" => SpmvStrategy::Auto,
            other => {
                return Err(PyGinkgoError::Value(format!(
                    "unknown SpMV strategy '{other}'"
                )))
            }
        };
        macro_rules! restrategize {
            ($variant:ident, $m:expr) => {
                MatrixImpl::$variant(Arc::new($m.as_ref().clone().with_strategy(s)))
            };
        }
        let inner = match &self.inner {
            MatrixImpl::CsrHalfI32(m) => restrategize!(CsrHalfI32, m),
            MatrixImpl::CsrHalfI64(m) => restrategize!(CsrHalfI64, m),
            MatrixImpl::CsrFloatI32(m) => restrategize!(CsrFloatI32, m),
            MatrixImpl::CsrFloatI64(m) => restrategize!(CsrFloatI64, m),
            MatrixImpl::CsrDoubleI32(m) => restrategize!(CsrDoubleI32, m),
            MatrixImpl::CsrDoubleI64(m) => restrategize!(CsrDoubleI64, m),
            other => other.clone(),
        };
        Ok(SparseMatrix {
            inner,
            device: self.device.clone(),
        })
    }

    /// Densifies into a tensor (small matrices; used by tests and examples).
    pub fn to_dense(&self) -> Tensor {
        let dev = self.device.clone();
        binding_call(&dev, || {
            macro_rules! dense_of {
                ($m:expr, $variant:ident) => {
                    TensorData::$variant($m.to_dense())
                };
            }
            let data = match &self.inner {
                MatrixImpl::CsrHalfI32(m) => dense_of!(m, Half),
                MatrixImpl::CsrHalfI64(m) => dense_of!(m, Half),
                MatrixImpl::CsrFloatI32(m) => dense_of!(m, Float),
                MatrixImpl::CsrFloatI64(m) => dense_of!(m, Float),
                MatrixImpl::CsrDoubleI32(m) => dense_of!(m, Double),
                MatrixImpl::CsrDoubleI64(m) => dense_of!(m, Double),
                MatrixImpl::CooHalfI32(m) => dense_of!(m, Half),
                MatrixImpl::CooHalfI64(m) => dense_of!(m, Half),
                MatrixImpl::CooFloatI32(m) => dense_of!(m, Float),
                MatrixImpl::CooFloatI64(m) => dense_of!(m, Float),
                MatrixImpl::CooDoubleI32(m) => dense_of!(m, Double),
                MatrixImpl::CooDoubleI64(m) => dense_of!(m, Double),
            };
            Tensor::new(self.device.clone(), data)
        })
    }

    /// The triplets, widened to f64 (for writing back to Matrix Market).
    pub fn to_triplets(&self) -> Vec<(usize, usize, f64)> {
        let dense = self.to_dense();
        let (rows, cols) = dense.shape();
        let mut out = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = dense.get(r, c).expect("in range");
                if v != 0.0 {
                    out.push((r, c, v));
                }
            }
        }
        out
    }
}

fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<SparseMatrix>();
    check::<Tensor>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::device;
    use crate::tensor::as_tensor;

    fn sample(dev: &Device, dtype: &str, itype: &str, format: &str) -> SparseMatrix {
        SparseMatrix::from_triplets(
            dev,
            (3, 3),
            &[
                (0, 0, 2.0),
                (0, 2, 1.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
                (2, 2, 6.0),
            ],
            dtype,
            itype,
            format,
        )
        .unwrap()
    }

    #[test]
    fn all_twelve_combinations_construct_and_multiply() {
        let dev = device("reference").unwrap();
        for dtype in ["half", "float", "double"] {
            for itype in ["int32", "int64"] {
                for format in ["Csr", "Coo"] {
                    let m = sample(&dev, dtype, itype, format);
                    assert_eq!(m.shape(), (3, 3));
                    assert_eq!(m.nnz(), 6);
                    let b = as_tensor(vec![1.0, 2.0, 3.0], &dev, (3, 1), dtype).unwrap();
                    let x = m.spmv(&b).unwrap();
                    let xs = x.to_vec();
                    assert!(
                        (xs[0] - 5.0).abs() < 0.02 && (xs[2] - 32.0).abs() < 0.05,
                        "{dtype}/{itype}/{format}: {xs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn metadata_reflects_construction() {
        let dev = device("reference").unwrap();
        let m = sample(&dev, "float32", "int64", "coo");
        assert_eq!(m.dtype(), DType::Float);
        assert_eq!(m.index_type(), IndexType::Int64);
        assert_eq!(m.format(), MatrixFormat::Coo);
        assert_eq!(m.binding_name("spmv"), "spmv_coo_float_int64");
    }

    #[test]
    fn dtype_mismatch_in_spmv_raises() {
        let dev = device("reference").unwrap();
        let m = sample(&dev, "double", "int32", "Csr");
        let b = as_tensor(vec![1.0, 2.0, 3.0], &dev, (3, 1), "float").unwrap();
        assert!(matches!(m.spmv(&b), Err(PyGinkgoError::Type(_))));
    }

    #[test]
    fn format_conversion_roundtrip_preserves_values() {
        let dev = device("reference").unwrap();
        let m = sample(&dev, "double", "int32", "Csr");
        let coo = m.convert("Coo").unwrap();
        assert_eq!(coo.format(), MatrixFormat::Coo);
        let back = coo.convert("Csr").unwrap();
        assert_eq!(back.to_dense().to_vec(), m.to_dense().to_vec());
        // Converting to the same format is a cheap clone.
        assert_eq!(m.convert("csr").unwrap().nnz(), m.nnz());
    }

    #[test]
    fn invalid_construction_raises_value_or_type_error() {
        let dev = device("reference").unwrap();
        assert!(SparseMatrix::from_triplets(&dev, (2, 2), &[(5, 0, 1.0)], "double", "int32", "Csr").is_err());
        assert!(SparseMatrix::from_triplets(&dev, (2, 2), &[], "quad", "int32", "Csr").is_err());
        assert!(SparseMatrix::from_triplets(&dev, (2, 2), &[], "double", "int8", "Csr").is_err());
        assert!(SparseMatrix::from_triplets(&dev, (2, 2), &[], "double", "int32", "Hyb").is_err());
    }

    #[test]
    fn spmv_strategy_switch_keeps_results() {
        let dev = device("cuda").unwrap();
        let m = sample(&dev, "double", "int32", "Csr");
        let b = as_tensor(vec![1.0, 2.0, 3.0], &dev, (3, 1), "double").unwrap();
        let x1 = m.spmv(&b).unwrap();
        for strategy in ["classical", "load_balance", "merge", "merge_path", "auto"] {
            let m2 = m.with_spmv_strategy(strategy).unwrap();
            let x2 = m2.spmv(&b).unwrap();
            assert_eq!(x1.to_vec(), x2.to_vec(), "strategy {strategy}");
        }
        assert!(m.with_spmv_strategy("quantum").is_err());
    }

    #[test]
    fn triplet_extraction_roundtrip() {
        let dev = device("reference").unwrap();
        let m = sample(&dev, "double", "int32", "Csr");
        let t = m.to_triplets();
        assert_eq!(t.len(), 6);
        let m2 = SparseMatrix::from_triplets(&dev, (3, 3), &t, "double", "int32", "Csr").unwrap();
        assert_eq!(m2.to_dense().to_vec(), m.to_dense().to_vec());
    }
}
