//! The logger object returned by `solver.apply` (Listing 1's
//! `logger, result = solver.apply(b, x)`), plus the event-logging data
//! types surfaced by `Solver::with_logger` / `Solver::logger_data`.

use gko::log::{ConvergenceLogger, SolveRecord};

/// Diagnostic information about a finished solve.
#[derive(Clone, Debug)]
pub struct Logger {
    record: SolveRecord,
}

impl Logger {
    pub(crate) fn from_engine(logger: &ConvergenceLogger) -> Self {
        Logger {
            record: logger.snapshot(),
        }
    }

    /// Number of iterations performed.
    pub fn iterations(&self) -> usize {
        self.record.iterations
    }

    /// True if a residual-based criterion stopped the iteration.
    pub fn converged(&self) -> bool {
        self.record.converged()
    }

    /// Residual norm before the first iteration.
    pub fn initial_residual(&self) -> f64 {
        self.record.initial_residual
    }

    /// Residual norm at the last check.
    pub fn final_residual(&self) -> f64 {
        self.record.final_residual
    }

    /// Residual norm after each check (one per iteration for most solvers).
    pub fn residual_history(&self) -> &[f64] {
        &self.record.residual_history
    }

    /// Achieved reduction `final / initial`.
    pub fn reduction(&self) -> f64 {
        self.record.reduction()
    }

    /// Human-readable stop reason (`"converged (residual reduction)"`,
    /// `"max iterations"`, `"breakdown"`, or `"not run"`).
    pub fn stop_reason(&self) -> &'static str {
        use gko::stop::StopReason;
        match self.record.stop_reason {
            Some(StopReason::ResidualReduction) => "converged (residual reduction)",
            Some(StopReason::AbsoluteResidual) => "converged (absolute residual)",
            Some(StopReason::MaxIterations) => "max iterations",
            Some(StopReason::Breakdown) => "breakdown",
            None => "not run",
        }
    }
}

/// One kernel's aggregated timings from an attached profiler
/// (a rendered [`gko::log::KernelProfile`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Kernel / operator name (`"csr"`, `"dense::dot"`, `"solver::Cg"`, ...).
    pub op: String,
    /// Number of completed invocations.
    pub calls: u64,
    /// Inclusive wall-clock time across all calls, nanoseconds.
    pub wall_ns: u64,
    /// Inclusive simulated device time across all calls, nanoseconds.
    pub virtual_ns: u64,
    /// Wall time excluding instrumented child kernels, nanoseconds.
    pub self_wall_ns: u64,
    /// Simulated time excluding instrumented child kernels, nanoseconds.
    pub self_virtual_ns: u64,
}

/// Snapshot of everything the loggers attached via `Solver::with_logger`
/// observed so far.
///
/// Fields whose logger kind was never attached stay at their defaults
/// (empty vectors / zero counters).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoggerData {
    /// Rendered event history from a `"record"` logger, oldest first.
    pub events: Vec<String>,
    /// Events discarded by the `"record"` logger after its capacity filled.
    pub dropped_events: u64,
    /// Accumulated text from a `"stream"` logger.
    pub stream: String,
    /// Per-kernel aggregates from a `"profile"` logger, hottest first.
    pub profile: Vec<ProfileEntry>,
    /// Solver iterations observed by the profiler.
    pub iterations: u64,
    /// Stopping-criterion evaluations observed by the profiler.
    pub criterion_checks: u64,
    /// Completed solves observed by the profiler.
    pub solves: u64,
    /// Thread-pool dispatches observed by the profiler.
    pub pool_dispatches: u64,
    /// Work chunks executed across all observed pool dispatches.
    pub pool_chunks: u64,
    /// Chunks obtained by work stealing across all observed dispatches.
    pub pool_steals: u64,
    /// Executor allocations observed by the profiler.
    pub allocations: u64,
    /// Total bytes across observed allocations.
    pub allocated_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gko::stop::StopReason;

    #[test]
    fn wraps_engine_record() {
        let engine = ConvergenceLogger::new();
        engine.begin(8.0);
        engine.record_residual(1, 2.0);
        engine.record_residual(2, 4e-6);
        engine.finish(2, StopReason::ResidualReduction);
        let log = Logger::from_engine(&engine);
        assert_eq!(log.iterations(), 2);
        assert!(log.converged());
        assert_eq!(log.initial_residual(), 8.0);
        assert_eq!(log.final_residual(), 4e-6);
        assert_eq!(log.residual_history(), &[2.0, 4e-6]);
        assert!((log.reduction() - 5e-7).abs() < 1e-18);
        assert_eq!(log.stop_reason(), "converged (residual reduction)");
    }

    #[test]
    fn unfinished_solve_reads_not_run() {
        let log = Logger::from_engine(&ConvergenceLogger::new());
        assert_eq!(log.stop_reason(), "not run");
        assert!(!log.converged());
    }
}
