//! `pg.device(...)` — the facade's executor factory (paper §4.1).
//!
//! pyGinkgo calls Ginkgo executors "devices" for consistency with the Python
//! ecosystem (`torch.device("cuda")`). Device name strings are parsed
//! case-insensitively; an optional integer id selects among multiple
//! accelerators.

use crate::error::{PyGinkgoError, PyResult};
use gko::Executor;

/// A handle to an execution device (wraps an engine executor).
#[derive(Clone, Debug, PartialEq)]
pub struct Device {
    exec: Executor,
}

impl Device {
    /// The underlying engine executor.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Lower-case backend name (`"cuda"`, `"hip"`, `"omp"`, `"reference"`).
    pub fn backend_name(&self) -> &'static str {
        self.exec.backend().name()
    }

    /// Marketing name of the simulated hardware (e.g. `"NVIDIA A100"`).
    pub fn hardware_name(&self) -> &str {
        self.exec.name()
    }

    /// True for host (CPU) devices.
    pub fn is_cpu(&self) -> bool {
        self.exec.is_host()
    }

    /// Blocks until device work completes (API-shape parity; see
    /// [`Executor::synchronize`]).
    pub fn synchronize(&self) {
        self.exec.synchronize()
    }
}

/// Creates a device from its name: `"cuda"`, `"hip"`, `"omp"`,
/// `"reference"`/`"cpu"`. Equivalent to `pg.device(name)` in Listing 1.
pub fn device(name: &str) -> PyResult<Device> {
    device_with_id(name, 0)
}

/// Creates a device with an explicit id — `pg.device(name, id)` (§4.1's
/// `pyGinkgo.device(name, id=0)` factory).
///
/// For `"omp"` the id selects the *thread count* (0 means all available),
/// mirroring how the paper's CPU benchmarks sweep threads.
pub fn device_with_id(name: &str, id: usize) -> PyResult<Device> {
    let exec = match name.to_ascii_lowercase().as_str() {
        "cuda" => Executor::cuda(id),
        "hip" | "rocm" => Executor::hip(id),
        "omp" | "openmp" => Executor::omp(if id == 0 { 38 } else { id }),
        "reference" | "cpu" => Executor::reference(),
        other => {
            return Err(PyGinkgoError::Value(format!(
                "unknown device '{other}' (expected cuda, hip, omp, or reference)"
            )))
        }
    };
    Ok(Device { exec })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listing_1_device_call_works() {
        let dev = device("cuda").unwrap();
        assert_eq!(dev.backend_name(), "cuda");
        assert_eq!(dev.hardware_name(), "NVIDIA A100");
        assert!(!dev.is_cpu());
        dev.synchronize();
    }

    #[test]
    fn names_are_case_insensitive_with_aliases() {
        assert_eq!(device("CUDA").unwrap().backend_name(), "cuda");
        assert_eq!(device("ROCm").unwrap().backend_name(), "hip");
        assert_eq!(device("OpenMP").unwrap().backend_name(), "omp");
        assert_eq!(device("cpu").unwrap().backend_name(), "reference");
    }

    #[test]
    fn omp_id_selects_thread_count() {
        let d = device_with_id("omp", 16).unwrap();
        assert_eq!(d.executor().spec().workers, 16);
        let d = device("omp").unwrap();
        assert_eq!(d.executor().spec().workers, 38, "defaults to full socket");
    }

    #[test]
    fn unknown_device_is_a_value_error() {
        let err = device("tpu").unwrap_err();
        assert!(err.to_string().contains("ValueError"));
        assert!(err.to_string().contains("tpu"));
    }
}
