//! The config-solver path (paper §5, Listing 2).
//!
//! `pg.solve(...)` assembles a configuration *dictionary* from keyword-style
//! arguments, serializes it to JSON in memory (no temporary files, as the
//! paper emphasizes), re-parses it, and hands the tree to the engine's
//! generic `config_solve` entry point. Going through the JSON text is
//! deliberate: it exercises exactly the boundary the real pyGinkgo crosses.

use crate::device::Device;
use crate::error::{PyGinkgoError, PyResult};
use crate::gil::binding_call;
use crate::logger::Logger;
use crate::matrix::{MatrixFormat, MatrixImpl, SparseMatrix};
use crate::tensor::{Tensor, TensorData};
use gko::config::{config_solve, Config};

/// Keyword arguments for [`solve`], mirroring Listing 2's dictionary.
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// Solver: `"gmres"`, `"cg"`, `"cgs"`, `"bicgstab"`, `"direct"`, `"ir"`.
    pub method: String,
    /// Preconditioner: `"jacobi"`, `"ilu"`, `"ic"`, or `None`.
    pub preconditioner: Option<String>,
    /// Jacobi block size (`max_block_size` in Listing 2).
    pub block_size: usize,
    /// Iteration limit.
    pub max_iters: usize,
    /// Relative residual reduction factor.
    pub reduction_factor: f64,
    /// GMRES restart length.
    pub krylov_dim: usize,
}

impl Default for SolveOptions {
    /// Listing 2's configuration: GMRES(30), scalar Jacobi, 1000 iterations,
    /// reduction factor 1e-6.
    fn default() -> Self {
        SolveOptions {
            method: "gmres".to_owned(),
            preconditioner: Some("jacobi".to_owned()),
            block_size: 1,
            max_iters: 1000,
            reduction_factor: 1e-6,
            krylov_dim: 30,
        }
    }
}

impl SolveOptions {
    /// Builds the configuration dictionary (the tree Listing 2 prints).
    pub fn to_config(&self) -> PyResult<Config> {
        let solver_type = match self.method.to_ascii_lowercase().as_str() {
            "cg" => "solver::Cg",
            "fcg" => "solver::Fcg",
            "cgs" => "solver::Cgs",
            "bicgstab" => "solver::Bicgstab",
            "minres" => "solver::Minres",
            "gmres" => "solver::Gmres",
            "ir" | "richardson" => "solver::Ir",
            "direct" => "solver::Direct",
            other => {
                return Err(PyGinkgoError::Value(format!(
                    "unknown solver method '{other}'"
                )))
            }
        };
        let mut cfg = Config::map().with("type", solver_type).with(
            "criteria",
            vec![
                Config::map()
                    .with("type", "Iteration")
                    .with("max_iters", self.max_iters),
                Config::map()
                    .with("type", "ResidualNorm")
                    .with("reduction_factor", self.reduction_factor),
            ],
        );
        if solver_type == "solver::Gmres" {
            cfg = cfg.with("krylov_dim", self.krylov_dim);
        }
        if let Some(p) = &self.preconditioner {
            let ptype = match p.to_ascii_lowercase().as_str() {
                "jacobi" => "preconditioner::Jacobi",
                "ilu" => "preconditioner::Ilu",
                "ic" => "preconditioner::Ic",
                "none" => {
                    return Ok(cfg.with("preconditioner", Config::Null));
                }
                other => {
                    return Err(PyGinkgoError::Value(format!(
                        "unknown preconditioner '{other}'"
                    )))
                }
            };
            let mut pcfg = Config::map().with("type", ptype);
            if ptype == "preconditioner::Jacobi" {
                pcfg = pcfg.with("max_block_size", self.block_size);
            }
            cfg = cfg.with("preconditioner", pcfg);
        }
        Ok(cfg)
    }

    /// The JSON document handed to the engine — what Listing 2 shows.
    pub fn to_json(&self) -> PyResult<String> {
        Ok(self.to_config()?.to_json())
    }
}

/// Solves `A x = b` through the generic config-solver entry point.
///
/// Builds the config dictionary from `options`, round-trips it through JSON,
/// and runs the configured pipeline. `x` holds the initial guess and is
/// overwritten with the solution.
pub fn solve(
    matrix: &SparseMatrix,
    b: &Tensor,
    x: &mut Tensor,
    options: &SolveOptions,
) -> PyResult<Logger> {
    let dev = matrix.device().clone();
    binding_call(&dev, || {
        // dict -> JSON string -> tree, as the facade's Python layer does.
        let json = options.to_json()?;
        let cfg = Config::from_json(&json).map_err(PyGinkgoError::from)?;

        let csr;
        let source = if matrix.format() == MatrixFormat::Csr {
            matrix
        } else {
            csr = matrix.convert("Csr")?;
            &csr
        };

        macro_rules! arm {
            ($m:expr, $tag:ident) => {{
                let solver = config_solve($m.clone(), &cfg).map_err(PyGinkgoError::from)?;
                match (b.data(), x.data_mut()) {
                    (TensorData::$tag(bd), TensorData::$tag(xd)) => {
                        solver.op.apply(bd, xd).map_err(PyGinkgoError::from)?;
                        Ok(Logger::from_engine(&solver.logger))
                    }
                    _ => Err(PyGinkgoError::Type(format!(
                        "dtype mismatch: matrix is {}, operands are {}/{}",
                        source.dtype(),
                        b.dtype(),
                        x.dtype()
                    ))),
                }
            }};
        }
        match &source.inner {
            MatrixImpl::CsrHalfI32(m) => arm!(m, Half),
            MatrixImpl::CsrHalfI64(m) => arm!(m, Half),
            MatrixImpl::CsrFloatI32(m) => arm!(m, Float),
            MatrixImpl::CsrFloatI64(m) => arm!(m, Float),
            MatrixImpl::CsrDoubleI32(m) => arm!(m, Double),
            MatrixImpl::CsrDoubleI64(m) => arm!(m, Double),
            _ => unreachable!("converted to CSR above"),
        }
    })
}

/// Solves `A x = b` with the pipeline described by a JSON configuration
/// *file* — the "typical use case" §5 describes (run-time solver selection
/// by editing a file, no recompilation).
pub fn solve_from_config_file(
    matrix: &SparseMatrix,
    b: &Tensor,
    x: &mut Tensor,
    path: impl AsRef<std::path::Path>,
) -> PyResult<Logger> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| PyGinkgoError::Os(e.to_string()))?;
    solve_with_config(matrix, b, x, &Config::from_json(&text).map_err(PyGinkgoError::from)?)
}

/// Solves with an already-built configuration tree (the non-file variant of
/// [`solve_from_config_file`]; [`solve`] builds the tree from options).
pub fn solve_with_config(
    matrix: &SparseMatrix,
    b: &Tensor,
    x: &mut Tensor,
    cfg: &Config,
) -> PyResult<Logger> {
    let dev = matrix.device().clone();
    binding_call(&dev, || {
        let csr;
        let source = if matrix.format() == MatrixFormat::Csr {
            matrix
        } else {
            csr = matrix.convert("Csr")?;
            &csr
        };
        macro_rules! arm {
            ($m:expr, $tag:ident) => {{
                let solver = config_solve($m.clone(), cfg).map_err(PyGinkgoError::from)?;
                match (b.data(), x.data_mut()) {
                    (TensorData::$tag(bd), TensorData::$tag(xd)) => {
                        solver.op.apply(bd, xd).map_err(PyGinkgoError::from)?;
                        Ok(Logger::from_engine(&solver.logger))
                    }
                    _ => Err(PyGinkgoError::Type("dtype mismatch".into())),
                }
            }};
        }
        match &source.inner {
            MatrixImpl::CsrHalfI32(m) => arm!(m, Half),
            MatrixImpl::CsrHalfI64(m) => arm!(m, Half),
            MatrixImpl::CsrFloatI32(m) => arm!(m, Float),
            MatrixImpl::CsrFloatI64(m) => arm!(m, Float),
            MatrixImpl::CsrDoubleI32(m) => arm!(m, Double),
            MatrixImpl::CsrDoubleI64(m) => arm!(m, Double),
            _ => unreachable!("converted to CSR above"),
        }
    })
}

/// Convenience: solve with the default (Listing 2) configuration on a given
/// device.
pub fn solve_default(
    _device: &Device,
    matrix: &SparseMatrix,
    b: &Tensor,
    x: &mut Tensor,
) -> PyResult<Logger> {
    solve(matrix, b, x, &SolveOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::device;
    use crate::tensor::as_tensor_fill;

    fn spd(dev: &Device, n: usize) -> SparseMatrix {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        SparseMatrix::from_triplets(dev, (n, n), &t, "double", "int32", "Csr").unwrap()
    }

    #[test]
    fn default_options_produce_listing_2_json() {
        let json = SolveOptions::default().to_json().unwrap();
        assert!(json.contains("\"type\":\"solver::Gmres\""), "{json}");
        assert!(json.contains("\"krylov_dim\":30"));
        assert!(json.contains("\"type\":\"preconditioner::Jacobi\""));
        assert!(json.contains("\"max_block_size\":1"));
        assert!(json.contains("\"max_iters\":1000"));
        assert!(json.contains("\"reduction_factor\":1e-6") || json.contains("1e-06") || json.contains("0.000001"), "{json}");
    }

    #[test]
    fn listing_2_pipeline_solves() {
        let dev = device("cuda").unwrap();
        let mtx = spd(&dev, 40);
        let b = as_tensor_fill(&dev, (40, 1), "double", 1.0).unwrap();
        let mut x = as_tensor_fill(&dev, (40, 1), "double", 0.0).unwrap();
        let log = solve_default(&dev, &mtx, &b, &mut x).unwrap();
        assert!(log.converged(), "{}", log.stop_reason());
        assert!(log.reduction() <= 1e-6);
    }

    #[test]
    fn config_path_matches_direct_bindings() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 30);
        let b = as_tensor_fill(&dev, (30, 1), "double", 1.0).unwrap();

        let mut x_cfg = as_tensor_fill(&dev, (30, 1), "double", 0.0).unwrap();
        let opts = SolveOptions {
            method: "cg".into(),
            preconditioner: None,
            ..SolveOptions::default()
        };
        solve(&mtx, &b, &mut x_cfg, &opts).unwrap();

        let mut x_direct = as_tensor_fill(&dev, (30, 1), "double", 0.0).unwrap();
        let solver = crate::solver::cg(&dev, &mtx, None, 1000, 1e-6).unwrap();
        solver.apply(&b, &mut x_direct).unwrap();

        for (a, c) in x_cfg.to_vec().iter().zip(x_direct.to_vec()) {
            assert!((a - c).abs() < 1e-12, "config {a} vs direct {c}");
        }
    }

    #[test]
    fn every_method_string_works() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 16);
        let b = as_tensor_fill(&dev, (16, 1), "double", 1.0).unwrap();
        for method in ["cg", "fcg", "cgs", "bicgstab", "minres", "gmres", "ir", "direct"] {
            let mut x = as_tensor_fill(&dev, (16, 1), "double", 0.0).unwrap();
            let opts = SolveOptions {
                method: method.into(),
                // MINRES takes no preconditioner; the others get Jacobi.
                preconditioner: if method == "minres" {
                    None
                } else {
                    Some("jacobi".into())
                },
                ..SolveOptions::default()
            };
            let log = solve(&mtx, &b, &mut x, &opts);
            assert!(log.is_ok(), "{method}: {log:?}");
        }
    }

    #[test]
    fn bad_options_raise_value_errors() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 8);
        let b = as_tensor_fill(&dev, (8, 1), "double", 1.0).unwrap();
        let mut x = as_tensor_fill(&dev, (8, 1), "double", 0.0).unwrap();
        let opts = SolveOptions {
            method: "quantum".into(),
            ..SolveOptions::default()
        };
        assert!(matches!(solve(&mtx, &b, &mut x, &opts), Err(PyGinkgoError::Value(_))));
        let opts = SolveOptions {
            preconditioner: Some("magic".into()),
            ..SolveOptions::default()
        };
        assert!(matches!(solve(&mtx, &b, &mut x, &opts), Err(PyGinkgoError::Value(_))));
    }

    #[test]
    fn preconditioner_none_string_disables() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 16);
        let b = as_tensor_fill(&dev, (16, 1), "double", 1.0).unwrap();
        let mut x = as_tensor_fill(&dev, (16, 1), "double", 0.0).unwrap();
        let opts = SolveOptions {
            preconditioner: Some("none".into()),
            ..SolveOptions::default()
        };
        assert!(solve(&mtx, &b, &mut x, &opts).unwrap().converged());
    }

    #[test]
    fn config_file_path_works_end_to_end() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 20);
        let b = as_tensor_fill(&dev, (20, 1), "double", 1.0).unwrap();
        let mut x = as_tensor_fill(&dev, (20, 1), "double", 0.0).unwrap();
        let dir = std::env::temp_dir().join("pyginkgo_cfg");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("solver.json");
        std::fs::write(&path, SolveOptions::default().to_json().unwrap()).unwrap();
        let log = solve_from_config_file(&mtx, &b, &mut x, &path).unwrap();
        assert!(log.converged());
        // Missing file -> OSError; malformed file -> ValueError.
        assert!(matches!(
            solve_from_config_file(&mtx, &b, &mut x, dir.join("nope.json")),
            Err(PyGinkgoError::Os(_))
        ));
        std::fs::write(&path, "{not json").unwrap();
        assert!(matches!(
            solve_from_config_file(&mtx, &b, &mut x, &path),
            Err(PyGinkgoError::Value(_))
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn coo_matrix_is_converted_for_config_solve() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 16).convert("Coo").unwrap();
        let b = as_tensor_fill(&dev, (16, 1), "double", 1.0).unwrap();
        let mut x = as_tensor_fill(&dev, (16, 1), "double", 0.0).unwrap();
        assert!(solve_default(&dev, &mtx, &b, &mut x).unwrap().converged());
    }
}
