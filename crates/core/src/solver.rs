//! Direct solver bindings (Fig. 2): `pg.solver.gmres`, `cg`, `cgs`,
//! `bicgstab`, `direct`, and the triangular solvers.
//!
//! `Solver::apply(b, x)` solves `A x = b` using `x` as the initial guess and
//! returns the [`Logger`] — Listing 1's `logger, result = solver.apply(b, x)`
//! (the "result" is `x`, overwritten in place, exactly as the paper
//! describes).

use crate::device::Device;
use crate::error::{PyGinkgoError, PyResult};
use crate::gil::binding_call;
use crate::logger::{Logger, LoggerData, ProfileEntry};
use crate::matrix::{MatrixFormat, MatrixImpl, SparseMatrix};
use crate::preconditioner::{PrecondImpl, Preconditioner};
use crate::tensor::{Tensor, TensorData};
use gko::log::{ConvergenceLogger, Profiler, Record, SharedBuf, Stream};
use gko::matrix::{BatchCsr, BatchDense};
use gko::solver::{
    BatchBiCgStab, BatchCg, BatchSolveRecord, BiCgStab, Cg, Cgs, Direct, Gmres, LowerTrs, UpperTrs,
};
use gko::stop::{Criteria, StopReason};
use gko::telemetry::{FlightRecorder, FlightReport};
use gko::{LinOp, MetricsRegistry, MetricsSnapshot, Value};
use pygko_half::Half;
use std::sync::Arc;

/// Type-erased solver operator, one variant per value type.
#[derive(Clone)]
pub(crate) enum SolverImpl {
    Half(Arc<dyn LinOp<Half>>),
    Float(Arc<dyn LinOp<f32>>),
    Double(Arc<dyn LinOp<f64>>),
}

/// Event loggers attached through [`Solver::with_logger`], kept so
/// [`Solver::logger_data`] can read them back.
#[derive(Clone, Default)]
struct AttachedLoggers {
    record: Option<Arc<Record>>,
    stream: Option<SharedBuf>,
    profiler: Option<Arc<Profiler>>,
    metrics: Option<Arc<MetricsRegistry>>,
    flight: Option<Arc<FlightRecorder>>,
    /// Span tracing armed via [`Solver::with_tracing`]; the tracer itself
    /// lives on the device executor.
    traced: bool,
    /// Continuous profiling armed via [`Solver::with_profiling`]; the flame
    /// store lives on the device executor.
    profiled: bool,
}

/// A ready-to-apply solver bound to a device.
#[derive(Clone)]
pub struct Solver {
    pub(crate) inner: SolverImpl,
    logger: ConvergenceLogger,
    name: &'static str,
    device: Device,
    attached: AttachedLoggers,
    /// Check operand tensors for NaN/Inf around every apply — set by
    /// [`Solver::with_sanitizer`].
    sanitize_values: bool,
    /// System matrix descriptor (rows, cols, nnz, format name), kept so the
    /// flight recorder can annotate its reports.
    system: Option<(usize, usize, usize, &'static str)>,
    /// Stopping criteria the solver was built with, reused verbatim for
    /// batched solves so `apply` and `solve_batch` agree on convergence.
    criteria: Criteria,
    /// The system matrix handle, kept so [`Solver::solve_batch`] can build a
    /// replicated [`BatchCsr`]. `None` for direct/triangular solvers, which
    /// do not batch.
    batch_source: Option<MatrixImpl>,
}

/// Per-system outcome of a [`Solver::solve_batch`] call — the batched
/// counterpart of [`Logger`], one entry per right-hand-side column.
#[derive(Clone, Debug, Default)]
pub struct BatchSolveResult {
    /// Completed iterations per system.
    pub iterations: Vec<usize>,
    /// Human-readable stop reason per system, matching
    /// [`Logger::stop_reason`] wording.
    pub stop_reasons: Vec<&'static str>,
    /// Whether each system met a convergence criterion.
    pub converged: Vec<bool>,
    /// Initial residual norm per system.
    pub initial_residuals: Vec<f64>,
    /// Final residual norm per system.
    pub final_residuals: Vec<f64>,
}

impl BatchSolveResult {
    fn from_record(record: &BatchSolveRecord) -> Self {
        let mut out = BatchSolveResult::default();
        for o in &record.outcomes {
            out.iterations.push(o.iterations);
            out.initial_residuals.push(o.initial_residual);
            out.final_residuals.push(o.final_residual);
            out.converged.push(o.converged());
            out.stop_reasons.push(match o.stop_reason {
                StopReason::ResidualReduction => "converged (residual reduction)",
                StopReason::AbsoluteResidual => "converged (absolute residual)",
                StopReason::MaxIterations => "max iterations",
                StopReason::Breakdown => "breakdown",
            });
        }
        out
    }

    /// Number of systems in the batch.
    pub fn num_systems(&self) -> usize {
        self.iterations.len()
    }

    /// How many systems converged.
    pub fn converged_count(&self) -> usize {
        self.converged.iter().filter(|c| **c).count()
    }

    /// `true` when every system converged.
    pub fn all_converged(&self) -> bool {
        self.converged.iter().all(|c| *c)
    }
}

impl Solver {
    /// Solver algorithm name (`"gmres"`, `"cg"`, ...).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The device the solver runs on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Attaches an event logger of the given kind — pyGinkgo's
    /// `solver.with_logger("record")` surface over Ginkgo's `add_logger`.
    ///
    /// Kinds: `"record"` keeps a bounded in-memory event history
    /// (`"record:N"` bounds it at `N` events; overflow is counted in
    /// [`LoggerData::dropped_events`], never silently lost), `"stream"`
    /// renders events to an internal text buffer, `"profile"` aggregates
    /// per-kernel timings and pool counters, and `"metrics"` attaches the
    /// device executor's [`MetricsRegistry`] (latency histograms with
    /// p50/p95/p99, Prometheus and Chrome-trace exporters — read it back
    /// with [`Solver::metrics`]). The logger is attached to the *device
    /// executor*, so it observes kernel launches, allocations, and pool
    /// dispatches of every operation on this device alongside this solver's
    /// iteration events. Kinds may be combined by chaining calls; read
    /// results via [`Solver::logger_data`].
    pub fn with_logger(mut self, kind: &str) -> PyResult<Self> {
        let exec = self.device.executor();
        let kind = kind.to_ascii_lowercase();
        if let Some(spec) = kind.strip_prefix("record:") {
            let capacity: usize = spec.parse().ok().filter(|&c| c > 0).ok_or_else(|| {
                PyGinkgoError::Value(format!(
                    "bad record capacity '{spec}' (expected record:<positive integer>)"
                ))
            })?;
            let record = Arc::new(Record::with_capacity(capacity));
            exec.add_logger(record.clone());
            self.attached.record = Some(record);
            return Ok(self);
        }
        match kind.as_str() {
            "record" => {
                let record = Arc::new(Record::new());
                exec.add_logger(record.clone());
                self.attached.record = Some(record);
            }
            "stream" => {
                let buf = SharedBuf::new();
                exec.add_logger(Arc::new(Stream::new(buf.clone())));
                self.attached.stream = Some(buf);
            }
            "profile" | "profiler" => {
                let profiler = Arc::new(Profiler::new());
                exec.add_logger(profiler.clone());
                self.attached.profiler = Some(profiler);
            }
            "metrics" => {
                self.attached.metrics = Some(exec.enable_metrics());
            }
            other => {
                return Err(PyGinkgoError::Value(format!(
                    "unknown logger kind '{other}' \
                     (expected record, record:N, stream, profile, or metrics)"
                )))
            }
        }
        Ok(self)
    }

    /// Turns on runtime sanitizer checks for this solver's device — the
    /// `solver.with_sanitizer("full")` facade over the engine's
    /// [`gko::Sanitizer`].
    ///
    /// Modes: `"pool"` arms the chunk-overlap detector on the device
    /// executor (every pool job records which lane claimed which piece and
    /// the claim log is checked for exact disjoint coverage after the
    /// drain), `"values"` checks the right-hand side for NaN/Inf before
    /// each apply and the solution after it, and `"full"` (or `"on"`)
    /// enables both. Pool-level results are read back with
    /// [`Solver::sanitizer_report`]. Like `with_logger("metrics")`, the
    /// pool detector is a device-executor property: it observes every
    /// parallel kernel on the device, not only this solver's.
    pub fn with_sanitizer(mut self, mode: &str) -> PyResult<Self> {
        let mode = mode.to_ascii_lowercase();
        match mode.as_str() {
            "pool" => self.device.executor().enable_sanitizer(),
            "values" => self.sanitize_values = true,
            "full" | "on" => {
                self.device.executor().enable_sanitizer();
                self.sanitize_values = true;
            }
            other => {
                return Err(PyGinkgoError::Value(format!(
                    "unknown sanitizer mode '{other}' \
                     (expected pool, values, or full)"
                )))
            }
        }
        Ok(self)
    }

    /// Arms the flight recorder on this solver's device executor — the
    /// facade over [`gko::Executor::enable_flight_recorder`].
    ///
    /// Every subsequent solve on the device is summarized into a bounded
    /// ring of structured [`FlightReport`]s (residual trajectory, per-kernel
    /// latency quantiles, per-lane pool utilization) and screened by the
    /// stagnation/divergence, lane-imbalance, and latency-drift detectors.
    /// Reports are annotated with this solver's system matrix shape and
    /// format. Read the newest report back with [`Solver::flight_report`],
    /// or serve them live via [`gko::Executor::serve_telemetry`].
    pub fn with_flight_recorder(mut self) -> Self {
        let recorder = self.device.executor().enable_flight_recorder();
        if let Some((rows, cols, nnz, format)) = self.system {
            recorder.annotate(rows, cols, nnz, format);
        }
        self.attached.flight = Some(recorder);
        self
    }

    /// The most recent flight-recorder report, or `None` when the recorder
    /// was never armed or no solve has completed yet.
    pub fn flight_report(&self) -> Option<FlightReport> {
        self.attached.flight.as_ref().and_then(|r| r.latest())
    }

    /// Arms causal span tracing on this solver's device executor — the
    /// facade over [`gko::Executor::enable_tracing`].
    ///
    /// Every subsequent solve on the device assembles a hierarchical span
    /// tree (`solve → iteration → kernel apply → plan build → pool dispatch
    /// → per-lane chunk spans`) and offers it to a bounded, tail-sampled
    /// trace store: solves flagged anomalous by the flight recorder (which
    /// this call arms implicitly) or slower than the latency threshold are
    /// always retained, healthy solves are head-sampled 1-in-`sample_n`.
    /// `sample_n` must be at least 1 (`1` retains every solve). Read the
    /// newest retained tree back with [`Solver::trace_report`], or drill
    /// down live via `GET /traces` on [`gko::Executor::serve_telemetry`].
    pub fn with_tracing(mut self, sample_n: u64) -> PyResult<Self> {
        if sample_n == 0 {
            return Err(PyGinkgoError::Value(
                "tracing sample_n must be >= 1 (1 retains every solve)".to_string(),
            ));
        }
        let recorder = self.device.executor().enable_flight_recorder();
        if let Some((rows, cols, nnz, format)) = self.system {
            recorder.annotate(rows, cols, nnz, format);
        }
        self.attached.flight = Some(recorder);
        self.device.executor().enable_tracing(sample_n);
        self.attached.traced = true;
        Ok(self)
    }

    /// The most recent retained trace report (full span tree), or `None`
    /// when tracing was never armed via [`Solver::with_tracing`] or every
    /// completed solve so far was sampled out.
    pub fn trace_report(&self) -> Option<gko::TraceReport> {
        self.attached
            .traced
            .then(|| self.device.executor().tracer().latest())
            .flatten()
    }

    /// Arms continuous profiling on this solver's device executor — the
    /// facade over [`gko::Executor::enable_profiling`].
    ///
    /// Every subsequent solve's span tree (sampled out by the trace store
    /// or not) is folded into a bounded, windowed flame aggregate keyed by
    /// span path: call counts, wall/virtual self- and total-time, per-lane
    /// attribution, and p50/p99 per path. Arms span tracing implicitly when
    /// it is not already live (the profiler consumes the span stream).
    /// Unlike the per-solve `with_logger("profile")` event profiler, this
    /// aggregates *across* solves. Read the aggregate back with
    /// [`Solver::profile`], or serve it live via `GET /profile` (and
    /// `GET /profile?format=folded` / `GET /profile/diff?base=<name>`) on
    /// [`gko::Executor::serve_telemetry`].
    pub fn with_profiling(mut self) -> Self {
        self.device.executor().enable_profiling();
        self.attached.profiled = true;
        self
    }

    /// Flattened snapshot of the continuous profiler's live flame window,
    /// or `None` when profiling was never armed via
    /// [`Solver::with_profiling`].
    pub fn profile(&self) -> Option<gko::ProfileSnapshot> {
        self.attached
            .profiled
            .then(|| self.device.executor().profile_snapshot())
    }

    /// Counters from the device executor's chunk-overlap detector: how many
    /// pool jobs and chunk claims have been verified disjoint so far. All
    /// zero until `with_sanitizer("pool")` (or `"full"`) arms it.
    pub fn sanitizer_report(&self) -> gko::SanitizerReport {
        self.device.executor().sanitizer_report()
    }

    /// Snapshot of the metrics registry attached via
    /// `with_logger("metrics")`: per-kernel call counts and latency
    /// quantiles, solver iteration counters, pool-dispatch and allocation
    /// histograms, and the trace spans behind
    /// [`MetricsSnapshot::to_chrome_trace`]. `None` until the metrics
    /// logger is attached.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.attached.metrics.as_ref().map(|m| m.snapshot())
    }

    /// Snapshot of everything the attached loggers have observed so far.
    ///
    /// Kinds never attached via [`Solver::with_logger`] leave their
    /// [`LoggerData`] fields at the defaults.
    pub fn logger_data(&self) -> LoggerData {
        let mut data = LoggerData::default();
        if let Some(record) = &self.attached.record {
            data.events = record.events().iter().map(|e| e.to_string()).collect();
            data.dropped_events = record.dropped();
        }
        if let Some(buf) = &self.attached.stream {
            data.stream = buf.contents();
        }
        if let Some(profiler) = &self.attached.profiler {
            let summary = profiler.summary();
            data.profile = summary
                .kernels
                .iter()
                .map(|k| ProfileEntry {
                    op: k.op.to_string(),
                    calls: k.calls,
                    wall_ns: k.wall_ns,
                    virtual_ns: k.virtual_ns,
                    self_wall_ns: k.self_wall_ns,
                    self_virtual_ns: k.self_virtual_ns,
                })
                .collect();
            data.iterations = summary.iterations;
            data.criterion_checks = summary.criterion_checks;
            data.solves = summary.solves;
            data.pool_dispatches = summary.pool_dispatches;
            data.pool_chunks = summary.pool_chunks;
            data.pool_steals = summary.pool_steals;
            data.allocations = summary.allocations;
            data.allocated_bytes = summary.allocated_bytes;
        }
        data
    }

    /// Solves `A x = b`: `x` is the initial guess on entry, the solution on
    /// exit. Returns the convergence logger.
    pub fn apply(&self, b: &Tensor, x: &mut Tensor) -> PyResult<Logger> {
        let dev = self.device.clone();
        binding_call(&dev, || {
            macro_rules! solve {
                ($s:expr, $bd:expr, $xd:expr) => {{
                    if self.sanitize_values {
                        gko::sanitize::check_finite("rhs", $bd.as_slice())
                            .map_err(PyGinkgoError::from)?;
                    }
                    $s.apply($bd, $xd).map_err(PyGinkgoError::from)?;
                    if self.sanitize_values {
                        gko::sanitize::check_finite("solution", $xd.as_slice())
                            .map_err(PyGinkgoError::from)?;
                    }
                }};
            }
            match (&self.inner, b.data(), x.data_mut()) {
                (SolverImpl::Half(s), TensorData::Half(bd), TensorData::Half(xd)) => {
                    solve!(s, bd, xd)
                }
                (SolverImpl::Float(s), TensorData::Float(bd), TensorData::Float(xd)) => {
                    solve!(s, bd, xd)
                }
                (SolverImpl::Double(s), TensorData::Double(bd), TensorData::Double(xd)) => {
                    solve!(s, bd, xd)
                }
                _ => {
                    return Err(PyGinkgoError::Type(format!(
                        "dtype mismatch: solver vs operands ({}/{})",
                        b.dtype(),
                        x.dtype()
                    )))
                }
            }
            Ok(Logger::from_engine(&self.logger))
        })
    }

    /// Solves `A x_s = b_s` for every column `s` of `b` in one batched solve:
    /// `b` and `x` are `(n, S)` tensors holding one system per column, `x`
    /// carries the initial guesses on entry and the solutions on exit.
    ///
    /// The system matrix is replicated into a shared-sparsity [`BatchCsr`],
    /// so one SpMV plan and one pool drain per kernel serve all `S` systems.
    /// Each system stops independently against the criteria this solver was
    /// built with; per-system iteration counts and stop reasons come back in
    /// the [`BatchSolveResult`]. Only `cg` and `bicgstab` batch, and the
    /// system matrix must be CSR.
    pub fn solve_batch(&self, b: &Tensor, x: &mut Tensor) -> PyResult<BatchSolveResult> {
        let dev = self.device.clone();
        binding_call(&dev, || {
            if !matches!(self.name, "cg" | "bicgstab") {
                return Err(PyGinkgoError::Value(format!(
                    "batched solves support cg and bicgstab, not '{}'",
                    self.name
                )));
            }
            let source = self.batch_source.as_ref().ok_or_else(|| {
                PyGinkgoError::Value(format!(
                    "solver '{}' keeps no system matrix to batch over",
                    self.name
                ))
            })?;
            let (bn, bs) = b.shape();
            let (xn, xs) = x.shape();
            if bn != xn || bs != xs {
                return Err(PyGinkgoError::Value(format!(
                    "batched solve: b has shape ({bn}, {bs}) but x has shape ({xn}, {xs})"
                )));
            }
            if bs == 0 {
                return Err(PyGinkgoError::Value(
                    "batched solve needs at least one right-hand-side column".into(),
                ));
            }
            macro_rules! run {
                ($m:expr, $bd:expr, $xd:expr) => {{
                    let (m, bd, xd) = ($m, $bd, $xd);
                    if self.sanitize_values {
                        gko::sanitize::check_finite("rhs", bd.as_slice())
                            .map_err(PyGinkgoError::from)?;
                    }
                    let batch =
                        Arc::new(BatchCsr::replicated(m.as_ref(), bs).map_err(PyGinkgoError::from)?);
                    let exec = batch.executor().clone();
                    let dim = gko::Dim2::new(bn, 1);
                    let mut bb = BatchDense::zeros(&exec, bs, dim);
                    let mut xb = BatchDense::zeros(&exec, bs, dim);
                    // Row-major (n, S) columns -> contiguous per-system vectors.
                    let bsrc = bd.as_slice();
                    let xsrc = xd.as_slice();
                    for s in 0..bs {
                        let bsys = bb.system_mut(s);
                        for i in 0..bn {
                            bsys[i] = bsrc[i * bs + s];
                        }
                        let xsys = xb.system_mut(s);
                        for i in 0..bn {
                            xsys[i] = xsrc[i * bs + s];
                        }
                    }
                    let record = if self.name == "cg" {
                        BatchCg::new(batch)
                            .map_err(PyGinkgoError::from)?
                            .with_criteria(self.criteria)
                            .apply_batch(&bb, &mut xb)
                            .map_err(PyGinkgoError::from)?
                    } else {
                        BatchBiCgStab::new(batch)
                            .map_err(PyGinkgoError::from)?
                            .with_criteria(self.criteria)
                            .apply_batch(&bb, &mut xb)
                            .map_err(PyGinkgoError::from)?
                    };
                    let xdst = xd.as_mut_slice();
                    for s in 0..bs {
                        let xsys = xb.system(s);
                        for i in 0..bn {
                            xdst[i * bs + s] = xsys[i];
                        }
                    }
                    if self.sanitize_values {
                        gko::sanitize::check_finite("solution", xd.as_slice())
                            .map_err(PyGinkgoError::from)?;
                    }
                    Ok(BatchSolveResult::from_record(&record))
                }};
            }
            match (source, b.data(), x.data_mut()) {
                (MatrixImpl::CsrHalfI32(m), TensorData::Half(bd), TensorData::Half(xd)) => {
                    run!(m, bd, xd)
                }
                (MatrixImpl::CsrHalfI64(m), TensorData::Half(bd), TensorData::Half(xd)) => {
                    run!(m, bd, xd)
                }
                (MatrixImpl::CsrFloatI32(m), TensorData::Float(bd), TensorData::Float(xd)) => {
                    run!(m, bd, xd)
                }
                (MatrixImpl::CsrFloatI64(m), TensorData::Float(bd), TensorData::Float(xd)) => {
                    run!(m, bd, xd)
                }
                (MatrixImpl::CsrDoubleI32(m), TensorData::Double(bd), TensorData::Double(xd)) => {
                    run!(m, bd, xd)
                }
                (MatrixImpl::CsrDoubleI64(m), TensorData::Double(bd), TensorData::Double(xd)) => {
                    run!(m, bd, xd)
                }
                (
                    MatrixImpl::CooHalfI32(_)
                    | MatrixImpl::CooHalfI64(_)
                    | MatrixImpl::CooFloatI32(_)
                    | MatrixImpl::CooFloatI64(_)
                    | MatrixImpl::CooDoubleI32(_)
                    | MatrixImpl::CooDoubleI64(_),
                    _,
                    _,
                ) => Err(PyGinkgoError::Type(
                    "batched solves need a CSR system matrix (convert COO with convert(\"Csr\"))"
                        .into(),
                )),
                _ => Err(PyGinkgoError::Type(format!(
                    "dtype mismatch: solver vs operands ({}/{})",
                    b.dtype(),
                    x.dtype()
                ))),
            }
        })
    }
}

/// Which Krylov algorithm to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Algo {
    Cg,
    Cgs,
    Bicgstab,
    Gmres { krylov_dim: usize },
}

impl Algo {
    fn name(self) -> &'static str {
        match self {
            Algo::Cg => "cg",
            Algo::Cgs => "cgs",
            Algo::Bicgstab => "bicgstab",
            Algo::Gmres { .. } => "gmres",
        }
    }
}

fn build_krylov<V: Value>(
    system: Arc<dyn LinOp<V>>,
    precond: Option<Arc<dyn LinOp<V>>>,
    algo: Algo,
    criteria: Criteria,
) -> PyResult<(Arc<dyn LinOp<V>>, ConvergenceLogger)> {
    macro_rules! finish {
        ($solver:expr) => {{
            let mut s = $solver.with_criteria(criteria);
            if let Some(p) = precond {
                s = s.with_preconditioner(p).map_err(PyGinkgoError::from)?;
            }
            let logger = s.logger().clone();
            Ok((Arc::new(s) as Arc<dyn LinOp<V>>, logger))
        }};
    }
    match algo {
        Algo::Cg => finish!(Cg::new(system).map_err(PyGinkgoError::from)?),
        Algo::Cgs => finish!(Cgs::new(system).map_err(PyGinkgoError::from)?),
        Algo::Bicgstab => finish!(BiCgStab::new(system).map_err(PyGinkgoError::from)?),
        Algo::Gmres { krylov_dim } => finish!(Gmres::new(system)
            .map_err(PyGinkgoError::from)?
            .with_krylov_dim(krylov_dim)),
    }
}

fn precond_of_half(p: &Option<Preconditioner>) -> PyResult<Option<Arc<dyn LinOp<Half>>>> {
    match p {
        None => Ok(None),
        Some(p) => match &p.inner {
            PrecondImpl::Half(op) => Ok(Some(op.clone())),
            _ => Err(PyGinkgoError::Type(
                "preconditioner dtype does not match matrix dtype (half)".into(),
            )),
        },
    }
}

fn precond_of_float(p: &Option<Preconditioner>) -> PyResult<Option<Arc<dyn LinOp<f32>>>> {
    match p {
        None => Ok(None),
        Some(p) => match &p.inner {
            PrecondImpl::Float(op) => Ok(Some(op.clone())),
            _ => Err(PyGinkgoError::Type(
                "preconditioner dtype does not match matrix dtype (float)".into(),
            )),
        },
    }
}

fn precond_of_double(p: &Option<Preconditioner>) -> PyResult<Option<Arc<dyn LinOp<f64>>>> {
    match p {
        None => Ok(None),
        Some(p) => match &p.inner {
            PrecondImpl::Double(op) => Ok(Some(op.clone())),
            _ => Err(PyGinkgoError::Type(
                "preconditioner dtype does not match matrix dtype (double)".into(),
            )),
        },
    }
}

fn make_krylov(
    device: &Device,
    matrix: &SparseMatrix,
    precond: Option<Preconditioner>,
    algo: Algo,
    criteria: Criteria,
) -> PyResult<Solver> {
    binding_call(device, || {
        macro_rules! arm {
            ($m:expr, Half) => {{
                let (op, logger) =
                    build_krylov::<Half>($m.clone(), precond_of_half(&precond)?, algo, criteria)?;
                (SolverImpl::Half(op), logger)
            }};
            ($m:expr, Float) => {{
                let (op, logger) =
                    build_krylov::<f32>($m.clone(), precond_of_float(&precond)?, algo, criteria)?;
                (SolverImpl::Float(op), logger)
            }};
            ($m:expr, Double) => {{
                let (op, logger) = build_krylov::<f64>(
                    $m.clone(),
                    precond_of_double(&precond)?,
                    algo,
                    criteria,
                )?;
                (SolverImpl::Double(op), logger)
            }};
        }
        let (inner, logger) = match &matrix.inner {
            MatrixImpl::CsrHalfI32(m) => arm!({ m.clone() as Arc<dyn LinOp<Half>> }, Half),
            MatrixImpl::CsrHalfI64(m) => arm!({ m.clone() as Arc<dyn LinOp<Half>> }, Half),
            MatrixImpl::CsrFloatI32(m) => arm!({ m.clone() as Arc<dyn LinOp<f32>> }, Float),
            MatrixImpl::CsrFloatI64(m) => arm!({ m.clone() as Arc<dyn LinOp<f32>> }, Float),
            MatrixImpl::CsrDoubleI32(m) => arm!({ m.clone() as Arc<dyn LinOp<f64>> }, Double),
            MatrixImpl::CsrDoubleI64(m) => arm!({ m.clone() as Arc<dyn LinOp<f64>> }, Double),
            MatrixImpl::CooHalfI32(m) => arm!({ m.clone() as Arc<dyn LinOp<Half>> }, Half),
            MatrixImpl::CooHalfI64(m) => arm!({ m.clone() as Arc<dyn LinOp<Half>> }, Half),
            MatrixImpl::CooFloatI32(m) => arm!({ m.clone() as Arc<dyn LinOp<f32>> }, Float),
            MatrixImpl::CooFloatI64(m) => arm!({ m.clone() as Arc<dyn LinOp<f32>> }, Float),
            MatrixImpl::CooDoubleI32(m) => arm!({ m.clone() as Arc<dyn LinOp<f64>> }, Double),
            MatrixImpl::CooDoubleI64(m) => arm!({ m.clone() as Arc<dyn LinOp<f64>> }, Double),
        };
        let (rows, cols) = matrix.shape();
        Ok(Solver {
            inner,
            logger,
            name: algo.name(),
            device: device.clone(),
            attached: AttachedLoggers::default(),
            sanitize_values: false,
            system: Some((rows, cols, matrix.nnz(), matrix.format().name())),
            criteria,
            batch_source: Some(matrix.inner.clone()),
        })
    })
}

/// GMRES — Listing 1's
/// `pg.solver.gmres(dev, mtx, preconditioner, max_iters, krylov_dim,
/// reduction_factor)`.
pub fn gmres(
    device: &Device,
    matrix: &SparseMatrix,
    preconditioner: Option<Preconditioner>,
    max_iters: usize,
    krylov_dim: usize,
    reduction_factor: f64,
) -> PyResult<Solver> {
    if krylov_dim == 0 {
        return Err(PyGinkgoError::Value("krylov_dim must be positive".into()));
    }
    make_krylov(
        device,
        matrix,
        preconditioner,
        Algo::Gmres { krylov_dim },
        Criteria::iterations_and_reduction(max_iters, reduction_factor),
    )
}

/// Conjugate Gradient for SPD systems.
pub fn cg(
    device: &Device,
    matrix: &SparseMatrix,
    preconditioner: Option<Preconditioner>,
    max_iters: usize,
    reduction_factor: f64,
) -> PyResult<Solver> {
    make_krylov(
        device,
        matrix,
        preconditioner,
        Algo::Cg,
        Criteria::iterations_and_reduction(max_iters, reduction_factor),
    )
}

/// Conjugate Gradient Squared.
pub fn cgs(
    device: &Device,
    matrix: &SparseMatrix,
    preconditioner: Option<Preconditioner>,
    max_iters: usize,
    reduction_factor: f64,
) -> PyResult<Solver> {
    make_krylov(
        device,
        matrix,
        preconditioner,
        Algo::Cgs,
        Criteria::iterations_and_reduction(max_iters, reduction_factor),
    )
}

/// BiCGStab.
pub fn bicgstab(
    device: &Device,
    matrix: &SparseMatrix,
    preconditioner: Option<Preconditioner>,
    max_iters: usize,
    reduction_factor: f64,
) -> PyResult<Solver> {
    make_krylov(
        device,
        matrix,
        preconditioner,
        Algo::Bicgstab,
        Criteria::iterations_and_reduction(max_iters, reduction_factor),
    )
}

/// Builds a Krylov solver with an iteration-only stopping criterion — the
/// paper's fixed-iteration solver benchmark mode (§6.2.1).
pub fn krylov_fixed_iters(
    device: &Device,
    matrix: &SparseMatrix,
    method: &str,
    iters: usize,
    krylov_dim: usize,
) -> PyResult<Solver> {
    let algo = match method.to_ascii_lowercase().as_str() {
        "cg" => Algo::Cg,
        "cgs" => Algo::Cgs,
        "bicgstab" => Algo::Bicgstab,
        "gmres" => Algo::Gmres { krylov_dim },
        other => {
            return Err(PyGinkgoError::Value(format!(
                "unknown solver method '{other}'"
            )))
        }
    };
    make_krylov(device, matrix, None, algo, Criteria::iterations(iters))
}

fn make_from_csr<F>(device: &Device, matrix: &SparseMatrix, name: &'static str, build: F) -> PyResult<Solver>
where
    F: FnOnce(&MatrixImpl) -> PyResult<SolverImpl>,
{
    binding_call(device, || {
        let csr;
        let source = if matrix.format() == MatrixFormat::Csr {
            matrix
        } else {
            csr = matrix.convert("Csr")?;
            &csr
        };
        let (rows, cols) = matrix.shape();
        Ok(Solver {
            inner: build(&source.inner)?,
            logger: ConvergenceLogger::new(),
            name,
            device: device.clone(),
            attached: AttachedLoggers::default(),
            sanitize_values: false,
            system: Some((rows, cols, matrix.nnz(), matrix.format().name())),
            criteria: Criteria::default(),
            batch_source: None,
        })
    })
}

/// Dense-LU direct solver binding.
pub fn direct(device: &Device, matrix: &SparseMatrix) -> PyResult<Solver> {
    make_from_csr(device, matrix, "direct", |inner| {
        macro_rules! arm {
            ($m:expr, $tag:ident) => {
                SolverImpl::$tag(Arc::new(Direct::new($m.as_ref()).map_err(PyGinkgoError::from)?))
            };
        }
        Ok(match inner {
            MatrixImpl::CsrHalfI32(m) => arm!(m, Half),
            MatrixImpl::CsrHalfI64(m) => arm!(m, Half),
            MatrixImpl::CsrFloatI32(m) => arm!(m, Float),
            MatrixImpl::CsrFloatI64(m) => arm!(m, Float),
            MatrixImpl::CsrDoubleI32(m) => arm!(m, Double),
            MatrixImpl::CsrDoubleI64(m) => arm!(m, Double),
            _ => unreachable!("converted to CSR"),
        })
    })
}

/// Lower triangular solver binding.
pub fn lower_trs(device: &Device, matrix: &SparseMatrix) -> PyResult<Solver> {
    make_from_csr(device, matrix, "lower_trs", |inner| {
        macro_rules! arm {
            ($m:expr, $tag:ident) => {
                SolverImpl::$tag(Arc::new(
                    LowerTrs::new($m.clone()).map_err(PyGinkgoError::from)?,
                ))
            };
        }
        Ok(match inner {
            MatrixImpl::CsrHalfI32(m) => arm!(m, Half),
            MatrixImpl::CsrHalfI64(m) => arm!(m, Half),
            MatrixImpl::CsrFloatI32(m) => arm!(m, Float),
            MatrixImpl::CsrFloatI64(m) => arm!(m, Float),
            MatrixImpl::CsrDoubleI32(m) => arm!(m, Double),
            MatrixImpl::CsrDoubleI64(m) => arm!(m, Double),
            _ => unreachable!("converted to CSR"),
        })
    })
}

/// Upper triangular solver binding.
pub fn upper_trs(device: &Device, matrix: &SparseMatrix) -> PyResult<Solver> {
    make_from_csr(device, matrix, "upper_trs", |inner| {
        macro_rules! arm {
            ($m:expr, $tag:ident) => {
                SolverImpl::$tag(Arc::new(
                    UpperTrs::new($m.clone()).map_err(PyGinkgoError::from)?,
                ))
            };
        }
        Ok(match inner {
            MatrixImpl::CsrHalfI32(m) => arm!(m, Half),
            MatrixImpl::CsrHalfI64(m) => arm!(m, Half),
            MatrixImpl::CsrFloatI32(m) => arm!(m, Float),
            MatrixImpl::CsrFloatI64(m) => arm!(m, Float),
            MatrixImpl::CsrDoubleI32(m) => arm!(m, Double),
            MatrixImpl::CsrDoubleI64(m) => arm!(m, Double),
            _ => unreachable!("converted to CSR"),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::device;
    use crate::preconditioner;
    use crate::tensor::as_tensor_fill;

    fn spd(dev: &Device, n: usize, dtype: &str) -> SparseMatrix {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        SparseMatrix::from_triplets(dev, (n, n), &t, dtype, "int32", "Csr").unwrap()
    }

    #[test]
    fn listing_1_gmres_with_ilu() {
        let dev = device("cuda").unwrap();
        let mtx = spd(&dev, 50, "double");
        let b = as_tensor_fill(&dev, (50, 1), "double", 1.0).unwrap();
        let mut x = as_tensor_fill(&dev, (50, 1), "double", 0.0).unwrap();
        let pre = preconditioner::ilu(&dev, &mtx).unwrap();
        let solver = gmres(&dev, &mtx, Some(pre), 1000, 30, 1e-6).unwrap();
        let logger = solver.apply(&b, &mut x).unwrap();
        assert!(logger.converged(), "{}", logger.stop_reason());
        // Verify the residual through the facade.
        let ax = mtx.spmv(&x).unwrap();
        let mut r = b.clone();
        r.add_scaled(-1.0, &ax).unwrap();
        assert!(r.norm() < 1e-5 * b.norm() * 10.0, "residual {}", r.norm());
    }

    #[test]
    fn all_krylov_methods_solve() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 32, "double");
        let b = as_tensor_fill(&dev, (32, 1), "double", 1.0).unwrap();
        for build in [cg, cgs, bicgstab] {
            let solver = build(&dev, &mtx, None, 500, 1e-9).unwrap();
            let mut x = as_tensor_fill(&dev, (32, 1), "double", 0.0).unwrap();
            let log = solver.apply(&b, &mut x).unwrap();
            assert!(log.converged(), "{} failed: {}", solver.name(), log.stop_reason());
        }
    }

    #[test]
    fn fixed_iteration_mode_runs_exactly_n_iterations() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 64, "double");
        let b = as_tensor_fill(&dev, (64, 1), "double", 1.0).unwrap();
        for method in ["cg", "cgs", "gmres", "bicgstab"] {
            let solver = krylov_fixed_iters(&dev, &mtx, method, 10, 30).unwrap();
            let mut x = as_tensor_fill(&dev, (64, 1), "double", 0.0).unwrap();
            let log = solver.apply(&b, &mut x).unwrap();
            assert_eq!(log.iterations(), 10, "{method}");
            assert!(!log.converged());
        }
        assert!(krylov_fixed_iters(&dev, &mtx, "sor", 10, 30).is_err());
    }

    #[test]
    fn direct_solver_is_exact() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 12, "double");
        let solver = direct(&dev, &mtx).unwrap();
        let b = as_tensor_fill(&dev, (12, 1), "double", 1.0).unwrap();
        let mut x = as_tensor_fill(&dev, (12, 1), "double", 0.0).unwrap();
        solver.apply(&b, &mut x).unwrap();
        let ax = mtx.spmv(&x).unwrap();
        let mut r = b.clone();
        r.add_scaled(-1.0, &ax).unwrap();
        assert!(r.norm() < 1e-10, "residual {}", r.norm());
    }

    #[test]
    fn triangular_solvers_work_through_facade() {
        let dev = device("reference").unwrap();
        let l = SparseMatrix::from_triplets(
            &dev,
            (2, 2),
            &[(0, 0, 2.0), (1, 0, 3.0), (1, 1, 4.0)],
            "double",
            "int32",
            "Csr",
        )
        .unwrap();
        let solver = lower_trs(&dev, &l).unwrap();
        let b = crate::tensor::as_tensor(vec![2.0, 11.0], &dev, (2, 1), "double").unwrap();
        let mut x = as_tensor_fill(&dev, (2, 1), "double", 0.0).unwrap();
        solver.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_vec(), vec![1.0, 2.0]);

        let u = SparseMatrix::from_triplets(
            &dev,
            (2, 2),
            &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 4.0)],
            "double",
            "int32",
            "Csr",
        )
        .unwrap();
        let solver = upper_trs(&dev, &u).unwrap();
        let b = crate::tensor::as_tensor(vec![4.0, 8.0], &dev, (2, 1), "double").unwrap();
        let mut x = as_tensor_fill(&dev, (2, 1), "double", 0.0).unwrap();
        solver.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn dtype_mismatches_raise_type_errors() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 8, "double");
        let solver = cg(&dev, &mtx, None, 100, 1e-8).unwrap();
        let b = as_tensor_fill(&dev, (8, 1), "float", 1.0).unwrap();
        let mut x = as_tensor_fill(&dev, (8, 1), "float", 0.0).unwrap();
        assert!(matches!(solver.apply(&b, &mut x), Err(PyGinkgoError::Type(_))));

        // Preconditioner dtype mismatch.
        let mtx_f = spd(&dev, 8, "float");
        let pre = preconditioner::jacobi(&dev, &mtx_f).unwrap();
        assert!(matches!(
            cg(&dev, &mtx, Some(pre), 100, 1e-8),
            Err(PyGinkgoError::Type(_))
        ));
    }

    #[test]
    fn half_precision_solver_runs() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 16, "half");
        let solver = cg(&dev, &mtx, None, 200, 1e-2).unwrap();
        let b = as_tensor_fill(&dev, (16, 1), "half", 1.0).unwrap();
        let mut x = as_tensor_fill(&dev, (16, 1), "half", 0.0).unwrap();
        let log = solver.apply(&b, &mut x).unwrap();
        assert!(log.iterations() > 0);
    }

    #[test]
    fn with_logger_exposes_events_stream_and_profile() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 32, "double");
        let solver = cg(&dev, &mtx, None, 200, 1e-9)
            .unwrap()
            .with_logger("record")
            .unwrap()
            .with_logger("stream")
            .unwrap()
            .with_logger("profile")
            .unwrap();
        let b = as_tensor_fill(&dev, (32, 1), "double", 1.0).unwrap();
        let mut x = as_tensor_fill(&dev, (32, 1), "double", 0.0).unwrap();
        let log = solver.apply(&b, &mut x).unwrap();
        assert!(log.converged());

        let data = solver.logger_data();
        assert!(
            data.events.iter().any(|e| e.contains("iteration")),
            "record logger should capture iteration events"
        );
        assert!(data.stream.contains("[gko]"), "stream text: {}", data.stream);
        let ops: Vec<&str> = data.profile.iter().map(|p| p.op.as_str()).collect();
        assert!(ops.contains(&"csr"), "profile ops: {ops:?}");
        assert!(ops.contains(&"dense::dot"), "profile ops: {ops:?}");
        assert!(ops.contains(&"solver::Cg"), "profile ops: {ops:?}");
        assert_eq!(data.iterations, log.iterations() as u64);
        assert_eq!(data.solves, 1);
        assert!(data.allocations > 0);

        // Unknown kinds are rejected.
        let plain = cg(&dev, &mtx, None, 10, 1e-9).unwrap();
        assert!(matches!(
            plain.with_logger("tracing"),
            Err(PyGinkgoError::Value(_))
        ));
    }

    #[test]
    fn record_overflow_is_observable_not_silent() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 32, "double");
        // A CG solve on a 32x32 system emits far more than 8 events.
        let solver = cg(&dev, &mtx, None, 200, 1e-9)
            .unwrap()
            .with_logger("record:8")
            .unwrap();
        let b = as_tensor_fill(&dev, (32, 1), "double", 1.0).unwrap();
        let mut x = as_tensor_fill(&dev, (32, 1), "double", 0.0).unwrap();
        solver.apply(&b, &mut x).unwrap();

        let data = solver.logger_data();
        assert_eq!(data.events.len(), 8, "capacity bounds the history");
        assert!(
            data.dropped_events > 0,
            "overflow must surface in dropped_events"
        );

        // Malformed capacities are rejected up front.
        for bad in ["record:", "record:0", "record:many"] {
            let plain = cg(&dev, &mtx, None, 10, 1e-9).unwrap();
            assert!(
                matches!(plain.with_logger(bad), Err(PyGinkgoError::Value(_))),
                "{bad} should be rejected"
            );
        }
    }

    #[test]
    fn metrics_logger_reports_per_kernel_quantiles() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 64, "double");
        let solver = cg(&dev, &mtx, None, 500, 1e-10)
            .unwrap()
            .with_logger("metrics")
            .unwrap();
        assert!(solver.metrics().is_some(), "snapshot available pre-solve");

        let b = as_tensor_fill(&dev, (64, 1), "double", 1.0).unwrap();
        let mut x = as_tensor_fill(&dev, (64, 1), "double", 0.0).unwrap();
        let log = solver.apply(&b, &mut x).unwrap();
        assert!(log.converged());

        let snap = solver.metrics().unwrap();
        // Per-kernel counts and latency quantiles for a CG solve.
        for op in ["csr", "dense::dot", "solver::Cg"] {
            let k = snap.kernel(op).unwrap_or_else(|| panic!("missing {op}"));
            assert!(k.calls > 0, "{op}");
            assert!(
                k.wall_ns.p50() <= k.wall_ns.p95()
                    && k.wall_ns.p95() <= k.wall_ns.p99()
                    && k.wall_ns.p99() <= k.wall_ns.max,
                "{op} quantiles out of order"
            );
        }
        // One SpMV per iteration plus the initial residual `r = b - A x`.
        assert!(snap.kernel("csr").unwrap().calls >= log.iterations() as u64);
        assert_eq!(
            snap.solver_iterations,
            vec![("solver::Cg".to_string(), log.iterations() as u64)]
        );
        assert_eq!(snap.solves, 1);
        assert!(snap.alloc_bytes.count > 0);

        // Both exporters render from the same snapshot.
        assert!(snap.to_prometheus().contains("gko_kernel_calls_total{op=\"csr\"}"));
        assert!(snap.to_chrome_trace().starts_with("{\"traceEvents\":["));

        // The same registry is also visible executor-wide.
        let exec_snap = dev.executor().metrics_snapshot().unwrap();
        assert_eq!(exec_snap.events, snap.events);
    }

    #[test]
    fn coo_system_matrix_is_accepted() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 16, "double").convert("Coo").unwrap();
        let solver = cg(&dev, &mtx, None, 200, 1e-9).unwrap();
        let b = as_tensor_fill(&dev, (16, 1), "double", 1.0).unwrap();
        let mut x = as_tensor_fill(&dev, (16, 1), "double", 0.0).unwrap();
        assert!(solver.apply(&b, &mut x).unwrap().converged());
    }

    /// An (n, S) row-major tensor whose column `s` is `base + s` everywhere.
    fn multi_rhs(dev: &Device, n: usize, s: usize, base: f64) -> Tensor {
        let mut vals = vec![0.0; n * s];
        for i in 0..n {
            for c in 0..s {
                vals[i * s + c] = base + c as f64;
            }
        }
        crate::tensor::as_tensor(vals, dev, (n, s), "double").unwrap()
    }

    #[test]
    fn solve_batch_matches_column_by_column_solves() {
        let dev = device("reference").unwrap();
        let n = 40;
        let systems = 3;
        let mtx = spd(&dev, n, "double");
        let solver = cg(&dev, &mtx, None, 200, 1e-10).unwrap();

        let b = multi_rhs(&dev, n, systems, 1.0);
        let mut x = as_tensor_fill(&dev, (n, systems), "double", 0.0).unwrap();
        let result = solver.solve_batch(&b, &mut x).unwrap();

        assert_eq!(result.num_systems(), systems);
        assert!(result.all_converged(), "reasons: {:?}", result.stop_reasons);
        assert_eq!(result.converged_count(), systems);

        // Each column must agree with an independent single-RHS solve.
        for s in 0..systems {
            let bs = as_tensor_fill(&dev, (n, 1), "double", 1.0 + s as f64).unwrap();
            let mut xs = as_tensor_fill(&dev, (n, 1), "double", 0.0).unwrap();
            let log = solver.apply(&bs, &mut xs).unwrap();
            assert_eq!(result.iterations[s], log.iterations() as usize);
            assert_eq!(result.stop_reasons[s], log.stop_reason());
            for i in 0..n {
                let batched = x.get(i, s).unwrap();
                let single = xs.get(i, 0).unwrap();
                assert!(
                    (batched - single).abs() < 1e-9,
                    "system {s} row {i}: {batched} vs {single}"
                );
            }
        }
    }

    #[test]
    fn solve_batch_bicgstab_converges() {
        let dev = device("reference").unwrap();
        let n = 32;
        let mtx = spd(&dev, n, "double");
        let solver = bicgstab(&dev, &mtx, None, 200, 1e-10).unwrap();
        let b = multi_rhs(&dev, n, 4, 1.0);
        let mut x = as_tensor_fill(&dev, (n, 4), "double", 0.0).unwrap();
        let result = solver.solve_batch(&b, &mut x).unwrap();
        assert!(result.all_converged(), "reasons: {:?}", result.stop_reasons);
        assert!(result.iterations.iter().all(|&it| it > 0));
    }

    #[test]
    fn solve_batch_reports_per_system_stop_reasons() {
        let dev = device("reference").unwrap();
        let n = 24;
        let mtx = spd(&dev, n, "double");
        let solver = cg(&dev, &mtx, None, 200, 1e-10).unwrap();

        // Column 0: ordinary system. Column 1: zero RHS (converges at
        // iteration 0). Column 2: poisoned with NaN (breaks down alone).
        let mut vals = vec![0.0; n * 3];
        for i in 0..n {
            vals[i * 3] = 1.0;
        }
        vals[2] = f64::NAN;
        let b = crate::tensor::as_tensor(vals, &dev, (n, 3), "double").unwrap();
        let mut x = as_tensor_fill(&dev, (n, 3), "double", 0.0).unwrap();
        let result = solver.solve_batch(&b, &mut x).unwrap();

        assert!(result.converged[0]);
        assert!(result.converged[1]);
        assert_eq!(result.iterations[1], 0, "zero RHS converges immediately");
        assert_eq!(result.stop_reasons[2], "breakdown");
        assert!(!result.converged[2]);
        // The healthy columns still carry finite solutions.
        for i in 0..n {
            assert!(x.get(i, 0).unwrap().is_finite());
            assert_eq!(x.get(i, 1).unwrap(), 0.0);
        }
    }

    #[test]
    fn solve_batch_rejects_unbatchable_inputs() {
        let dev = device("reference").unwrap();
        let mtx = spd(&dev, 16, "double");

        // Unsupported algorithm.
        let g = gmres(&dev, &mtx, None, 50, 10, 1e-8).unwrap();
        let b = as_tensor_fill(&dev, (16, 2), "double", 1.0).unwrap();
        let mut x = as_tensor_fill(&dev, (16, 2), "double", 0.0).unwrap();
        assert!(matches!(
            g.solve_batch(&b, &mut x),
            Err(PyGinkgoError::Value(_))
        ));

        let solver = cg(&dev, &mtx, None, 50, 1e-8).unwrap();

        // Shape mismatch between b and x.
        let mut x_bad = as_tensor_fill(&dev, (16, 3), "double", 0.0).unwrap();
        assert!(matches!(
            solver.solve_batch(&b, &mut x_bad),
            Err(PyGinkgoError::Value(_))
        ));

        // Dtype mismatch between solver and operands.
        let bf = as_tensor_fill(&dev, (16, 2), "float", 1.0).unwrap();
        let mut xf = as_tensor_fill(&dev, (16, 2), "float", 0.0).unwrap();
        assert!(matches!(
            solver.solve_batch(&bf, &mut xf),
            Err(PyGinkgoError::Type(_))
        ));

        // COO system matrices don't batch.
        let coo = spd(&dev, 16, "double").convert("Coo").unwrap();
        let coo_solver = cg(&dev, &coo, None, 50, 1e-8).unwrap();
        let mut x2 = as_tensor_fill(&dev, (16, 2), "double", 0.0).unwrap();
        assert!(matches!(
            coo_solver.solve_batch(&b, &mut x2),
            Err(PyGinkgoError::Type(_))
        ));
    }

    #[test]
    fn solve_batch_half_and_float_dtypes_run() {
        let dev = device("reference").unwrap();
        for dtype in ["float", "half"] {
            let mtx = spd(&dev, 12, dtype);
            let solver = cg(&dev, &mtx, None, 200, 1e-2).unwrap();
            let b = as_tensor_fill(&dev, (12, 2), dtype, 1.0).unwrap();
            let mut x = as_tensor_fill(&dev, (12, 2), dtype, 0.0).unwrap();
            let result = solver.solve_batch(&b, &mut x).unwrap();
            assert_eq!(result.num_systems(), 2);
            assert!(result.all_converged(), "{dtype}: {:?}", result.stop_reasons);
        }
    }
}
