//! The GIL analog and per-call binding cost.
//!
//! CPython serializes all binding calls through the Global Interpreter Lock,
//! and each pybind11 crossing pays fixed overhead (argument conversion,
//! overload resolution, reference counting). The facade reproduces both:
//! every public API call runs inside [`binding_call`], which takes a global
//! lock and charges [`pygko_sim::BINDING_CALL_NS`] to the device's virtual
//! timeline. This is the mechanism behind the §6.3 overhead measurements —
//! remove it and the facade times match the engine exactly.

use crate::device::Device;
use crate::reentrant::ReentrantMutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// The global interpreter lock analog.
///
/// Reentrant, like the real GIL: a thread already inside the interpreter
/// may re-enter the binding layer (facade functions compose facade
/// functions, e.g. preconditioner generation converting COO to CSR).
// lock: gil
static GIL: ReentrantMutex = ReentrantMutex::new();

/// Count of facade calls made (diagnostics / tests).
// atomic: counter
static CALLS: AtomicU64 = AtomicU64::new(0);

/// Runs `f` under the GIL, charging one binding crossing to `device`.
pub fn binding_call<R>(device: &Device, f: impl FnOnce() -> R) -> R {
    let _guard = GIL.lock();
    CALLS.fetch_add(1, Ordering::Relaxed);
    device
        .executor()
        .timeline()
        .advance_ns(pygko_sim::BINDING_CALL_NS);
    f()
}

/// Runs `f` under the GIL without a device to charge (module-level calls
/// such as dtype parsing).
pub fn binding_call_nodevice<R>(f: impl FnOnce() -> R) -> R {
    let _guard = GIL.lock();
    CALLS.fetch_add(1, Ordering::Relaxed);
    f()
}

/// Total facade calls made by this process.
pub fn total_calls() -> u64 {
    CALLS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::device;

    #[test]
    fn binding_calls_charge_the_timeline_and_count() {
        let dev = device("reference").unwrap();
        let t0 = dev.executor().timeline().now_ns();
        let c0 = total_calls();
        let out = binding_call(&dev, || 41 + 1);
        assert_eq!(out, 42);
        assert!(total_calls() > c0);
        let charged = dev.executor().timeline().now_ns() - t0;
        assert!(charged >= pygko_sim::BINDING_CALL_NS as u64);
    }

    #[test]
    fn nodevice_calls_count_too() {
        let c0 = total_calls();
        binding_call_nodevice(|| ());
        assert!(total_calls() > c0);
    }

    #[test]
    fn gil_is_reentrant_free_and_releases() {
        // Sequential calls must not deadlock (guard drops between calls).
        let dev = device("reference").unwrap();
        for _ in 0..100 {
            binding_call(&dev, || ());
        }
    }
}
