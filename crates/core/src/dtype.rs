//! Dynamic value and index types (Table 1) with NumPy-style string aliases.

use crate::error::{PyGinkgoError, PyResult};
use std::fmt;
use std::str::FromStr;

/// Runtime value type tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DType {
    /// IEEE binary16 (`"half"`, `"float16"`).
    Half,
    /// IEEE binary32 (`"float"`, `"float32"`, `"single"`).
    Float,
    /// IEEE binary64 (`"double"`, `"float64"`).
    Double,
}

impl DType {
    /// Canonical Ginkgo name (Table 1's "Value Type" column).
    pub fn name(self) -> &'static str {
        match self {
            DType::Half => "half",
            DType::Float => "float",
            DType::Double => "double",
        }
    }

    /// Storage size in bytes (Table 1's "Size" column).
    pub fn bytes(self) -> usize {
        match self {
            DType::Half => 2,
            DType::Float => 4,
            DType::Double => 8,
        }
    }

    /// All supported value types.
    pub fn all() -> [DType; 3] {
        [DType::Half, DType::Float, DType::Double]
    }
}

impl FromStr for DType {
    type Err = PyGinkgoError;

    /// Accepts Ginkgo names and common NumPy/PyTorch aliases,
    /// case-insensitively.
    fn from_str(s: &str) -> PyResult<Self> {
        match s.to_ascii_lowercase().as_str() {
            "half" | "float16" | "f16" => Ok(DType::Half),
            "float" | "float32" | "single" | "f32" => Ok(DType::Float),
            "double" | "float64" | "f64" => Ok(DType::Double),
            other => Err(PyGinkgoError::Type(format!(
                "unsupported dtype '{other}' (expected one of: half, float, double)"
            ))),
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Runtime index type tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexType {
    /// 32-bit signed indices (`"int32"`).
    Int32,
    /// 64-bit signed indices (`"int64"`).
    Int64,
}

impl IndexType {
    /// Canonical name (Table 1's "Index Type" column).
    pub fn name(self) -> &'static str {
        match self {
            IndexType::Int32 => "int32",
            IndexType::Int64 => "int64",
        }
    }

    /// Storage size in bytes.
    pub fn bytes(self) -> usize {
        match self {
            IndexType::Int32 => 4,
            IndexType::Int64 => 8,
        }
    }

    /// All supported index types.
    pub fn all() -> [IndexType; 2] {
        [IndexType::Int32, IndexType::Int64]
    }
}

impl FromStr for IndexType {
    type Err = PyGinkgoError;

    fn from_str(s: &str) -> PyResult<Self> {
        match s.to_ascii_lowercase().as_str() {
            "int32" | "i32" | "int" => Ok(IndexType::Int32),
            "int64" | "i64" | "long" => Ok(IndexType::Int64),
            other => Err(PyGinkgoError::Type(format!(
                "unsupported index type '{other}' (expected int32 or int64)"
            ))),
        }
    }
}

impl fmt::Display for IndexType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_parse_case_insensitively() {
        assert_eq!("FLOAT64".parse::<DType>().unwrap(), DType::Double);
        assert_eq!("single".parse::<DType>().unwrap(), DType::Float);
        assert_eq!("f16".parse::<DType>().unwrap(), DType::Half);
        assert_eq!("Half".parse::<DType>().unwrap(), DType::Half);
        assert_eq!("long".parse::<IndexType>().unwrap(), IndexType::Int64);
        assert_eq!("INT32".parse::<IndexType>().unwrap(), IndexType::Int32);
    }

    #[test]
    fn unknown_names_raise_type_errors() {
        let err = "quad".parse::<DType>().unwrap_err();
        assert!(err.to_string().contains("TypeError"));
        assert!(err.to_string().contains("quad"));
        assert!("int8".parse::<IndexType>().is_err());
    }

    #[test]
    fn table_1_names_and_sizes() {
        assert_eq!(DType::Half.bytes(), 2);
        assert_eq!(DType::Float.bytes(), 4);
        assert_eq!(DType::Double.bytes(), 8);
        assert_eq!(IndexType::Int32.bytes(), 4);
        assert_eq!(IndexType::Int64.bytes(), 8);
        assert_eq!(DType::all().len(), 3);
        assert_eq!(IndexType::all().len(), 2);
    }
}
