//! Dense symmetric eigensolver (cyclic Jacobi rotations).
//!
//! Rayleigh–Ritz and Lanczos reduce large sparse eigenproblems to small
//! dense symmetric ones; this is the facade-level solver for those. The
//! classical cyclic Jacobi method annihilates off-diagonal entries with
//! plane rotations until convergence — unconditionally stable and simple,
//! which is why it is the standard choice for the "small projected problem".

use crate::error::{PyGinkgoError, PyResult};

/// Computes all eigenvalues and eigenvectors of a symmetric `n x n` matrix
/// given in row-major order.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues ascending and
/// `eigenvectors[k]` the normalized eigenvector for `eigenvalues[k]`.
pub fn symmetric_eig(n: usize, a: &[f64]) -> PyResult<(Vec<f64>, Vec<Vec<f64>>)> {
    if a.len() != n * n {
        return Err(PyGinkgoError::Value(format!(
            "matrix buffer has {} entries, expected {}",
            a.len(),
            n * n
        )));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if (a[i * n + j] - a[j * n + i]).abs() > 1e-10 * (1.0 + a[i * n + j].abs()) {
                return Err(PyGinkgoError::Value(format!(
                    "matrix is not symmetric at ({i}, {j})"
                )));
            }
        }
    }
    let mut m = a.to_vec();
    // Eigenvector accumulator, starts as identity.
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let off = |m: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += m[i * n + j] * m[i * n + j];
                }
            }
        }
        s.sqrt()
    };

    let mut sweeps = 0;
    while off(&m) > 1e-12 * (1.0 + frobenius(n, &m)) {
        sweeps += 1;
        if sweeps > 100 {
            return Err(PyGinkgoError::Runtime(
                "jacobi eigensolver failed to converge in 100 sweeps".into(),
            ));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                // Rotation angle annihilating m[p][q].
                let theta = (m[q * n + q] - m[p * n + p]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation: rows/cols p and q of m, cols of v.
                for k in 0..n {
                    let (mkp, mkq) = (m[k * n + p], m[k * n + q]);
                    m[k * n + p] = c * mkp - s * mkq;
                    m[k * n + q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let (mpk, mqk) = (m[p * n + k], m[q * n + k]);
                    m[p * n + k] = c * mpk - s * mqk;
                    m[q * n + k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let (vkp, vkq) = (v[k * n + p], v[k * n + q]);
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[i * n + i], i)).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let eigenvalues: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let eigenvectors: Vec<Vec<f64>> = pairs
        .iter()
        .map(|&(_, col)| (0..n).map(|row| v[row * n + col]).collect())
        .collect();
    Ok((eigenvalues, eigenvectors))
}

fn frobenius(n: usize, m: &[f64]) -> f64 {
    m.iter().take(n * n).map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues_are_the_diagonal() {
        let (vals, vecs) = symmetric_eig(3, &[3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]).unwrap();
        assert_eq!(vals, vec![1.0, 2.0, 3.0]);
        // Eigenvector for eigenvalue 1 is e_1 (up to sign).
        assert!((vecs[0][1].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_eigensystem() {
        // [[2, 1], [1, 2]] -> eigenvalues 1 and 3.
        let (vals, vecs) = symmetric_eig(2, &[2.0, 1.0, 1.0, 2.0]).unwrap();
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 3.0).abs() < 1e-12);
        // Eigenvector for 3 is (1, 1)/sqrt(2) up to sign.
        let v = &vecs[1];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v[0] - v[1]).abs() < 1e-10);
    }

    #[test]
    fn satisfies_eigen_equation_on_random_symmetric() {
        let n = 8;
        let mut a = vec![0.0f64; n * n];
        let mut state = 7u64;
        for i in 0..n {
            for j in 0..=i {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        let (vals, vecs) = symmetric_eig(n, &a).unwrap();
        // Eigenvalues ascend.
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        for (lambda, v) in vals.iter().zip(&vecs) {
            // || A v - lambda v || small, ||v|| = 1.
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-10);
            for i in 0..n {
                let av: f64 = (0..n).map(|j| a[i * n + j] * v[j]).sum();
                assert!(
                    (av - lambda * v[i]).abs() < 1e-9,
                    "eigen equation violated: {av} vs {}",
                    lambda * v[i]
                );
            }
        }
        // Trace equals eigenvalue sum.
        let trace: f64 = (0..n).map(|i| a[i * n + i]).sum();
        let sum: f64 = vals.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_input_is_rejected() {
        assert!(symmetric_eig(2, &[1.0, 2.0, 3.0, 4.0]).is_err());
        assert!(symmetric_eig(2, &[1.0; 3]).is_err());
    }
}
