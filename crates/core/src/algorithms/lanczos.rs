//! Lanczos tridiagonalization eigensolver — another facade-level algorithm
//! in the family the paper's "advanced eigensolvers" outlook names.

use crate::algorithms::eig::symmetric_eig;
use crate::error::{PyGinkgoError, PyResult};
use crate::matrix::SparseMatrix;
use crate::tensor::{as_tensor, Tensor};
use pygko_sim::rng::Xoshiro256pp;

/// Result of a Lanczos run: Ritz values of the Krylov tridiagonalization.
pub struct LanczosResult {
    /// Ritz values, ascending.
    pub values: Vec<f64>,
    /// Number of Lanczos steps actually performed (early breakdown shrinks
    /// it when an invariant subspace is found).
    pub steps: usize,
}

/// Runs `steps` Lanczos iterations with full reorthogonalization on the
/// (assumed symmetric) matrix and returns the eigenvalues of the projected
/// tridiagonal matrix. The extremal values converge to `A`'s extremal
/// eigenvalues.
pub fn lanczos(matrix: &SparseMatrix, steps: usize, seed: u64) -> PyResult<LanczosResult> {
    let (n, nc) = matrix.shape();
    if n != nc {
        return Err(PyGinkgoError::Value("lanczos needs a square matrix".into()));
    }
    let steps = steps.min(n);
    if steps == 0 {
        return Err(PyGinkgoError::Value("need at least one step".into()));
    }
    let device = matrix.device().clone();
    let dtype = matrix.dtype().name();

    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let data: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
    let mut q = as_tensor(data, &device, (n, 1), dtype)?;
    let norm = q.norm();
    q.scale(1.0 / norm);

    let mut basis: Vec<Tensor> = vec![q];
    let mut alphas: Vec<f64> = Vec::with_capacity(steps);
    let mut betas: Vec<f64> = Vec::with_capacity(steps);

    for j in 0..steps {
        let mut w = matrix.spmv(&basis[j])?;
        let alpha = w.dot(&basis[j])?;
        alphas.push(alpha);
        // Full reorthogonalization (stable for the small step counts used
        // at the facade level).
        for qi in &basis {
            let proj = w.dot(qi)?;
            w.add_scaled(-proj, qi)?;
        }
        let beta = w.norm();
        if j + 1 == steps {
            break;
        }
        if beta < 1e-12 {
            // Invariant subspace found — the tridiagonal is exact.
            break;
        }
        betas.push(beta);
        w.scale(1.0 / beta);
        basis.push(w);
    }

    // Assemble the tridiagonal and solve densely.
    let k = alphas.len();
    let mut t = vec![0.0f64; k * k];
    for i in 0..k {
        t[i * k + i] = alphas[i];
        if i + 1 < k {
            t[i * k + i + 1] = betas[i];
            t[(i + 1) * k + i] = betas[i];
        }
    }
    let (values, _) = symmetric_eig(k, &t)?;
    Ok(LanczosResult { values, steps: k })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::device;

    fn laplacian(dev: &crate::device::Device, n: usize) -> SparseMatrix {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        SparseMatrix::from_triplets(dev, (n, n), &t, "double", "int32", "Csr").unwrap()
    }

    #[test]
    fn full_lanczos_recovers_all_eigenvalues() {
        let dev = device("reference").unwrap();
        let n = 12;
        let m = laplacian(&dev, n);
        let r = lanczos(&m, n, 5).unwrap();
        assert_eq!(r.steps, n);
        // Exact eigenvalues: 2 - 2 cos(k pi / (n+1)).
        for (k, got) in r.values.iter().enumerate() {
            let exact = 2.0 - 2.0 * ((k + 1) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert!((got - exact).abs() < 1e-8, "lambda_{k}: {got} vs {exact}");
        }
    }

    #[test]
    fn partial_lanczos_brackets_the_spectrum() {
        let dev = device("reference").unwrap();
        let n = 60;
        let m = laplacian(&dev, n);
        let r = lanczos(&m, 20, 9).unwrap();
        let lo = *r.values.first().unwrap();
        let hi = *r.values.last().unwrap();
        // Extremal Ritz values lie inside (0, 4) and approach the ends.
        assert!(lo > 0.0 && hi < 4.0);
        assert!(hi > 3.8, "largest Ritz value {hi} should approach 4");
        assert!(lo < 0.2, "smallest Ritz value {lo} should approach 0");
    }

    #[test]
    fn breakdown_on_invariant_subspace_is_graceful() {
        // Identity matrix: one step spans an invariant subspace.
        let dev = device("reference").unwrap();
        let t: Vec<(usize, usize, f64)> = (0..5).map(|i| (i, i, 1.0)).collect();
        let m = SparseMatrix::from_triplets(&dev, (5, 5), &t, "double", "int32", "Csr").unwrap();
        let r = lanczos(&m, 5, 2).unwrap();
        assert!(r.steps < 5, "early termination expected, got {}", r.steps);
        assert!((r.values[0] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let dev = device("reference").unwrap();
        let m = laplacian(&dev, 4);
        assert!(lanczos(&m, 0, 0).is_err());
        let rect = SparseMatrix::from_triplets(&dev, (2, 3), &[(0, 0, 1.0)], "double", "int32", "Csr").unwrap();
        assert!(lanczos(&rect, 2, 0).is_err());
    }
}
