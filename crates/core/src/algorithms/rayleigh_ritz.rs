//! The Rayleigh–Ritz method (paper §3.4's proof-of-concept algorithm).
//!
//! Given a symmetric operator `A` and a subspace dimension `k`, the method
//! builds an orthonormal basis `V` (refined here by subspace iteration),
//! projects `H = V^T A V`, solves the small dense eigenproblem, and lifts
//! the eigenvectors back: the Ritz pairs approximate `A`'s extremal
//! eigenpairs. Everything below uses only public facade operations — SpMV,
//! dot, axpy, scale — demonstrating that users can compose new solvers
//! without writing engine (C++/CUDA) code.

use crate::algorithms::eig::symmetric_eig;
use crate::error::{PyGinkgoError, PyResult};
use crate::matrix::SparseMatrix;
use crate::tensor::{as_tensor, Tensor};
use pygko_sim::rng::Xoshiro256pp;

/// One approximate eigenpair.
pub struct RitzPair {
    /// The Ritz value (eigenvalue approximation).
    pub value: f64,
    /// The Ritz vector (normalized).
    pub vector: Tensor,
    /// Residual `||A v - theta v||` — the standard accuracy certificate.
    pub residual: f64,
}

/// Runs Rayleigh–Ritz on the (assumed symmetric) matrix.
///
/// * `k` — subspace dimension (number of Ritz pairs returned, largest
///   eigenvalues first).
/// * `power_steps` — subspace-iteration refinements (`(A^p V)` enriches the
///   basis toward the dominant invariant subspace).
/// * `seed` — starting-basis seed (deterministic).
pub fn rayleigh_ritz(
    matrix: &SparseMatrix,
    k: usize,
    power_steps: usize,
    seed: u64,
) -> PyResult<Vec<RitzPair>> {
    let (n, nc) = matrix.shape();
    if n != nc {
        return Err(PyGinkgoError::Value(format!(
            "rayleigh_ritz needs a square matrix, got ({n}, {nc})"
        )));
    }
    if k == 0 || k > n {
        return Err(PyGinkgoError::Value(format!(
            "subspace dimension {k} must be in 1..={n}"
        )));
    }
    let device = matrix.device().clone();
    let dtype = matrix.dtype().name();

    // Random starting basis.
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut basis: Vec<Tensor> = (0..k)
        .map(|_| {
            let data: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
            as_tensor(data, &device, (n, 1), dtype)
        })
        .collect::<PyResult<_>>()?;

    // Subspace iteration with re-orthonormalization.
    orthonormalize(&mut basis)?;
    for _ in 0..power_steps {
        let mut next = Vec::with_capacity(k);
        for v in &basis {
            next.push(matrix.spmv(v)?);
        }
        basis = next;
        orthonormalize(&mut basis)?;
    }

    // Projected matrix H = V^T A V (k x k, symmetric up to roundoff).
    let av: Vec<Tensor> = basis
        .iter()
        .map(|v| matrix.spmv(v))
        .collect::<PyResult<_>>()?;
    let mut h = vec![0.0f64; k * k];
    for i in 0..k {
        for j in 0..k {
            h[i * k + j] = basis[i].dot(&av[j])?;
        }
    }
    // Symmetrize (roundoff from low-precision dtypes).
    for i in 0..k {
        for j in (i + 1)..k {
            let avg = 0.5 * (h[i * k + j] + h[j * k + i]);
            h[i * k + j] = avg;
            h[j * k + i] = avg;
        }
    }

    let (values, vectors) = symmetric_eig(k, &h)?;

    // Lift: ritz vector = sum_j y[j] * V_j; compute residuals.
    let mut pairs = Vec::with_capacity(k);
    for (theta, y) in values.iter().zip(&vectors).rev() {
        let mut ritz = as_tensor(vec![0.0; n], &device, (n, 1), dtype)?;
        for (coeff, vj) in y.iter().zip(&basis) {
            ritz.add_scaled(*coeff, vj)?;
        }
        let norm = ritz.norm();
        if norm > 0.0 {
            ritz.scale(1.0 / norm);
        }
        let mut res = matrix.spmv(&ritz)?;
        res.add_scaled(-theta, &ritz)?;
        pairs.push(RitzPair {
            value: *theta,
            vector: ritz,
            residual: res.norm(),
        });
    }
    Ok(pairs)
}

/// Modified Gram–Schmidt over facade tensors.
fn orthonormalize(basis: &mut [Tensor]) -> PyResult<()> {
    for i in 0..basis.len() {
        for j in 0..i {
            let proj = basis[i].dot(&basis[j])?;
            let prev = basis[j].clone();
            basis[i].add_scaled(-proj, &prev)?;
        }
        let norm = basis[i].norm();
        if norm <= 1e-14 {
            return Err(PyGinkgoError::Runtime(
                "basis became linearly dependent during orthonormalization".into(),
            ));
        }
        basis[i].scale(1.0 / norm);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::device;

    /// Diagonal matrix: eigenvalues are known exactly.
    #[test]
    fn recovers_dominant_eigenvalues_of_diagonal_matrix() {
        let dev = device("reference").unwrap();
        let n = 30;
        let t: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, (i + 1) as f64)).collect();
        let m = SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
        let pairs = rayleigh_ritz(&m, 4, 120, 7).unwrap();
        assert_eq!(pairs.len(), 4);
        // Largest first; top eigenvalue is n = 30. Subspace iteration
        // converges like (lambda_{k+1}/lambda_1)^p, so tolerances reflect
        // the finite step count.
        assert!((pairs[0].value - 30.0).abs() < 1e-6, "{}", pairs[0].value);
        assert!((pairs[1].value - 29.0).abs() < 1e-4, "{}", pairs[1].value);
        assert!(pairs[0].residual < 1e-2, "residual {}", pairs[0].residual);
        // Dominant eigenvector is e_{n-1}.
        assert!((pairs[0].vector.get(n - 1, 0).unwrap().abs() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn recovers_laplacian_extremal_eigenvalue() {
        // 1-D Laplacian: lambda_max = 2 + 2 cos(pi / (n+1)).
        let dev = device("reference").unwrap();
        let n = 40;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        let m = SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
        // The Laplacian's top eigenvalues cluster near 4, so subspace
        // iteration converges slowly; use a generous subspace and step
        // count and a tolerance matching the cluster gap.
        let pairs = rayleigh_ritz(&m, 6, 300, 3).unwrap();
        let exact = 2.0 + 2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        assert!(
            (pairs[0].value - exact).abs() < 5e-3,
            "got {}, exact {exact}",
            pairs[0].value
        );
    }

    #[test]
    fn ritz_vectors_are_orthonormal() {
        let dev = device("reference").unwrap();
        let n = 20;
        let t: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, (i % 5 + 1) as f64)).collect();
        let m = SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
        let pairs = rayleigh_ritz(&m, 3, 10, 1).unwrap();
        for (i, p) in pairs.iter().enumerate() {
            assert!((p.vector.norm() - 1.0).abs() < 1e-10);
            for q in pairs.iter().skip(i + 1) {
                assert!(p.vector.dot(&q.vector).unwrap().abs() < 1e-8);
            }
        }
    }

    #[test]
    fn invalid_arguments_are_value_errors() {
        let dev = device("reference").unwrap();
        let m = SparseMatrix::from_triplets(&dev, (4, 4), &[(0, 0, 1.0)], "double", "int32", "Csr")
            .unwrap();
        assert!(rayleigh_ritz(&m, 0, 1, 0).is_err());
        assert!(rayleigh_ritz(&m, 5, 1, 0).is_err());
        let rect =
            SparseMatrix::from_triplets(&dev, (4, 3), &[(0, 0, 1.0)], "double", "int32", "Csr")
                .unwrap();
        assert!(rayleigh_ritz(&rect, 2, 1, 0).is_err());
    }

    #[test]
    fn works_on_gpu_device_and_float32() {
        let dev = device("cuda").unwrap();
        let n = 16;
        let t: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, (i + 1) as f64)).collect();
        let m = SparseMatrix::from_triplets(&dev, (n, n), &t, "float", "int32", "Csr").unwrap();
        let pairs = rayleigh_ritz(&m, 2, 25, 11).unwrap();
        assert!((pairs[0].value - 16.0).abs() < 1e-2, "{}", pairs[0].value);
    }
}
