//! Algorithms implemented purely at the facade level (paper §3.4).
//!
//! These are the "pure Python" algorithms of the paper: built exclusively
//! from public facade operations (SpMV, dots, axpys) so they run on any
//! device and any dtype without touching the engine internals — the
//! extensibility proof-of-concept. Provided:
//!
//! * [`rayleigh_ritz`] — the Rayleigh–Ritz subspace eigensolver the paper
//!   names explicitly;
//! * [`power_iteration`] — dominant eigenpair;
//! * [`lanczos`] — Lanczos tridiagonalization eigensolver;
//! * [`eig`] — the small dense symmetric (cyclic Jacobi) eigensolver the
//!   others reduce to.

pub mod eig;
pub mod lanczos;
pub mod power_iteration;
pub mod rayleigh_ritz;

pub use eig::symmetric_eig;
pub use lanczos::lanczos;
pub use power_iteration::power_iteration;
pub use rayleigh_ritz::{rayleigh_ritz, RitzPair};
