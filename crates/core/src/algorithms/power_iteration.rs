//! Power iteration — the simplest facade-level eigensolver.

use crate::error::{PyGinkgoError, PyResult};
use crate::matrix::SparseMatrix;
use crate::tensor::{as_tensor, Tensor};
use pygko_sim::rng::Xoshiro256pp;

/// Result of a power iteration run.
pub struct PowerResult {
    /// Dominant eigenvalue estimate (Rayleigh quotient).
    pub value: f64,
    /// Normalized eigenvector estimate.
    pub vector: Tensor,
    /// Iterations performed.
    pub iterations: usize,
    /// Final `||A v - lambda v||`.
    pub residual: f64,
}

/// Estimates the dominant eigenpair of `matrix` by power iteration.
///
/// Stops when the Rayleigh-quotient change drops below `tol` or after
/// `max_iters` iterations.
pub fn power_iteration(
    matrix: &SparseMatrix,
    max_iters: usize,
    tol: f64,
    seed: u64,
) -> PyResult<PowerResult> {
    let (n, nc) = matrix.shape();
    if n != nc {
        return Err(PyGinkgoError::Value(
            "power iteration needs a square matrix".into(),
        ));
    }
    let device = matrix.device().clone();
    let dtype = matrix.dtype().name();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let data: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
    let mut v = as_tensor(data, &device, (n, 1), dtype)?;
    let norm = v.norm();
    if norm == 0.0 {
        return Err(PyGinkgoError::Runtime("zero starting vector".into()));
    }
    v.scale(1.0 / norm);

    let mut lambda = 0.0f64;
    let mut iterations = 0;
    for it in 1..=max_iters {
        iterations = it;
        let mut av = matrix.spmv(&v)?;
        let norm = av.norm();
        if norm == 0.0 {
            return Err(PyGinkgoError::Runtime(
                "matrix annihilated the iterate (nilpotent direction)".into(),
            ));
        }
        av.scale(1.0 / norm);
        let new_lambda = {
            let aw = matrix.spmv(&av)?;
            av.dot(&aw)?
        };
        let done = (new_lambda - lambda).abs() <= tol * (1.0 + new_lambda.abs());
        lambda = new_lambda;
        v = av;
        if done {
            break;
        }
    }
    let mut res = matrix.spmv(&v)?;
    res.add_scaled(-lambda, &v)?;
    Ok(PowerResult {
        value: lambda,
        vector: v,
        iterations,
        residual: res.norm(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::device;

    #[test]
    fn finds_dominant_eigenvalue_of_diagonal() {
        let dev = device("reference").unwrap();
        let t = vec![(0, 0, 1.0), (1, 1, 5.0), (2, 2, 3.0)];
        let m = SparseMatrix::from_triplets(&dev, (3, 3), &t, "double", "int32", "Csr").unwrap();
        let r = power_iteration(&m, 500, 1e-14, 42).unwrap();
        assert!((r.value - 5.0).abs() < 1e-8, "{}", r.value);
        // The eigenvector error decays as the square root of the eigenvalue
        // error, so the residual tolerance is the looser one.
        assert!(r.residual < 1e-4, "residual {}", r.residual);
        assert!((r.vector.get(1, 0).unwrap().abs() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn agrees_with_rayleigh_ritz() {
        let dev = device("reference").unwrap();
        let n = 25;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 2.0 + (i % 7) as f64));
            if i > 0 {
                t.push((i, i - 1, -0.5));
                t.push((i - 1, i, -0.5));
            }
        }
        let m = SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
        let p = power_iteration(&m, 2000, 1e-13, 3).unwrap();
        let rr = crate::algorithms::rayleigh_ritz(&m, 3, 60, 3).unwrap();
        assert!(
            (p.value - rr[0].value).abs() < 1e-5,
            "power {} vs ritz {}",
            p.value,
            rr[0].value
        );
    }

    #[test]
    fn rectangular_matrix_is_rejected() {
        let dev = device("reference").unwrap();
        let m = SparseMatrix::from_triplets(&dev, (2, 3), &[(0, 0, 1.0)], "double", "int32", "Csr")
            .unwrap();
        assert!(power_iteration(&m, 10, 1e-6, 0).is_err());
    }

    #[test]
    fn iteration_limit_is_respected() {
        let dev = device("reference").unwrap();
        // Two close eigenvalues -> slow convergence.
        let t = vec![(0, 0, 1.0), (1, 1, 0.999)];
        let m = SparseMatrix::from_triplets(&dev, (2, 2), &t, "double", "int32", "Csr").unwrap();
        let r = power_iteration(&m, 3, 0.0, 1).unwrap();
        assert_eq!(r.iterations, 3);
    }
}
