//! Convolution binding — the paper's outlook feature
//! ("integration of a convolution kernel ... required in image processing
//! and convolutional neural networks") exposed through the facade.

use crate::device::Device;
use crate::dtype::DType;
use crate::error::{PyGinkgoError, PyResult};
use crate::gil::binding_call;
use crate::tensor::{Tensor, TensorData};
use gko::matrix::Conv2d;
use gko::LinOp;
use pygko_half::Half;
use std::sync::Arc;

/// A 2-D convolution operator with runtime dtype, applicable to flattened
/// image tensors like any other pyGinkgo operator.
pub struct Conv2dOp {
    inner: ConvImpl,
    device: Device,
    image: (usize, usize),
    kernel: (usize, usize),
}

enum ConvImpl {
    Half(Arc<Conv2d<Half>>),
    Float(Arc<Conv2d<f32>>),
    Double(Arc<Conv2d<f64>>),
}

/// Creates a convolution operator: `pg::conv2d(&dev, (h, w), (kh, kw),
/// kernel_taps, "float")`.
pub fn conv2d(
    device: &Device,
    image: (usize, usize),
    kernel_size: (usize, usize),
    kernel: &[f64],
    dtype: &str,
) -> PyResult<Conv2dOp> {
    binding_call(device, || {
        let dtype: DType = dtype.parse()?;
        let exec = device.executor();
        let inner = match dtype {
            DType::Half => ConvImpl::Half(Arc::new(
                Conv2d::new(
                    exec,
                    image,
                    kernel_size,
                    kernel.iter().map(|&v| Half::from_f64(v)).collect(),
                )
                .map_err(PyGinkgoError::from)?,
            )),
            DType::Float => ConvImpl::Float(Arc::new(
                Conv2d::new(
                    exec,
                    image,
                    kernel_size,
                    kernel.iter().map(|&v| v as f32).collect(),
                )
                .map_err(PyGinkgoError::from)?,
            )),
            DType::Double => ConvImpl::Double(Arc::new(
                Conv2d::new(exec, image, kernel_size, kernel.to_vec())
                    .map_err(PyGinkgoError::from)?,
            )),
        };
        Ok(Conv2dOp {
            inner,
            device: device.clone(),
            image,
            kernel: kernel_size,
        })
    })
}

impl Conv2dOp {
    /// Image dimensions the operator expects (rows * cols input length).
    pub fn image_size(&self) -> (usize, usize) {
        self.image
    }

    /// Filter dimensions.
    pub fn kernel_size(&self) -> (usize, usize) {
        self.kernel
    }

    /// Runtime dtype.
    pub fn dtype(&self) -> DType {
        match &self.inner {
            ConvImpl::Half(_) => DType::Half,
            ConvImpl::Float(_) => DType::Float,
            ConvImpl::Double(_) => DType::Double,
        }
    }

    /// Applies the convolution to a flattened image tensor, returning the
    /// filtered image.
    pub fn apply(&self, image: &Tensor) -> PyResult<Tensor> {
        let dev = self.device.clone();
        binding_call(&dev, || {
            let n = self.image.0 * self.image.1;
            let mut out =
                crate::tensor::as_tensor_fill(&self.device, (n, 1), self.dtype().name(), 0.0)?;
            match (&self.inner, image.data(), out.data_mut()) {
                (ConvImpl::Half(op), TensorData::Half(b), TensorData::Half(x)) => {
                    op.apply(b, x).map_err(PyGinkgoError::from)?
                }
                (ConvImpl::Float(op), TensorData::Float(b), TensorData::Float(x)) => {
                    op.apply(b, x).map_err(PyGinkgoError::from)?
                }
                (ConvImpl::Double(op), TensorData::Double(b), TensorData::Double(x)) => {
                    op.apply(b, x).map_err(PyGinkgoError::from)?
                }
                _ => {
                    return Err(PyGinkgoError::Type(format!(
                        "dtype mismatch: conv is {}, image is {}",
                        self.dtype(),
                        image.dtype()
                    )))
                }
            }
            Ok(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::device;
    use crate::tensor::as_tensor;

    #[test]
    fn blur_through_the_facade() {
        let dev = device("cuda").unwrap();
        let op = conv2d(&dev, (4, 4), (3, 3), &[1.0 / 9.0; 9], "float").unwrap();
        assert_eq!(op.image_size(), (4, 4));
        assert_eq!(op.kernel_size(), (3, 3));
        let img = as_tensor(vec![9.0; 16], &dev, (16, 1), "float").unwrap();
        let out = op.apply(&img).unwrap();
        // Interior average of nine 9s is 9; corners keep 4/9 of the mass.
        assert!((out.get(5, 0).unwrap() - 9.0).abs() < 1e-5);
        assert!((out.get(0, 0).unwrap() - 4.0).abs() < 1e-5);
    }

    #[test]
    fn dtype_mismatch_raises() {
        let dev = device("reference").unwrap();
        let op = conv2d(&dev, (2, 2), (1, 1), &[1.0], "double").unwrap();
        let img = as_tensor(vec![1.0; 4], &dev, (4, 1), "float").unwrap();
        assert!(matches!(op.apply(&img), Err(PyGinkgoError::Type(_))));
    }

    #[test]
    fn invalid_kernel_is_value_error() {
        let dev = device("reference").unwrap();
        assert!(matches!(
            conv2d(&dev, (2, 2), (2, 2), &[1.0; 4], "double"),
            Err(PyGinkgoError::Value(_))
        ));
    }

    #[test]
    fn works_in_half_precision() {
        let dev = device("reference").unwrap();
        let op = conv2d(&dev, (2, 2), (1, 1), &[2.0], "half").unwrap();
        let img = as_tensor(vec![0.5, 1.0, 1.5, 2.0], &dev, (4, 1), "half").unwrap();
        let out = op.apply(&img).unwrap();
        assert_eq!(out.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }
}
