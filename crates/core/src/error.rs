//! Python-exception-flavoured errors.
//!
//! pybind11 translates C++ exceptions into Python exceptions; this module is
//! the analog. Engine errors are wrapped with the exception class a Python
//! user would see (`TypeError` for dtype mismatches, `ValueError` for bad
//! arguments, `RuntimeError` for numerical failures).

use gko::GkoError;
use std::fmt;

/// Facade-level error with a Python exception class.
#[derive(Clone, Debug, PartialEq)]
pub enum PyGinkgoError {
    /// Mismatched or unknown dtypes/argument types (`TypeError`).
    Type(String),
    /// Invalid argument values — shapes, names, ranges (`ValueError`).
    Value(String),
    /// Numerical or engine failures (`RuntimeError`).
    Runtime(String),
    /// File IO problems (`OSError`).
    Os(String),
}

impl fmt::Display for PyGinkgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PyGinkgoError::Type(m) => write!(f, "TypeError: {m}"),
            PyGinkgoError::Value(m) => write!(f, "ValueError: {m}"),
            PyGinkgoError::Runtime(m) => write!(f, "RuntimeError: {m}"),
            PyGinkgoError::Os(m) => write!(f, "OSError: {m}"),
        }
    }
}

impl std::error::Error for PyGinkgoError {}

impl From<GkoError> for PyGinkgoError {
    fn from(e: GkoError) -> Self {
        match &e {
            GkoError::DimensionMismatch { .. } | GkoError::BadInput(_) => {
                PyGinkgoError::Value(e.to_string())
            }
            GkoError::ExecutorMismatch { .. } => PyGinkgoError::Value(e.to_string()),
            GkoError::Breakdown(_) | GkoError::Singular { .. } => {
                PyGinkgoError::Runtime(e.to_string())
            }
            GkoError::Unsupported(_) | GkoError::InvalidConfig(_) => {
                PyGinkgoError::Value(e.to_string())
            }
        }
    }
}

/// Facade result alias.
pub type PyResult<T> = Result<T, PyGinkgoError>;

#[cfg(test)]
mod tests {
    use super::*;
    use gko::Dim2;

    #[test]
    fn display_uses_python_exception_names() {
        assert!(PyGinkgoError::Type("x".into()).to_string().starts_with("TypeError"));
        assert!(PyGinkgoError::Value("x".into()).to_string().starts_with("ValueError"));
        assert!(PyGinkgoError::Runtime("x".into()).to_string().starts_with("RuntimeError"));
        assert!(PyGinkgoError::Os("x".into()).to_string().starts_with("OSError"));
    }

    #[test]
    fn engine_errors_map_to_sensible_exceptions() {
        let dim = GkoError::DimensionMismatch {
            op: "apply",
            expected: Dim2::new(2, 1),
            actual: Dim2::new(3, 1),
        };
        assert!(matches!(PyGinkgoError::from(dim), PyGinkgoError::Value(_)));
        assert!(matches!(
            PyGinkgoError::from(GkoError::Breakdown("cg")),
            PyGinkgoError::Runtime(_)
        ));
        assert!(matches!(
            PyGinkgoError::from(GkoError::Singular { at: 0 }),
            PyGinkgoError::Runtime(_)
        ));
        assert!(matches!(
            PyGinkgoError::from(GkoError::InvalidConfig("x".into())),
            PyGinkgoError::Value(_)
        ));
    }
}
