//! Type-erased dense tensors (`pg.as_tensor`, §5.2).
//!
//! A [`Tensor`] is the facade's NumPy-array analog: dtype chosen at runtime
//! by string, storage on a device, elementwise access in `f64` at the
//! boundary (exactly how Python floats cross pybind11). The construction
//! paths mirror §5.2's buffer protocol: building a `double` tensor from an
//! owned `Vec<f64>` moves the buffer without copying elements — the
//! zero-copy path — while other dtypes convert.

use crate::device::Device;
use crate::dtype::DType;
use crate::error::{PyGinkgoError, PyResult};
use crate::gil::binding_call;
use gko::matrix::Dense;
use gko::{Dim2, Value};
use pygko_half::Half;

/// The monomorphic storage behind a tensor (pre-instantiated per Table 1).
#[derive(Clone, Debug)]
pub(crate) enum TensorData {
    /// binary16 storage.
    Half(Dense<Half>),
    /// binary32 storage.
    Float(Dense<f32>),
    /// binary64 storage.
    Double(Dense<f64>),
}

/// A dense matrix/vector with runtime dtype, bound to a device.
#[derive(Clone, Debug)]
pub struct Tensor {
    pub(crate) data: TensorData,
    pub(crate) device: Device,
}

/// Dispatches a closure over the concrete storage — the facade-side
/// `funcxx(a) -> funcxx_float(a)` mechanism of §5.1.
macro_rules! with_dense {
    ($data:expr, $d:ident => $body:expr) => {
        match $data {
            TensorData::Half($d) => $body,
            TensorData::Float($d) => $body,
            TensorData::Double($d) => $body,
        }
    };
}

impl Tensor {
    pub(crate) fn new(device: Device, data: TensorData) -> Self {
        Tensor { data, device }
    }

    /// Tensor shape as (rows, cols).
    pub fn shape(&self) -> (usize, usize) {
        let d = with_dense!(&self.data, d => d.size());
        (d.rows, d.cols)
    }

    /// Runtime dtype tag.
    pub fn dtype(&self) -> DType {
        match &self.data {
            TensorData::Half(_) => DType::Half,
            TensorData::Float(_) => DType::Float,
            TensorData::Double(_) => DType::Double,
        }
    }

    /// The device this tensor lives on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Reads one element, widened to `f64` (Python float semantics).
    pub fn get(&self, row: usize, col: usize) -> PyResult<f64> {
        let (r, c) = self.shape();
        if row >= r || col >= c {
            return Err(PyGinkgoError::Value(format!(
                "index ({row}, {col}) out of bounds for shape ({r}, {c})"
            )));
        }
        Ok(with_dense!(&self.data, d => d.at(row, col).to_f64()))
    }

    /// Writes one element (rounded to the tensor's dtype).
    pub fn set(&mut self, row: usize, col: usize, value: f64) -> PyResult<()> {
        let (r, c) = self.shape();
        if row >= r || col >= c {
            return Err(PyGinkgoError::Value(format!(
                "index ({row}, {col}) out of bounds for shape ({r}, {c})"
            )));
        }
        with_dense!(&mut self.data, d => d.set(row, col, Value::from_f64(value)));
        Ok(())
    }

    /// Copies the values out as a row-major `f64` vector.
    pub fn to_vec(&self) -> Vec<f64> {
        binding_call(&self.device.clone(), || {
            with_dense!(&self.data, d => d.as_slice().iter().map(|v| v.to_f64()).collect())
        })
    }

    /// Overwrites every element.
    pub fn fill(&mut self, value: f64) {
        let dev = self.device.clone();
        binding_call(&dev, || {
            with_dense!(&mut self.data, d => d.fill(Value::from_f64(value)));
        })
    }

    /// Scales all elements in place.
    pub fn scale(&mut self, alpha: f64) {
        let dev = self.device.clone();
        binding_call(&dev, || {
            with_dense!(&mut self.data, d => d.scale(Value::from_f64(alpha)));
        })
    }

    /// AXPY: `self += alpha * other`. Dtypes must match (like NumPy's
    /// in-place ops, mixed dtypes raise).
    pub fn add_scaled(&mut self, alpha: f64, other: &Tensor) -> PyResult<()> {
        let dev = self.device.clone();
        binding_call(&dev, || match (&mut self.data, &other.data) {
            (TensorData::Half(a), TensorData::Half(b)) => {
                a.add_scaled(Half::from_f64(alpha), b).map_err(Into::into)
            }
            (TensorData::Float(a), TensorData::Float(b)) => {
                a.add_scaled(alpha as f32, b).map_err(Into::into)
            }
            (TensorData::Double(a), TensorData::Double(b)) => {
                a.add_scaled(alpha, b).map_err(Into::into)
            }
            _ => Err(PyGinkgoError::Type(format!(
                "dtype mismatch in add_scaled: {} vs {}",
                self.dtype(),
                other.dtype()
            ))),
        })
    }

    /// Dot product (accumulated in `f64`). Dtypes must match.
    pub fn dot(&self, other: &Tensor) -> PyResult<f64> {
        binding_call(&self.device.clone(), || match (&self.data, &other.data) {
            (TensorData::Half(a), TensorData::Half(b)) => a.compute_dot(b).map_err(Into::into),
            (TensorData::Float(a), TensorData::Float(b)) => a.compute_dot(b).map_err(Into::into),
            (TensorData::Double(a), TensorData::Double(b)) => {
                a.compute_dot(b).map_err(Into::into)
            }
            _ => Err(PyGinkgoError::Type(format!(
                "dtype mismatch in dot: {} vs {}",
                self.dtype(),
                other.dtype()
            ))),
        })
    }

    /// Euclidean norm over all elements.
    pub fn norm(&self) -> f64 {
        binding_call(&self.device.clone(), || {
            with_dense!(&self.data, d => d.compute_norm2())
        })
    }

    /// Converts to another dtype (always copies, like `ndarray.astype`).
    pub fn astype(&self, dtype: &str) -> PyResult<Tensor> {
        let target: DType = dtype.parse()?;
        let host = self.to_vec();
        let (rows, cols) = self.shape();
        from_f64_buffer(&self.device, (rows, cols), target, host)
    }

    /// Clones onto another device, charging simulated transfers.
    pub fn to_device(&self, device: &Device) -> Tensor {
        binding_call(device, || {
            let data = with_dense_clone(&self.data, device);
            Tensor::new(device.clone(), data)
        })
    }

    pub(crate) fn data(&self) -> &TensorData {
        &self.data
    }

    pub(crate) fn data_mut(&mut self) -> &mut TensorData {
        &mut self.data
    }
}

fn with_dense_clone(data: &TensorData, device: &Device) -> TensorData {
    match data {
        TensorData::Half(d) => TensorData::Half(d.clone_to(device.executor())),
        TensorData::Float(d) => TensorData::Float(d.clone_to(device.executor())),
        TensorData::Double(d) => TensorData::Double(d.clone_to(device.executor())),
    }
}

fn from_f64_buffer(
    device: &Device,
    (rows, cols): (usize, usize),
    dtype: DType,
    host: Vec<f64>,
) -> PyResult<Tensor> {
    let dim = Dim2::new(rows, cols);
    let exec = device.executor();
    let data = match dtype {
        DType::Half => TensorData::Half(Dense::from_vec(
            exec,
            dim,
            host.iter().map(|&v| Half::from_f64(v)).collect(),
        )?),
        DType::Float => TensorData::Float(Dense::from_vec(
            exec,
            dim,
            host.iter().map(|&v| v as f32).collect(),
        )?),
        // Zero-copy path (§5.2): the owned buffer moves without an
        // element-wise copy, like a NumPy array passed via buffer protocol.
        DType::Double => TensorData::Double(Dense::from_vec(exec, dim, host)?),
    };
    Ok(Tensor::new(device.clone(), data))
}

/// Builds a tensor from a host buffer — `pg.as_tensor(x, device=...)`.
///
/// `data` is row-major and must have `rows * cols` elements.
pub fn as_tensor(
    data: Vec<f64>,
    device: &Device,
    dim: (usize, usize),
    dtype: &str,
) -> PyResult<Tensor> {
    binding_call(device, || {
        let target: DType = dtype.parse()?;
        if data.len() != dim.0 * dim.1 {
            return Err(PyGinkgoError::Value(format!(
                "buffer of {} elements cannot fill shape ({}, {})",
                data.len(),
                dim.0,
                dim.1
            )));
        }
        from_f64_buffer(device, dim, target, data)
    })
}

/// Builds a constant-filled tensor — Listing 1's
/// `pg.as_tensor(device=dev, dim=(n, 1), dtype="double", fill=1.0)`.
pub fn as_tensor_fill(
    device: &Device,
    dim: (usize, usize),
    dtype: &str,
    fill: f64,
) -> PyResult<Tensor> {
    binding_call(device, || {
        let target: DType = dtype.parse()?;
        let dim2 = Dim2::new(dim.0, dim.1);
        let exec = device.executor();
        let data = match target {
            DType::Half => TensorData::Half(Dense::filled(exec, dim2, Half::from_f64(fill))),
            DType::Float => TensorData::Float(Dense::filled(exec, dim2, fill as f32)),
            DType::Double => TensorData::Double(Dense::filled(exec, dim2, fill)),
        };
        Ok(Tensor::new(device.clone(), data))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::device;

    #[test]
    fn listing_1_style_construction() {
        let dev = device("reference").unwrap();
        let b = as_tensor_fill(&dev, (5, 1), "double", 1.0).unwrap();
        assert_eq!(b.shape(), (5, 1));
        assert_eq!(b.dtype(), DType::Double);
        assert_eq!(b.to_vec(), vec![1.0; 5]);
    }

    #[test]
    fn buffer_construction_and_access() {
        let dev = device("reference").unwrap();
        let mut t = as_tensor(vec![1.0, 2.0, 3.0, 4.0], &dev, (2, 2), "float").unwrap();
        assert_eq!(t.dtype(), DType::Float);
        assert_eq!(t.get(1, 0).unwrap(), 3.0);
        t.set(1, 0, 7.5).unwrap();
        assert_eq!(t.get(1, 0).unwrap(), 7.5);
        assert!(t.get(2, 0).is_err());
        assert!(t.set(0, 2, 0.0).is_err());
    }

    #[test]
    fn wrong_buffer_length_is_a_value_error() {
        let dev = device("reference").unwrap();
        let err = as_tensor(vec![1.0; 3], &dev, (2, 2), "double").unwrap_err();
        assert!(err.to_string().contains("ValueError"));
    }

    #[test]
    fn half_tensor_rounds_values() {
        let dev = device("reference").unwrap();
        let t = as_tensor(vec![0.1], &dev, (1, 1), "half").unwrap();
        let v = t.get(0, 0).unwrap();
        assert!((v - 0.1).abs() < 1e-3 && v != 0.1, "half-rounded: {v}");
    }

    #[test]
    fn astype_roundtrip() {
        let dev = device("reference").unwrap();
        let t = as_tensor(vec![1.5, -2.5], &dev, (2, 1), "double").unwrap();
        let f = t.astype("float32").unwrap();
        assert_eq!(f.dtype(), DType::Float);
        assert_eq!(f.to_vec(), vec![1.5, -2.5]);
        assert!(t.astype("int8").is_err());
    }

    #[test]
    fn vector_math_works() {
        let dev = device("reference").unwrap();
        let mut a = as_tensor(vec![3.0, 4.0], &dev, (2, 1), "double").unwrap();
        let b = as_tensor(vec![1.0, 1.0], &dev, (2, 1), "double").unwrap();
        assert_eq!(a.dot(&b).unwrap(), 7.0);
        assert_eq!(a.norm(), 5.0);
        a.add_scaled(2.0, &b).unwrap();
        assert_eq!(a.to_vec(), vec![5.0, 6.0]);
        a.scale(0.5);
        assert_eq!(a.to_vec(), vec![2.5, 3.0]);
        a.fill(0.0);
        assert_eq!(a.to_vec(), vec![0.0, 0.0]);
    }

    #[test]
    fn mixed_dtype_math_raises_type_error() {
        let dev = device("reference").unwrap();
        let a = as_tensor(vec![1.0], &dev, (1, 1), "double").unwrap();
        let b = as_tensor(vec![1.0], &dev, (1, 1), "float").unwrap();
        assert!(matches!(a.dot(&b), Err(PyGinkgoError::Type(_))));
        let mut a2 = a.clone();
        assert!(matches!(a2.add_scaled(1.0, &b), Err(PyGinkgoError::Type(_))));
    }

    #[test]
    fn to_device_charges_transfer() {
        let host = device("reference").unwrap();
        let gpu = device("cuda").unwrap();
        let t = as_tensor(vec![1.0; 1000], &host, (1000, 1), "double").unwrap();
        let before = gpu.executor().timeline().snapshot();
        let g = t.to_device(&gpu);
        let delta = gpu.executor().timeline().snapshot().since(&before);
        assert!(delta.copies >= 1);
        assert_eq!(g.to_vec(), t.to_vec());
        assert_eq!(g.device().backend_name(), "cuda");
    }
}
