//! PyTorch analog.
//!
//! `torch.sparse` offers CSR and COO SpMV, but (as the paper's §2 and §6.1
//! observe) the kernels are "not optimized": the CSR path uses a classical
//! row-balanced partition with no nnz balancing, the COO path is a
//! scatter-add with atomic updates, and every eager op pays the dispatcher
//! tax. Double precision paths are additionally throttled (the paper calls
//! fp64 in PyTorch "rather inefficient").

use crate::overhead::TORCH_NS;
use gko::base::dim::Dim2;
use gko::base::error::Result;
use gko::base::types::{Index, Value};
use gko::executor::pool::uniform_bounds;
use gko::linop::{check_apply_dims, LinOp};
use gko::matrix::{Coo, Csr, Dense};
use gko::Executor;
use pygko_sim::ChunkWork;
use std::sync::Arc;

/// Extra throughput penalty for fp64 on the unoptimized kernels (paper §2:
/// "computations at double precision in PyTorch and TensorFlow are rather
/// inefficient").
fn fp64_penalty<V: Value>() -> f64 {
    if V::BYTES == 8 {
        1.6
    } else {
        1.0
    }
}

/// Effective-bandwidth inefficiency of the untuned kernels relative to a
/// hand-optimized SpMV (no vectorized loads, redundant row-pointer reads,
/// no streaming stores). Calibrated so PyTorch peaks near the paper's
/// ~110 GFLOP/s against pyGinkgo's ~150.
const KERNEL_INEFFICIENCY: f64 = 1.4;

/// PyTorch CSR SpMV: classical equal-row-count chunks.
pub struct TorchCsr<V: Value, I: Index = i32> {
    matrix: Arc<Csr<V, I>>,
}

impl<V: Value, I: Index> TorchCsr<V, I> {
    /// Wraps a CSR matrix.
    pub fn new(matrix: Arc<Csr<V, I>>) -> Self {
        TorchCsr { matrix }
    }

    fn work(&self) -> Vec<ChunkWork> {
        let spec = self.matrix.executor().spec();
        let rows = self.matrix.size().rows;
        let rp = self.matrix.row_ptrs();
        // GPU: classical partition — equal rows per chunk, so skewed
        // matrices leave most workers idle while one grinds the heavy rows.
        // CPU: torch's sparse CPU kernels are effectively unparallelized
        // (one chunk), which is why the paper measures 10-60x gaps there.
        let chunks = if spec.kind == pygko_sim::DeviceKind::Cpu {
            1
        } else {
            spec.workers * 2
        };
        let bounds = uniform_bounds(rows, chunks);
        let pen = fp64_penalty::<V>();
        bounds
            .windows(2)
            .map(|w| {
                let nnz = (rp[w[1]].to_usize() - rp[w[0]].to_usize()) as f64;
                let r = (w[1] - w[0]) as f64;
                ChunkWork::new(
                    (nnz * (V::BYTES + I::BYTES) as f64 + r * (I::BYTES + V::BYTES) as f64)
                        * pen
                        * KERNEL_INEFFICIENCY,
                    nnz * V::BYTES as f64 * pen * KERNEL_INEFFICIENCY,
                    2.0 * nnz,
                )
            })
            .collect()
    }
}

impl<V: Value, I: Index> LinOp<V> for TorchCsr<V, I> {
    fn size(&self) -> Dim2 {
        self.matrix.size()
    }

    fn executor(&self) -> &Executor {
        self.matrix.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.matrix.size(), b, x)?;
        let k = b.size().cols;
        let rp = self.matrix.row_ptrs();
        let ci = self.matrix.col_idxs();
        let vals = self.matrix.values();
        let bv = b.as_slice();
        let xs = x.as_mut_slice();
        for r in 0..self.matrix.size().rows {
            let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
            for c in 0..k {
                let mut acc = 0.0f64;
                for idx in lo..hi {
                    acc += vals[idx].to_f64() * bv[ci[idx].to_usize() * k + c].to_f64();
                }
                xs[r * k + c] = V::from_f64(acc);
            }
        }
        let exec = self.executor();
        exec.timeline().advance_ns(TORCH_NS);
        exec.launch(&self.work());
        Ok(())
    }

    fn op_name(&self) -> &'static str {
        "torch::csr"
    }
}

/// PyTorch COO SpMV: gather + atomic scatter-add.
pub struct TorchCoo<V: Value, I: Index = i32> {
    matrix: Arc<Coo<V, I>>,
}

impl<V: Value, I: Index> TorchCoo<V, I> {
    /// Wraps a COO matrix.
    pub fn new(matrix: Arc<Coo<V, I>>) -> Self {
        TorchCoo { matrix }
    }

    /// Measures the actual atomic-collision pressure: the fraction of
    /// consecutive entries hitting the same output row (those serialize).
    fn conflict_factor(&self) -> f64 {
        let ri = self.matrix.row_idxs();
        if ri.len() < 2 {
            return 1.0;
        }
        let collisions = ri.windows(2).filter(|w| w[0] == w[1]).count();
        1.0 + collisions as f64 / (ri.len() - 1) as f64
    }

    fn work(&self) -> Vec<ChunkWork> {
        let spec = self.matrix.executor().spec();
        let nnz = self.matrix.nnz();
        let chunks = if spec.kind == pygko_sim::DeviceKind::Cpu {
            1 // see TorchCsr::work: no CPU parallelism in the sparse kernels
        } else {
            spec.workers * 2
        };
        let bounds = uniform_bounds(nnz, chunks);
        let pen = fp64_penalty::<V>();
        let conflict = self.conflict_factor();
        bounds
            .windows(2)
            .map(|w| {
                let e = (w[1] - w[0]) as f64;
                ChunkWork::new(
                    e * (2 * I::BYTES + V::BYTES) as f64 * pen * KERNEL_INEFFICIENCY,
                    // Gather of x plus atomic read-modify-write of y,
                    // scaled by the measured same-row collision factor.
                    e * (V::BYTES as f64 * (1.0 + 2.0 * conflict)) * pen * KERNEL_INEFFICIENCY,
                    2.0 * e,
                )
            })
            .collect()
    }
}

impl<V: Value, I: Index> LinOp<V> for TorchCoo<V, I> {
    fn size(&self) -> Dim2 {
        self.matrix.size()
    }

    fn executor(&self) -> &Executor {
        self.matrix.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.matrix.size(), b, x)?;
        let k = b.size().cols;
        let ri = self.matrix.row_idxs();
        let ci = self.matrix.col_idxs();
        let vals = self.matrix.values();
        let bv = b.as_slice();
        let xs = x.as_mut_slice();
        for v in xs.iter_mut() {
            *v = V::zero();
        }
        // Scatter-add in f64 accumulation order (sorted entries).
        for idx in 0..vals.len() {
            let r = ri[idx].to_usize();
            let v = vals[idx].to_f64();
            for c in 0..k {
                let cur = xs[r * k + c].to_f64();
                xs[r * k + c] =
                    V::from_f64(cur + v * bv[ci[idx].to_usize() * k + c].to_f64());
            }
        }
        let exec = self.executor();
        exec.timeline().advance_ns(TORCH_NS);
        exec.launch(&self.work());
        Ok(())
    }

    fn op_name(&self) -> &'static str {
        "torch::coo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu_executor;

    fn skewed(exec: &Executor, n: usize) -> Arc<Csr<f64, i32>> {
        let mut t = vec![];
        for j in 0..n {
            t.push((0usize, j, 1.0));
        }
        for i in 1..n {
            t.push((i, i, 2.0));
        }
        Arc::new(Csr::from_triplets(exec, Dim2::square(n), &t).unwrap())
    }

    #[test]
    fn torch_csr_and_coo_match_engine_numerics() {
        let exec = gpu_executor("PyTorch");
        let a = skewed(&exec, 100);
        let b = Dense::<f64>::vector(&exec, 100, 1.5);
        let mut want = Dense::zeros(&exec, Dim2::new(100, 1));
        a.apply(&b, &mut want).unwrap();

        let csr = TorchCsr::new(a.clone());
        let mut x = Dense::zeros(&exec, Dim2::new(100, 1));
        csr.apply(&b, &mut x).unwrap();
        assert_eq!(x.to_host_vec(), want.to_host_vec());

        let coo = TorchCoo::new(Arc::new(Coo::from_csr(&a)));
        let mut y = Dense::zeros(&exec, Dim2::new(100, 1));
        coo.apply(&b, &mut y).unwrap();
        for (a, b) in y.to_host_vec().iter().zip(want.to_host_vec()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn classical_partition_suffers_on_skewed_rows() {
        let exec = gpu_executor("PyTorch");
        let a = skewed(&exec, 60_000);
        let torch = TorchCsr::new(a.clone());
        let b = Dense::<f64>::vector(&exec, 60_000, 1.0);
        let mut x = Dense::zeros(&exec, Dim2::new(60_000, 1));
        let t0 = exec.timeline().snapshot();
        torch.apply(&b, &mut x).unwrap();
        let torch_ns = exec.timeline().snapshot().since(&t0).ns;

        let gk = Executor::cuda(0);
        let a2 = a.clone_to(&gk);
        let b2 = Dense::<f64>::vector(&gk, 60_000, 1.0);
        let mut x2 = Dense::zeros(&gk, Dim2::new(60_000, 1));
        let t0 = gk.timeline().snapshot();
        a2.apply(&b2, &mut x2).unwrap();
        let gko_ns = gk.timeline().snapshot().since(&t0).ns;

        assert!(
            torch_ns as f64 > 1.5 * gko_ns as f64,
            "torch {torch_ns} vs gko {gko_ns}: load-balanced kernel should win on skew"
        );
    }

    #[test]
    fn conflict_factor_reflects_row_multiplicity() {
        let exec = gpu_executor("PyTorch");
        // All entries in one row: maximal conflicts.
        let hot = Coo::<f64, i32>::from_triplets(
            &exec,
            Dim2::square(10),
            &(0..10).map(|j| (0usize, j, 1.0)).collect::<Vec<_>>(),
        )
        .unwrap();
        let spread = Coo::<f64, i32>::from_triplets(
            &exec,
            Dim2::square(10),
            &(0..10).map(|i| (i, i, 1.0)).collect::<Vec<_>>(),
        )
        .unwrap();
        let hot_f = TorchCoo::new(Arc::new(hot)).conflict_factor();
        let spread_f = TorchCoo::new(Arc::new(spread)).conflict_factor();
        assert!(hot_f > 1.9, "hot row factor {hot_f}");
        assert!((spread_f - 1.0).abs() < 1e-12, "diagonal factor {spread_f}");
    }

    #[test]
    fn fp64_pays_extra_relative_to_fp32() {
        let exec32 = gpu_executor("PyTorch");
        let exec64 = gpu_executor("PyTorch");
        // Large enough that data movement, not launch overhead, dominates.
        let n = 2_000_000usize;
        let t32: Vec<(usize, usize, f32)> = (0..n).map(|i| (i, i, 1.0f32)).collect();
        let t64: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1.0f64)).collect();
        let a32 = Arc::new(Csr::<f32, i32>::from_triplets(&exec32, Dim2::square(n), &t32).unwrap());
        let a64 = Arc::new(Csr::<f64, i32>::from_triplets(&exec64, Dim2::square(n), &t64).unwrap());
        let b32 = Dense::<f32>::vector(&exec32, n, 1.0);
        let b64 = Dense::<f64>::vector(&exec64, n, 1.0);
        let mut x32 = Dense::zeros(&exec32, Dim2::new(n, 1));
        let mut x64 = Dense::zeros(&exec64, Dim2::new(n, 1));

        let t0 = exec32.timeline().snapshot();
        TorchCsr::new(a32).apply(&b32, &mut x32).unwrap();
        let ns32 = exec32.timeline().snapshot().since(&t0).ns;
        let t0 = exec64.timeline().snapshot();
        TorchCsr::new(a64).apply(&b64, &mut x64).unwrap();
        let ns64 = exec64.timeline().snapshot().since(&t0).ns;
        // fp64 moves 2x the bytes and pays the 1.6x kernel penalty.
        assert!(
            ns64 as f64 > 1.5 * ns32 as f64,
            "fp64 {ns64} should be well above fp32 {ns32}"
        );
    }
}
