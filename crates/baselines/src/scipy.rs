//! SciPy analog: textbook single-threaded sparse kernels.
//!
//! `scipy.sparse` dispatches to C loops that always run on one core — which
//! is why the paper uses SciPy-on-one-core as the speedup baseline
//! everywhere, and why SciPy wins at one thread but "does not scale with
//! increasing number of threads" (§6.1.2).

use crate::overhead::SCIPY_NS;
use gko::base::dim::Dim2;
use gko::base::error::Result;
use gko::base::types::{Index, Value};
use gko::linop::{check_apply_dims, LinOp};
use gko::matrix::{Csr, Dense};
use gko::Executor;
use pygko_sim::ChunkWork;
use std::sync::Arc;

/// SciPy's `csr_matrix @ vector`: one sequential pass over all rows.
pub struct ScipyCsr<V: Value, I: Index = i32> {
    matrix: Arc<Csr<V, I>>,
}

impl<V: Value, I: Index> ScipyCsr<V, I> {
    /// Wraps a CSR matrix that lives on a SciPy (single core) executor.
    pub fn new(matrix: Arc<Csr<V, I>>) -> Self {
        ScipyCsr { matrix }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &Arc<Csr<V, I>> {
        &self.matrix
    }

    fn work(&self) -> Vec<ChunkWork> {
        // One chunk: the whole matrix on one core, plus the Python-call cost.
        let nnz = self.matrix.nnz() as f64;
        let rows = self.matrix.size().rows as f64;
        vec![ChunkWork::new(
            nnz * (V::BYTES + I::BYTES) as f64 + rows * (I::BYTES + V::BYTES) as f64,
            nnz * V::BYTES as f64,
            2.0 * nnz,
        )]
    }
}

impl<V: Value, I: Index> LinOp<V> for ScipyCsr<V, I> {
    fn size(&self) -> Dim2 {
        self.matrix.size()
    }

    fn executor(&self) -> &Executor {
        self.matrix.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.matrix.size(), b, x)?;
        let k = b.size().cols;
        let rp = self.matrix.row_ptrs();
        let ci = self.matrix.col_idxs();
        let vals = self.matrix.values();
        let bv = b.as_slice();
        let xs = x.as_mut_slice();
        // The scipy C loop: sequential over rows.
        for r in 0..self.matrix.size().rows {
            let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
            for c in 0..k {
                let mut acc = 0.0f64;
                for idx in lo..hi {
                    acc += vals[idx].to_f64() * bv[ci[idx].to_usize() * k + c].to_f64();
                }
                xs[r * k + c] = V::from_f64(acc);
            }
        }
        let exec = self.executor();
        exec.timeline().advance_ns(SCIPY_NS);
        exec.launch(&self.work());
        Ok(())
    }

    fn apply_advanced(&self, alpha: V, b: &Dense<V>, beta: V, x: &mut Dense<V>) -> Result<()> {
        // scipy materializes A@b then combines — two passes.
        let mut tmp = Dense::zeros(x.executor(), x.size());
        self.apply(b, &mut tmp)?;
        x.scale(beta);
        x.add_scaled(alpha, &tmp)?;
        Ok(())
    }

    fn op_name(&self) -> &'static str {
        "scipy::csr"
    }
}

/// Builds a SciPy-style solver: the engine's Krylov loop over the
/// single-core SciPy SpMV operator, so every kernel (SpMV, dots, axpys)
/// is charged at one-core rates. Method is `"cg"`, `"cgs"`, or `"gmres"`.
pub fn scipy_solver<V: Value, I: Index>(
    matrix: Arc<Csr<V, I>>,
    method: &str,
    iters: usize,
) -> Result<(Arc<dyn LinOp<V>>, gko::log::ConvergenceLogger)> {
    use gko::solver::{Cg, Cgs, Gmres};
    use gko::stop::Criteria;
    let op: Arc<dyn LinOp<V>> = Arc::new(ScipyCsr::new(matrix));
    let criteria = Criteria::iterations(iters);
    match method {
        "cg" => {
            let s = Cg::new(op)?.with_criteria(criteria);
            let l = s.logger().clone();
            Ok((Arc::new(s), l))
        }
        "cgs" => {
            let s = Cgs::new(op)?.with_criteria(criteria);
            let l = s.logger().clone();
            Ok((Arc::new(s), l))
        }
        "gmres" => {
            let s = Gmres::new(op)?.with_criteria(criteria).with_krylov_dim(30);
            let l = s.logger().clone();
            Ok((Arc::new(s), l))
        }
        other => Err(gko::GkoError::Unsupported(format!(
            "scipy solver '{other}'"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scipy_executor;

    fn sample(exec: &Executor) -> Arc<Csr<f64, i32>> {
        Arc::new(
            Csr::from_triplets(
                exec,
                Dim2::square(3),
                &[
                    (0, 0, 2.0),
                    (0, 2, 1.0),
                    (1, 1, 3.0),
                    (2, 0, 4.0),
                    (2, 1, 5.0),
                    (2, 2, 6.0),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn numerics_match_engine_csr() {
        let exec = scipy_executor();
        let a = sample(&exec);
        let scipy = ScipyCsr::new(a.clone());
        let b = Dense::from_rows(&exec, &[[1.0f64], [2.0], [3.0]]);
        let mut x1 = Dense::zeros(&exec, Dim2::new(3, 1));
        let mut x2 = Dense::zeros(&exec, Dim2::new(3, 1));
        scipy.apply(&b, &mut x1).unwrap();
        a.apply(&b, &mut x2).unwrap();
        assert_eq!(x1.to_host_vec(), x2.to_host_vec());
    }

    #[test]
    fn modeled_time_is_single_core() {
        // SciPy's one-chunk SpMV cannot exploit the worker count: its time
        // on a big matrix exceeds the engine's omp time on the same matrix.
        let n = 20_000usize;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
        }
        let scipy_exec = scipy_executor();
        let a = Arc::new(Csr::<f64, i32>::from_triplets(&scipy_exec, Dim2::square(n), &t).unwrap());
        let scipy = ScipyCsr::new(a);
        let b = Dense::<f64>::vector(&scipy_exec, n, 1.0);
        let mut x = Dense::zeros(&scipy_exec, Dim2::new(n, 1));
        let t0 = scipy_exec.timeline().snapshot();
        scipy.apply(&b, &mut x).unwrap();
        let scipy_ns = scipy_exec.timeline().snapshot().since(&t0).ns;

        let omp = Executor::omp(32);
        let a2 = Csr::<f64, i32>::from_triplets(&omp, Dim2::square(n), &t).unwrap();
        let b2 = Dense::<f64>::vector(&omp, n, 1.0);
        let mut x2 = Dense::zeros(&omp, Dim2::new(n, 1));
        let t0 = omp.timeline().snapshot();
        a2.apply(&b2, &mut x2).unwrap();
        let omp_ns = omp.timeline().snapshot().since(&t0).ns;

        assert!(
            scipy_ns > 3 * omp_ns,
            "scipy {scipy_ns}ns should be much slower than 32-thread engine {omp_ns}ns"
        );
    }

    #[test]
    fn scipy_solvers_run_fixed_iterations() {
        let exec = scipy_executor();
        let n = 50;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
                t.push((i - 1, i, -1.0));
            }
        }
        let a = Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap());
        for method in ["cg", "cgs", "gmres"] {
            let (solver, logger) = scipy_solver(a.clone(), method, 8).unwrap();
            let b = Dense::<f64>::vector(&exec, n, 1.0);
            let mut x = Dense::<f64>::vector(&exec, n, 0.0);
            solver.apply(&b, &mut x).unwrap();
            assert_eq!(logger.snapshot().iterations, 8, "{method}");
        }
        assert!(scipy_solver(a, "sor", 5).is_err());
    }
}
