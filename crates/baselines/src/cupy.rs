//! CuPy analog.
//!
//! SpMV: the cuSPARSE-style *vector* CSR kernel — one warp per row. Short
//! rows waste warp lanes, which is the structural reason the paper measures
//! CuPy 3–4x behind pyGinkgo's nnz-balanced kernel on typical sparse
//! matrices while remaining competitive on long-row matrices.
//!
//! GMRES: implements the three differences §6.2.1 enumerates relative to
//! Ginkgo: (1) the Hessenberg least-squares problem is solved on the *CPU*
//! (charging a device-to-host transfer per inner step instead of Ginkgo's
//! small device kernels), (2) via orthonormal-projection normal equations
//! rather than incremental Givens rotations, and (3) the residual is checked
//! only after the full restart cycle, saving `restart - 1` checks.

use crate::overhead::CUPY_NS;
use gko::base::dim::Dim2;
use gko::base::error::Result;
use gko::base::types::{Index, Value};
use gko::linop::{check_apply_dims, LinOp};
use gko::log::ConvergenceLogger;
use gko::matrix::{Csr, Dense};
use gko::stop::{Criteria, StopReason};
use gko::Executor;
use pygko_sim::ChunkWork;
use std::sync::Arc;

/// Effective-bandwidth efficiency of the generic cuSPARSE vector kernel
/// relative to a matrix-tuned SpMV (published A100 cuSPARSE measurements
/// reach ~70-80% of a tuned kernel's throughput even on long rows).
const CUSPARSE_INEFFICIENCY: f64 = 1.3;

/// cuSPARSE-style CSR SpMV: one warp per row.
pub struct CupyCsr<V: Value, I: Index = i32> {
    matrix: Arc<Csr<V, I>>,
}

impl<V: Value, I: Index> CupyCsr<V, I> {
    /// Wraps a CSR matrix living on a GPU executor.
    pub fn new(matrix: Arc<Csr<V, I>>) -> Self {
        CupyCsr { matrix }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &Arc<Csr<V, I>> {
        &self.matrix
    }

    /// Warp-per-row cost: each row occupies a whole warp, so its effective
    /// element count is padded up to the warp width; rows are batched into
    /// thread-block-sized chunks.
    fn work(&self) -> Vec<ChunkWork> {
        let spec = self.matrix.executor().spec();
        let warp = spec.simd_width.max(1);
        let rp = self.matrix.row_ptrs();
        let rows = self.matrix.size().rows;
        let rows_per_block = 8; // 8 warps per thread block
        let mut chunks = Vec::with_capacity(rows.div_ceil(rows_per_block));
        let mut r = 0usize;
        while r < rows {
            let hi = (r + rows_per_block).min(rows);
            let mut w = ChunkWork::default();
            for row in r..hi {
                let nnz = rp[row + 1].to_usize() - rp[row].to_usize();
                // One warp per row, lanes in lockstep: a row shorter than
                // the warp still occupies the full warp for every memory
                // round — the vector kernel's short-row tax (the reason the
                // paper measures CuPy 3-4x behind on typical sparse rows).
                let padded = nnz.div_ceil(warp).max(1) * warp;
                w.absorb(&ChunkWork::new(
                    (padded as f64 * (V::BYTES + I::BYTES) as f64
                        + (I::BYTES + V::BYTES) as f64)
                        * CUSPARSE_INEFFICIENCY,
                    padded as f64 * V::BYTES as f64 * CUSPARSE_INEFFICIENCY,
                    2.0 * nnz as f64,
                ));
            }
            chunks.push(w);
            r = hi;
        }
        chunks
    }
}

impl<V: Value, I: Index> LinOp<V> for CupyCsr<V, I> {
    fn size(&self) -> Dim2 {
        self.matrix.size()
    }

    fn executor(&self) -> &Executor {
        self.matrix.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.matrix.size(), b, x)?;
        // Numerics identical to the reference kernel; only the cost differs.
        let k = b.size().cols;
        let rp = self.matrix.row_ptrs();
        let ci = self.matrix.col_idxs();
        let vals = self.matrix.values();
        let bv = b.as_slice();
        let xs = x.as_mut_slice();
        for r in 0..self.matrix.size().rows {
            let (lo, hi) = (rp[r].to_usize(), rp[r + 1].to_usize());
            for c in 0..k {
                let mut acc = 0.0f64;
                for idx in lo..hi {
                    acc += vals[idx].to_f64() * bv[ci[idx].to_usize() * k + c].to_f64();
                }
                xs[r * k + c] = V::from_f64(acc);
            }
        }
        let exec = self.executor();
        exec.timeline().advance_ns(CUPY_NS);
        exec.launch(&self.work());
        Ok(())
    }

    fn op_name(&self) -> &'static str {
        "cupy::csr"
    }
}

/// CuPy's restarted GMRES (no preconditioning — CuPy has none natively).
pub struct CupyGmres<V: Value, I: Index = i32> {
    system: Arc<CupyCsr<V, I>>,
    krylov_dim: usize,
    criteria: Criteria,
    logger: ConvergenceLogger,
}

impl<V: Value, I: Index> CupyGmres<V, I> {
    /// Builds the solver with restart length `krylov_dim`.
    pub fn new(matrix: Arc<Csr<V, I>>, krylov_dim: usize, criteria: Criteria) -> Self {
        CupyGmres {
            system: Arc::new(CupyCsr::new(matrix)),
            krylov_dim: krylov_dim.max(1),
            criteria,
            logger: ConvergenceLogger::new(),
        }
    }

    /// The convergence logger.
    pub fn logger(&self) -> &ConvergenceLogger {
        &self.logger
    }

    /// Device-to-host transfer of one Hessenberg column (the per-step CPU
    /// synchronization CuPy pays for its host-side least squares).
    fn charge_host_sync(&self, exec: &Executor, column_len: usize) {
        let bytes = column_len * 8;
        let t = exec.spec().copy_time_ns(bytes);
        exec.timeline().charge_copy(t, bytes);
    }

    /// Fused GEMV-style orthogonalization charge: CuPy performs `V^T w` and
    /// `w -= V h` as two cuBLAS calls, not 2(j+1) vector kernels.
    fn charge_fused_gs(&self, exec: &Executor, n: usize, cols: usize) {
        let spec = exec.spec();
        let chunks = spec.workers.min(n.max(1));
        let bytes = (cols * n * V::BYTES + n * V::BYTES) as f64;
        let flops = (2 * cols * n) as f64;
        let work: Vec<ChunkWork> = (0..chunks)
            .map(|_| ChunkWork::new(bytes / chunks as f64, 0.0, flops / chunks as f64))
            .collect();
        exec.launch(&work);
        exec.launch(&work);
    }
}

/// Virtual cost of CuPy's eager Python iteration loop: each solver iteration
/// makes `python_calls` CuPy API calls (dispatch + descriptor handling) and
/// `host_syncs` device-to-host scalar reads (the `rho`/`alpha` values the
/// Python control flow branches on). Ginkgo's C++ iteration has neither —
/// the structural source of the paper's Fig. 3c speedups at low NNZ.
pub fn iteration_tax_ns(exec: &Executor, python_calls: usize, host_syncs: usize) -> f64 {
    python_calls as f64 * CUPY_NS + host_syncs as f64 * exec.spec().copy_time_ns(8)
}

/// An engine Krylov solver run "from CuPy": the algorithm and kernels are
/// identical, but every iteration additionally pays the Python-loop tax.
pub struct CupyKrylov<V: Value> {
    inner: Arc<dyn LinOp<V>>,
    logger: ConvergenceLogger,
    python_calls: usize,
    host_syncs: usize,
}

impl<V: Value> CupyKrylov<V> {
    /// CuPy's `cupyx.scipy.sparse.linalg.cg` (~20 API calls and 4 scalar
    /// reads per iteration, counting the dispatch inside fused helpers).
    pub fn cg<I: Index>(matrix: Arc<Csr<V, I>>, criteria: Criteria) -> Result<Self> {
        let system: Arc<dyn LinOp<V>> = Arc::new(CupyCsr::new(matrix));
        let s = gko::solver::Cg::new(system)?.with_criteria(criteria);
        let logger = s.logger().clone();
        Ok(CupyKrylov {
            inner: Arc::new(s),
            logger,
            python_calls: 20,
            host_syncs: 4,
        })
    }

    /// CuPy's CGS: the most Python-heavy of the three loops — roughly three
    /// times CG's array operations plus per-iteration scalar branches
    /// (~60 API crossings, 8 scalar reads) — the reason the paper measures
    /// the largest speedups for CGS, up to 4x at low NNZ.
    pub fn cgs<I: Index>(matrix: Arc<Csr<V, I>>, criteria: Criteria) -> Result<Self> {
        let system: Arc<dyn LinOp<V>> = Arc::new(CupyCsr::new(matrix));
        let s = gko::solver::Cgs::new(system)?.with_criteria(criteria);
        let logger = s.logger().clone();
        Ok(CupyKrylov {
            inner: Arc::new(s),
            logger,
            python_calls: 60,
            host_syncs: 8,
        })
    }

    /// The convergence logger.
    pub fn logger(&self) -> &ConvergenceLogger {
        &self.logger
    }
}

impl<V: Value> LinOp<V> for CupyKrylov<V> {
    fn size(&self) -> Dim2 {
        self.inner.size()
    }
    fn executor(&self) -> &Executor {
        self.inner.executor()
    }
    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        self.inner.apply(b, x)?;
        let iters = self.logger.snapshot().iterations;
        let exec = self.inner.executor();
        exec.timeline().advance_ns(
            iteration_tax_ns(exec, self.python_calls, self.host_syncs) * iters as f64,
        );
        Ok(())
    }
    fn op_name(&self) -> &'static str {
        "cupy::krylov"
    }
}

impl<V: Value, I: Index> LinOp<V> for CupyGmres<V, I> {
    fn size(&self) -> Dim2 {
        self.system.size()
    }

    fn executor(&self) -> &Executor {
        self.system.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        let exec = x.executor().clone();
        let n = self.size().rows;
        let dim = Dim2::new(n, 1);
        let m = self.krylov_dim;

        let mut r = Dense::zeros(&exec, dim);
        r.copy_from(b)?;
        self.system.apply_advanced(V::from_f64(-1.0), x, V::one(), &mut r)?;
        let baseline = r.compute_norm2();
        self.logger.begin(baseline);
        if let Some(reason) = self.criteria.check(0, baseline, baseline) {
            self.logger.finish(0, reason);
            return Ok(());
        }

        let mut total_iters = 0usize;
        loop {
            r.copy_from(b)?;
            self.system.apply_advanced(V::from_f64(-1.0), x, V::one(), &mut r)?;
            let beta = r.compute_norm2();
            if let Some(reason) = self.criteria.check(total_iters, beta, baseline) {
                self.logger.finish(total_iters, reason);
                return Ok(());
            }
            if beta == 0.0 || !beta.is_finite() {
                self.logger.finish(total_iters, StopReason::Breakdown);
                return Ok(());
            }

            let mut basis: Vec<Dense<V>> = Vec::with_capacity(m + 1);
            let mut v0 = r.clone();
            v0.scale(V::from_f64(1.0 / beta));
            basis.push(v0);
            // Hessenberg held on the host (CPU-side least squares).
            let mut h: Vec<Vec<f64>> = Vec::with_capacity(m);
            let mut w = Dense::zeros(&exec, dim);
            let mut steps = 0usize;

            for j in 0..m {
                total_iters += 1;
                steps = j + 1;
                self.system.apply(&basis[j], &mut w)?;
                // Fused GEMV-style Gram-Schmidt (two cuBLAS calls) instead
                // of per-vector kernels.
                let mut col = vec![0.0f64; j + 2];
                {
                    let ws = w.as_mut_slice();
                    for (i, vi) in basis.iter().enumerate().take(j + 1) {
                        let vs = vi.as_slice();
                        let mut hij = 0.0f64;
                        for (wk, vk) in ws.iter().zip(vs) {
                            hij += wk.to_f64() * vk.to_f64();
                        }
                        col[i] = hij;
                        let coeff = V::from_f64(-hij);
                        for (wk, &vk) in ws.iter_mut().zip(vs) {
                            *wk += coeff * vk;
                        }
                    }
                }
                self.charge_fused_gs(&exec, n, j + 1);
                let h_next = w.compute_norm2();
                col[j + 1] = h_next;
                // Ship the column to the CPU (difference 1 of §6.2.1)
                // and pay the Python loop for this iteration.
                self.charge_host_sync(&exec, j + 2);
                exec.timeline().advance_ns(iteration_tax_ns(&exec, 6, 0));
                h.push(col);
                if h_next == 0.0 {
                    break;
                }
                let mut v_next = w.clone();
                v_next.scale(V::from_f64(1.0 / h_next));
                basis.push(v_next);
                if total_iters >= self.criteria.max_iters {
                    break;
                }
            }

            // CPU-side least squares via normal equations of the projection
            // (difference 2: no incremental Givens, re-solved per cycle).
            let y = host_least_squares(&h, beta, steps);
            let mut update = Dense::zeros(&exec, dim);
            for (yi, vi) in y.iter().zip(basis.iter()).take(steps) {
                update.add_scaled(V::from_f64(*yi), vi)?;
            }
            x.add_scaled(V::one(), &update)?;

            // Residual checked only now, after the full cycle (difference 3).
            r.copy_from(b)?;
            self.system.apply_advanced(V::from_f64(-1.0), x, V::one(), &mut r)?;
            let res = r.compute_norm2();
            self.logger.record_residual(total_iters, res);
            if let Some(reason) = self.criteria.check(total_iters, res, baseline) {
                self.logger.finish(total_iters, reason);
                return Ok(());
            }
            if total_iters >= self.criteria.max_iters {
                self.logger.finish(total_iters, StopReason::MaxIterations);
                return Ok(());
            }
        }
    }

    fn op_name(&self) -> &'static str {
        "cupy::gmres"
    }
}

/// Solves `min || H y - beta e1 ||` on the host for the (steps+1) x steps
/// Hessenberg column set, via normal equations (CuPy's projection approach).
fn host_least_squares(h: &[Vec<f64>], beta: f64, steps: usize) -> Vec<f64> {
    let rows = steps + 1;
    // Dense H (rows x steps) from the column list.
    let mut hd = vec![0.0f64; rows * steps];
    for (j, col) in h.iter().enumerate().take(steps) {
        for (i, &v) in col.iter().enumerate() {
            if i < rows {
                hd[i * steps + j] = v;
            }
        }
    }
    // Normal equations: (H^T H) y = H^T (beta e1).
    let mut hth = vec![0.0f64; steps * steps];
    let mut rhs = vec![0.0f64; steps];
    for a in 0..steps {
        rhs[a] = hd[a] * beta; // H^T e1 row 0 only
        for bcol in 0..steps {
            let mut acc = 0.0;
            for i in 0..rows {
                acc += hd[i * steps + a] * hd[i * steps + bcol];
            }
            hth[a * steps + bcol] = acc;
        }
    }
    // Gaussian elimination with partial pivoting on the small host system.
    match gko::factorization::DenseLu::factor(steps, &hth).and_then(|lu| lu.solve(&rhs)) {
        Ok(y) => y,
        Err(_) => vec![0.0; steps],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu_executor;

    fn system(exec: &Executor, n: usize) -> Arc<Csr<f64, i32>> {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.5));
            }
            if i + 1 < n {
                t.push((i, i + 1, -0.5));
            }
        }
        Arc::new(Csr::from_triplets(exec, Dim2::square(n), &t).unwrap())
    }

    #[test]
    fn cupy_spmv_matches_engine_numerics() {
        let exec = gpu_executor("CuPy");
        let a = system(&exec, 64);
        let cupy = CupyCsr::new(a.clone());
        let b = Dense::<f64>::vector(&exec, 64, 1.0);
        let mut x1 = Dense::zeros(&exec, Dim2::new(64, 1));
        let mut x2 = Dense::zeros(&exec, Dim2::new(64, 1));
        cupy.apply(&b, &mut x1).unwrap();
        a.apply(&b, &mut x2).unwrap();
        assert_eq!(x1.to_host_vec(), x2.to_host_vec());
    }

    #[test]
    fn warp_padding_makes_short_rows_expensive() {
        // A short-row matrix (3 nnz/row) should cost much more per nnz on
        // the warp-per-row kernel than on the engine's nnz-balanced kernel.
        let exec = gpu_executor("CuPy");
        let a = system(&exec, 50_000);
        let cupy = CupyCsr::new(a.clone());
        let b = Dense::<f64>::vector(&exec, 50_000, 1.0);
        let mut x = Dense::zeros(&exec, Dim2::new(50_000, 1));

        let t0 = exec.timeline().snapshot();
        cupy.apply(&b, &mut x).unwrap();
        let cupy_ns = exec.timeline().snapshot().since(&t0).ns;

        let gk = Executor::cuda(0);
        let a2 = a.clone_to(&gk);
        let b2 = Dense::<f64>::vector(&gk, 50_000, 1.0);
        let mut x2 = Dense::zeros(&gk, Dim2::new(50_000, 1));
        // Warm up so the engine's one-time plan build stays outside the
        // timed window — the paper compares steady-state SpMV.
        a2.apply(&b2, &mut x2).unwrap();
        let t0 = gk.timeline().snapshot();
        a2.apply(&b2, &mut x2).unwrap();
        let gko_ns = gk.timeline().snapshot().since(&t0).ns;

        let ratio = cupy_ns as f64 / gko_ns as f64;
        assert!(
            (2.0..20.0).contains(&ratio),
            "paper: CuPy 3-4x slower; modeled ratio {ratio}"
        );
    }

    #[test]
    fn cupy_gmres_converges_and_checks_once_per_cycle() {
        let exec = gpu_executor("CuPy");
        let a = system(&exec, 60);
        let solver = CupyGmres::new(a.clone(), 30, Criteria::iterations_and_reduction(300, 1e-8));
        let b = Dense::<f64>::vector(&exec, 60, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 60, 0.0);
        solver.apply(&b, &mut x).unwrap();
        let rec = solver.logger().snapshot();
        assert!(rec.converged(), "{:?}", rec.stop_reason);
        // Residual history has ~one entry per restart cycle, not per
        // iteration (difference 3 of §6.2.1).
        assert!(
            rec.residual_history.len() <= rec.iterations / 15 + 2,
            "history {} vs iterations {}",
            rec.residual_history.len(),
            rec.iterations
        );
        // True residual is small.
        let mut r = Dense::zeros(&exec, Dim2::new(60, 1));
        r.copy_from(&b).unwrap();
        a.apply_advanced(-1.0, &x, 1.0, &mut r).unwrap();
        assert!(r.compute_norm2() < 1e-5, "residual {}", r.compute_norm2());
    }

    #[test]
    fn cupy_gmres_fixed_iterations_is_cheaper_per_iteration_than_ginkgo() {
        // §6.2.1: with a fixed iteration count CuPy's GMRES is slightly
        // faster than Ginkgo's (CPU Hessenberg beats device kernels at
        // small sizes; no per-iteration residual checks).
        let iters = 60;
        let exec = gpu_executor("CuPy");
        let a = system(&exec, 1000);
        let solver = CupyGmres::new(a.clone(), 30, Criteria::iterations(iters));
        let b = Dense::<f64>::vector(&exec, 1000, 1.0);
        let mut x = Dense::<f64>::vector(&exec, 1000, 0.0);
        let t0 = exec.timeline().snapshot();
        solver.apply(&b, &mut x).unwrap();
        let cupy_ns = exec.timeline().snapshot().since(&t0).ns;

        let gk = Executor::cuda(0);
        let a2 = Arc::new(a.clone_to(&gk));
        let g = gko::solver::Gmres::new(a2 as Arc<dyn LinOp<f64>>)
            .unwrap()
            .with_krylov_dim(30)
            .with_criteria(Criteria::iterations(iters));
        let b2 = Dense::<f64>::vector(&gk, 1000, 1.0);
        let mut x2 = Dense::<f64>::vector(&gk, 1000, 0.0);
        let t0 = gk.timeline().snapshot();
        g.apply(&b2, &mut x2).unwrap();
        let gko_ns = gk.timeline().snapshot().since(&t0).ns;

        let ratio = gko_ns as f64 / cupy_ns as f64;
        assert!(
            (0.9..2.0).contains(&ratio),
            "Ginkgo/CuPy GMRES time ratio {ratio} should be slightly above 1"
        );
    }
}
