//! TensorFlow analog.
//!
//! TensorFlow supports only the COO format (paper §2) and implements
//! `sparse_dense_matmul` as a gather of products followed by a sorted
//! segment sum — two full passes over the nonzeros with an intermediate
//! products buffer written to and read back from memory. Together with the
//! heaviest per-op executor overhead, this is why the paper measures
//! TensorFlow 2–14x behind pyGinkgo.

use crate::overhead::TF_NS;
use gko::base::dim::Dim2;
use gko::base::error::Result;
use gko::base::types::{Index, Value};
use gko::executor::pool::uniform_bounds;
use gko::linop::{check_apply_dims, LinOp};
use gko::matrix::{Coo, Dense};
use gko::Executor;
use pygko_sim::ChunkWork;
use std::sync::Arc;

/// The fp64 throttle shared with the torch analog (paper §2).
fn fp64_penalty<V: Value>() -> f64 {
    if V::BYTES == 8 {
        1.6
    } else {
        1.0
    }
}

/// Untuned-kernel bandwidth inefficiency (see the torch analog); TF's
/// generic gather/segment ops are further from peak than torch's.
const KERNEL_INEFFICIENCY: f64 = 1.5;

/// TensorFlow's COO-only SpMV via gather + sorted segment sum.
pub struct TfCoo<V: Value, I: Index = i32> {
    matrix: Arc<Coo<V, I>>,
}

impl<V: Value, I: Index> TfCoo<V, I> {
    /// Wraps a COO matrix (TensorFlow's only sparse format).
    pub fn new(matrix: Arc<Coo<V, I>>) -> Self {
        TfCoo { matrix }
    }

    fn work(&self) -> Vec<ChunkWork> {
        let spec = self.matrix.executor().spec();
        let nnz = self.matrix.nnz();
        // Like torch, TF's sparse CPU path does not parallelize.
        let chunks = if spec.kind == pygko_sim::DeviceKind::Cpu {
            1
        } else {
            spec.workers * 2
        };
        let bounds = uniform_bounds(nnz, chunks);
        let pen = fp64_penalty::<V>();
        let mut chunks: Vec<ChunkWork> = Vec::with_capacity(2 * bounds.len());
        // Pass 1: gather products into the intermediate buffer.
        for w in bounds.windows(2) {
            let e = (w[1] - w[0]) as f64;
            chunks.push(ChunkWork::new(
                // read indices+values, write products buffer
                (e * (2 * I::BYTES + V::BYTES) as f64 * pen + e * V::BYTES as f64 * pen)
                    * KERNEL_INEFFICIENCY,
                e * V::BYTES as f64 * pen * KERNEL_INEFFICIENCY, // x gather
                e,
            ));
        }
        // Pass 2: segment-sum the products buffer into y.
        for w in bounds.windows(2) {
            let e = (w[1] - w[0]) as f64;
            chunks.push(ChunkWork::new(
                // re-read products + segment ids, write outputs
                e * (V::BYTES + I::BYTES) as f64 * pen * KERNEL_INEFFICIENCY,
                // segment boundary updates
                e * 0.25 * V::BYTES as f64 * pen * KERNEL_INEFFICIENCY,
                e,
            ));
        }
        chunks
    }
}

impl<V: Value, I: Index> LinOp<V> for TfCoo<V, I> {
    fn size(&self) -> Dim2 {
        self.matrix.size()
    }

    fn executor(&self) -> &Executor {
        self.matrix.executor()
    }

    fn apply(&self, b: &Dense<V>, x: &mut Dense<V>) -> Result<()> {
        check_apply_dims::<V>(self.matrix.size(), b, x)?;
        let k = b.size().cols;
        let ri = self.matrix.row_idxs();
        let ci = self.matrix.col_idxs();
        let vals = self.matrix.values();
        let bv = b.as_slice();

        // Pass 1: products buffer (really materialized, like TF does).
        let nnz = vals.len();
        let mut products = vec![0.0f64; nnz * k];
        for idx in 0..nnz {
            let v = vals[idx].to_f64();
            for c in 0..k {
                products[idx * k + c] = v * bv[ci[idx].to_usize() * k + c].to_f64();
            }
        }
        // Pass 2: sorted segment sum into the output.
        let xs = x.as_mut_slice();
        for v in xs.iter_mut() {
            *v = V::zero();
        }
        let mut idx = 0usize;
        while idx < nnz {
            let r = ri[idx].to_usize();
            let mut acc = vec![0.0f64; k];
            while idx < nnz && ri[idx].to_usize() == r {
                for (c, a) in acc.iter_mut().enumerate() {
                    *a += products[idx * k + c];
                }
                idx += 1;
            }
            for (c, a) in acc.into_iter().enumerate() {
                xs[r * k + c] = V::from_f64(a);
            }
        }
        let exec = self.executor();
        exec.timeline().advance_ns(TF_NS);
        // Two kernel launches: gather pass and segment-sum pass.
        let all = self.work();
        let half = all.len() / 2;
        exec.launch(&all[..half]);
        exec.launch(&all[half..]);
        Ok(())
    }

    fn op_name(&self) -> &'static str {
        "tf::coo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu_executor;
    use gko::matrix::Csr;

    fn system(exec: &Executor, n: usize) -> Arc<Coo<f64, i32>> {
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 3.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        Arc::new(Coo::from_triplets(exec, Dim2::square(n), &t).unwrap())
    }

    #[test]
    fn segment_sum_matches_engine_numerics() {
        let exec = gpu_executor("TensorFlow");
        let coo = system(&exec, 200);
        let csr = coo.to_csr();
        let b = Dense::<f64>::vector(&exec, 200, 1.25);
        let tf = TfCoo::new(coo);
        let mut x1 = Dense::zeros(&exec, Dim2::new(200, 1));
        let mut x2 = Dense::zeros(&exec, Dim2::new(200, 1));
        tf.apply(&b, &mut x1).unwrap();
        csr.apply(&b, &mut x2).unwrap();
        for (a, b) in x1.to_host_vec().iter().zip(x2.to_host_vec()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn two_pass_kernel_is_slowest_of_the_gpu_libraries() {
        let n = 40_000usize;
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 3.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }

        // TensorFlow.
        let tf_exec = gpu_executor("TensorFlow");
        let tf = TfCoo::new(Arc::new(
            Coo::<f64, i32>::from_triplets(&tf_exec, Dim2::square(n), &t).unwrap(),
        ));
        let b = Dense::<f64>::vector(&tf_exec, n, 1.0);
        let mut x = Dense::zeros(&tf_exec, Dim2::new(n, 1));
        let t0 = tf_exec.timeline().snapshot();
        tf.apply(&b, &mut x).unwrap();
        let tf_ns = tf_exec.timeline().snapshot().since(&t0).ns;

        // pyGinkgo (engine CSR).
        let gk = Executor::cuda(0);
        let a = Csr::<f64, i32>::from_triplets(&gk, Dim2::square(n), &t).unwrap();
        let b2 = Dense::<f64>::vector(&gk, n, 1.0);
        let mut x2 = Dense::zeros(&gk, Dim2::new(n, 1));
        // Warm up so the engine's one-time plan build stays outside the
        // timed window — the paper compares steady-state SpMV.
        a.apply(&b2, &mut x2).unwrap();
        let t0 = gk.timeline().snapshot();
        a.apply(&b2, &mut x2).unwrap();
        let gko_ns = gk.timeline().snapshot().since(&t0).ns;

        // PyTorch COO for comparison.
        let to_exec = gpu_executor("PyTorch");
        let torch = crate::torch::TorchCoo::new(Arc::new(
            Coo::<f64, i32>::from_triplets(&to_exec, Dim2::square(n), &t).unwrap(),
        ));
        let b3 = Dense::<f64>::vector(&to_exec, n, 1.0);
        let mut x3 = Dense::zeros(&to_exec, Dim2::new(n, 1));
        let t0 = to_exec.timeline().snapshot();
        torch.apply(&b3, &mut x3).unwrap();
        let torch_ns = to_exec.timeline().snapshot().since(&t0).ns;

        assert!(
            tf_ns > torch_ns && torch_ns > gko_ns,
            "paper ordering pyGinkgo < PyTorch < TensorFlow violated: \
             gko {gko_ns}, torch {torch_ns}, tf {tf_ns}"
        );
        let ratio = tf_ns as f64 / gko_ns as f64;
        assert!(
            (2.0..20.0).contains(&ratio),
            "paper: TF 2-14x slower; modeled {ratio}"
        );
    }

    #[test]
    fn tf_launches_two_kernels_per_spmv() {
        let exec = gpu_executor("TensorFlow");
        let tf = TfCoo::new(system(&exec, 50));
        let b = Dense::<f64>::vector(&exec, 50, 1.0);
        let mut x = Dense::zeros(&exec, Dim2::new(50, 1));
        let t0 = exec.timeline().snapshot();
        tf.apply(&b, &mut x).unwrap();
        assert_eq!(exec.timeline().snapshot().since(&t0).kernels, 2);
    }
}
