//! Algorithmically faithful analogs of the Python libraries the paper
//! benchmarks against (§6): SciPy, CuPy, PyTorch, and TensorFlow.
//!
//! Per `DESIGN.md`'s substitution table, each baseline reproduces the
//! *structural* choices that determine the competitor's performance, not its
//! exact code:
//!
//! | Library | Reproduced structure |
//! |---|---|
//! | SciPy ([`scipy`]) | single-threaded textbook CSR kernels; everything on one core |
//! | CuPy ([`cupy`]) | cuSPARSE-style warp-per-row CSR vector kernel (wasted lanes on short rows); GMRES with CPU-side Hessenberg least squares, orthonormal projection, and residual checks only at the end of each restart cycle (§6.2.1's three differences) |
//! | PyTorch ([`torch`]) | classical (row-balanced, not nnz-balanced) CSR kernel plus COO scatter-add with atomic-update penalty; heavy per-op dispatcher overhead |
//! | TensorFlow ([`tf`]) | COO only (as the paper notes), via a two-pass gather + sorted-segment-sum kernel with an intermediate buffer; the largest per-op overhead |
//!
//! All baselines execute real numerics (their results are bit-compatible
//! with the engine's reference SpMV up to reduction order) and charge their
//! modeled cost to their own executor's virtual timeline.

#![warn(missing_docs)]

pub mod cupy;
pub mod scipy;
pub mod tf;
pub mod torch;

use gko::executor::Backend;
use gko::Executor;
use pygko_sim::DeviceSpec;

/// Per-operation dispatch overhead of each framework, in virtual ns.
///
/// Calibration notes: PyTorch's dispatcher costs ~5–10 us per eager op
/// (documented extensively in the PyTorch dispatcher profiling literature);
/// TensorFlow's eager executor is heavier; CuPy is a thin wrapper above
/// cuSPARSE; SciPy calls C directly.
pub mod overhead {
    /// SciPy: one C call.
    pub const SCIPY_NS: f64 = 600.0;
    /// CuPy: thin Python wrapper + cuSPARSE descriptor handling.
    pub const CUPY_NS: f64 = 2_000.0;
    /// PyTorch: eager dispatcher + autograd bookkeeping.
    pub const TORCH_NS: f64 = 8_000.0;
    /// TensorFlow: eager op executor.
    pub const TF_NS: f64 = 25_000.0;
}

/// Executor modeling the paper's SciPy baseline platform: one Xeon core.
pub fn scipy_executor() -> Executor {
    let mut spec = DeviceSpec::single_core();
    spec.name = "SciPy (1 core)".to_owned();
    Executor::with_spec(Backend::Reference, 0, spec)
}

/// Executor modeling the GPU the Python GPU libraries run on.
pub fn gpu_executor(library: &str) -> Executor {
    let mut spec = DeviceSpec::a100();
    spec.name = format!("{library} on NVIDIA A100");
    Executor::with_spec(Backend::Cuda, 0, spec)
}

/// Executor for CPU runs of torch/tf with a given thread count.
pub fn cpu_executor(library: &str, threads: usize) -> Executor {
    let mut spec = DeviceSpec::xeon_8368(threads);
    spec.name = format!("{library} on Xeon 8368 ({threads} threads)");
    Executor::with_spec(Backend::Omp, 0, spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executors_carry_library_names() {
        assert_eq!(scipy_executor().name(), "SciPy (1 core)");
        assert!(gpu_executor("CuPy").name().contains("CuPy"));
        assert!(cpu_executor("PyTorch", 8).name().contains("8 threads"));
    }

    #[test]
    fn overhead_ordering_matches_framework_weight() {
        let order = [
            overhead::SCIPY_NS,
            overhead::CUPY_NS,
            overhead::TORCH_NS,
            overhead::TF_NS,
        ];
        assert!(order.windows(2).all(|w| w[0] < w[1]), "{order:?}");
    }
}
