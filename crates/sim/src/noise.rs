//! Seeded measurement-noise model.
//!
//! The paper's Fig. 5c observes that the pyGinkgo-minus-Ginkgo time
//! difference occasionally dips below zero because system noise exceeds the
//! sub-microsecond binding overhead. To reproduce that qualitative effect
//! deterministically, the Fig. 5 harness perturbs each virtual measurement
//! with Gaussian noise from this seeded generator. Nothing else in the
//! workspace uses noise.

use crate::rng::Xoshiro256pp;

/// Deterministic Gaussian noise source (Box–Muller over xoshiro256++).
#[derive(Clone, Debug)]
pub struct Noise {
    rng: Xoshiro256pp,
    spare: Option<f64>,
}

impl Noise {
    /// Creates a noise source from a seed. The same seed always yields the
    /// same sequence.
    pub fn new(seed: u64) -> Self {
        Noise {
            rng: Xoshiro256pp::seed_from_u64(seed),
            spare: None,
        }
    }

    /// One standard normal sample.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: two uniforms -> two normals.
        let u1 = self.rng.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Perturbs a measured duration: `t * (1 + rel_sigma*z1) + abs_sigma*z2`,
    /// clamped at zero (a measurement cannot be negative, though a
    /// *difference* of two perturbed measurements can).
    pub fn perturb_ns(&mut self, t_ns: f64, rel_sigma: f64, abs_sigma_ns: f64) -> f64 {
        let z1 = self.standard_normal();
        let z2 = self.standard_normal();
        (t_ns * (1.0 + rel_sigma * z1) + abs_sigma_ns * z2).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Noise::new(42);
        let mut b = Noise::new(42);
        for _ in 0..100 {
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Noise::new(1);
        let mut b = Noise::new(2);
        let same = (0..32)
            .filter(|_| a.standard_normal() == b.standard_normal())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn standard_normal_has_plausible_moments() {
        let mut n = Noise::new(7);
        let samples: Vec<f64> = (0..20_000).map(|_| n.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn perturb_never_negative_but_differences_can_be() {
        let mut n = Noise::new(9);
        let mut saw_negative_diff = false;
        for _ in 0..1000 {
            let a = n.perturb_ns(1000.0, 0.02, 500.0);
            let b = n.perturb_ns(1050.0, 0.02, 500.0);
            assert!(a >= 0.0 && b >= 0.0);
            if b - a < 0.0 {
                saw_negative_diff = true;
            }
        }
        assert!(
            saw_negative_diff,
            "noise should occasionally flip the sign of small differences"
        );
    }
}
