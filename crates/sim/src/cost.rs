//! Work descriptions produced by kernels and consumed by the cost model.

/// The work one schedulable chunk of a kernel performs.
///
/// Kernels construct one `ChunkWork` per unit of parallel work they actually
/// created (a warp's rows, a thread's row block, one segment of a merge-based
/// partition, ...). The distinction between streamed and random bytes is what
/// lets irregular access patterns (gathers of `x[col[i]]`, atomic scatters)
/// cost more than contiguous streams.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChunkWork {
    /// Bytes moved with unit stride (matrix values, index arrays, output).
    pub streamed_bytes: f64,
    /// Bytes accessed irregularly (vector gathers, atomic read-modify-write
    /// targets); charged with the device's random-access penalty.
    pub random_bytes: f64,
    /// Floating point operations performed.
    pub flops: f64,
}

impl ChunkWork {
    /// Creates a work description.
    pub fn new(streamed_bytes: f64, random_bytes: f64, flops: f64) -> Self {
        ChunkWork {
            streamed_bytes,
            random_bytes,
            flops,
        }
    }

    /// Accumulates another chunk's work into this one (used when a kernel
    /// fuses logical work items into one scheduled chunk).
    pub fn absorb(&mut self, other: &ChunkWork) {
        self.streamed_bytes += other.streamed_bytes;
        self.random_bytes += other.random_bytes;
        self.flops += other.flops;
    }

    /// Total bytes, ignoring the access-pattern distinction.
    pub fn total_bytes(&self) -> f64 {
        self.streamed_bytes + self.random_bytes
    }

    /// Scales all components, e.g. to convert per-element costs to per-chunk.
    pub fn scaled(&self, factor: f64) -> ChunkWork {
        ChunkWork {
            streamed_bytes: self.streamed_bytes * factor,
            random_bytes: self.random_bytes * factor,
            flops: self.flops * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_componentwise() {
        let mut a = ChunkWork::new(1.0, 2.0, 3.0);
        a.absorb(&ChunkWork::new(10.0, 20.0, 30.0));
        assert_eq!(a, ChunkWork::new(11.0, 22.0, 33.0));
    }

    #[test]
    fn scaled_multiplies_componentwise() {
        let a = ChunkWork::new(1.0, 2.0, 3.0).scaled(2.0);
        assert_eq!(a, ChunkWork::new(2.0, 4.0, 6.0));
        assert_eq!(a.total_bytes(), 6.0);
    }
}
