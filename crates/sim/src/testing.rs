//! Deterministic randomized-testing harness.
//!
//! The workspace originally used `proptest` for property-based tests, but
//! that crate cannot be fetched in the offline build environment. This module
//! replaces it with a small, fully in-tree driver seeded by the workspace's
//! own portable PRNG ([`crate::rng::Xoshiro256pp`]): every test runs a fixed
//! number of cases, each case derives its generator stream from the test name
//! and case index, so failures reproduce exactly on any host and any run.

use crate::rng::{splitmix64, Xoshiro256pp};

/// Default number of random cases per property (matches the `ProptestConfig`
/// the original suite used).
pub const DEFAULT_CASES: usize = 64;

/// Runs `body` for `cases` deterministic cases.
///
/// The RNG stream of case `i` depends only on `name` and `i`; on a failing
/// assertion the panic message is prefixed with the case index so the exact
/// input can be regenerated.
pub fn check_cases(name: &str, cases: usize, mut body: impl FnMut(&mut Xoshiro256pp)) {
    for case in 0..cases {
        let mut rng = case_rng(name, case as u64);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("randomized property '{name}' failed at case {case}/{cases}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Runs `body` for [`DEFAULT_CASES`] deterministic cases.
pub fn check(name: &str, body: impl FnMut(&mut Xoshiro256pp)) {
    check_cases(name, DEFAULT_CASES, body);
}

/// The RNG for one named case, usable directly when a test wants to manage
/// its own loop.
pub fn case_rng(name: &str, case: u64) -> Xoshiro256pp {
    // Mix the test name into the seed with SplitMix64 over its bytes, so
    // different properties draw independent streams.
    let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ name.len() as u64;
    for &b in name.as_bytes() {
        h = splitmix64(&mut { h ^ b as u64 });
    }
    Xoshiro256pp::seed_from_u64(h ^ case.wrapping_mul(0xA076_1D64_78BD_642F))
}

/// Draws a random square sparse matrix as `(n, unique sorted triplets)` — the
/// shared generator the format/solver properties use.
///
/// `n` is uniform in `[min_n, max_n)`; the entry count is uniform in
/// `[1, max_entries)` before coordinate deduplication; values are uniform in
/// `[-amplitude, amplitude)`.
pub fn sparse_triplets(
    rng: &mut Xoshiro256pp,
    min_n: usize,
    max_n: usize,
    max_entries: usize,
    amplitude: f64,
) -> (usize, Vec<(usize, usize, f64)>) {
    let n = min_n + rng.below_usize(max_n - min_n);
    let count = 1 + rng.below_usize(max_entries - 1);
    let mut entries: Vec<(usize, usize, f64)> = (0..count)
        .map(|_| {
            (
                rng.below_usize(n),
                rng.below_usize(n),
                rng.range_f64(-amplitude, amplitude),
            )
        })
        .collect();
    entries.sort_by_key(|&(r, c, _)| (r, c));
    entries.dedup_by_key(|&mut (r, c, _)| (r, c));
    (n, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_deterministic_and_name_separated() {
        let a: Vec<u64> = (0..4).map(|_| case_rng("prop_a", 3).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|_| case_rng("prop_a", 3).next_u64()).collect();
        assert_eq!(a, b, "same name and case give the same stream");
        assert_ne!(
            case_rng("prop_a", 0).next_u64(),
            case_rng("prop_b", 0).next_u64(),
            "different names give different streams"
        );
        assert_ne!(
            case_rng("prop_a", 0).next_u64(),
            case_rng("prop_a", 1).next_u64(),
            "different cases give different streams"
        );
    }

    #[test]
    fn check_runs_the_requested_number_of_cases() {
        let mut runs = 0;
        check_cases("counting", 17, |_| runs += 1);
        assert_eq!(runs, 17);
    }

    #[test]
    fn sparse_triplets_are_sorted_unique_and_in_range() {
        check("sparse_gen", |rng| {
            let (n, t) = sparse_triplets(rng, 2, 20, 50, 5.0);
            assert!((2..20).contains(&n));
            assert!(!t.is_empty());
            for w in t.windows(2) {
                assert!((w[0].0, w[0].1) < (w[1].0, w[1].1), "sorted unique");
            }
            for &(r, c, v) in &t {
                assert!(r < n && c < n);
                assert!((-5.0..5.0).contains(&v));
            }
        });
    }
}
