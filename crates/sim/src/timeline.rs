//! Per-executor virtual clocks and activity counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically advancing virtual clock plus activity counters.
///
/// Every executor owns one `Timeline`. Kernels charge their modeled duration
/// with [`Timeline::advance_ns`]; benchmark harnesses snapshot the timeline
/// before and after a measured region and report the difference, mirroring
/// the paper's `steady_clock`-around-`synchronize()` methodology.
///
/// All fields are atomics so concurrently executing kernels (the parallel
/// executors run real threads) can charge time without locks. Virtual time is
/// cumulative work time, not wall time, so concurrent charges simply add.
#[derive(Debug, Default)]
pub struct Timeline {
    ns: AtomicU64,
    kernels: AtomicU64,
    copies: AtomicU64,
    bytes_copied: AtomicU64,
    flops: AtomicU64,
}

/// A point-in-time copy of a [`Timeline`]'s counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimelineSnapshot {
    /// Virtual nanoseconds elapsed since construction/reset.
    pub ns: u64,
    /// Kernels launched.
    pub kernels: u64,
    /// Host<->device copies performed.
    pub copies: u64,
    /// Bytes moved by copies.
    pub bytes_copied: u64,
    /// Floating point operations charged.
    pub flops: u64,
}

impl TimelineSnapshot {
    /// Elapsed virtual seconds.
    pub fn seconds(&self) -> f64 {
        self.ns as f64 * 1e-9
    }

    /// Counter-wise difference `self - earlier`; saturates at zero so a
    /// stale snapshot cannot produce nonsense.
    pub fn since(&self, earlier: &TimelineSnapshot) -> TimelineSnapshot {
        TimelineSnapshot {
            ns: self.ns.saturating_sub(earlier.ns),
            kernels: self.kernels.saturating_sub(earlier.kernels),
            copies: self.copies.saturating_sub(earlier.copies),
            bytes_copied: self.bytes_copied.saturating_sub(earlier.bytes_copied),
            flops: self.flops.saturating_sub(earlier.flops),
        }
    }
}

impl Timeline {
    /// Creates a timeline at virtual time zero.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Advances the clock by a modeled duration and counts one kernel.
    pub fn charge_kernel(&self, ns: f64, flops: f64) {
        self.advance_ns(ns);
        self.kernels.fetch_add(1, Ordering::Relaxed);
        self.flops.fetch_add(flops.max(0.0) as u64, Ordering::Relaxed);
    }

    /// Advances the clock by a modeled copy duration and counts it.
    pub fn charge_copy(&self, ns: f64, bytes: usize) {
        self.advance_ns(ns);
        self.copies.fetch_add(1, Ordering::Relaxed);
        self.bytes_copied.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Advances the clock by `ns` nanoseconds (rounded to the nearest whole
    /// nanosecond; negative charges are ignored).
    pub fn advance_ns(&self, ns: f64) {
        if ns > 0.0 {
            self.ns.fetch_add(ns.round() as u64, Ordering::Relaxed);
        }
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Snapshots all counters.
    pub fn snapshot(&self) -> TimelineSnapshot {
        TimelineSnapshot {
            ns: self.ns.load(Ordering::Relaxed),
            kernels: self.kernels.load(Ordering::Relaxed),
            copies: self.copies.load(Ordering::Relaxed),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            flops: self.flops.load(Ordering::Relaxed),
        }
    }

    /// Resets everything to zero (between benchmark repetitions).
    pub fn reset(&self) {
        self.ns.store(0, Ordering::Relaxed);
        self.kernels.store(0, Ordering::Relaxed);
        self.copies.store(0, Ordering::Relaxed);
        self.bytes_copied.store(0, Ordering::Relaxed);
        self.flops.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let t = Timeline::new();
        t.charge_kernel(100.0, 50.0);
        t.charge_kernel(200.4, 25.0);
        t.charge_copy(1000.0, 4096);
        let s = t.snapshot();
        assert_eq!(s.ns, 1300);
        assert_eq!(s.kernels, 2);
        assert_eq!(s.copies, 1);
        assert_eq!(s.bytes_copied, 4096);
        assert_eq!(s.flops, 75);
    }

    #[test]
    fn negative_charge_is_ignored() {
        let t = Timeline::new();
        t.advance_ns(-5.0);
        assert_eq!(t.now_ns(), 0);
    }

    #[test]
    fn snapshot_difference() {
        let t = Timeline::new();
        t.charge_kernel(500.0, 10.0);
        let a = t.snapshot();
        t.charge_kernel(250.0, 5.0);
        let d = t.snapshot().since(&a);
        assert_eq!(d.ns, 250);
        assert_eq!(d.kernels, 1);
        assert!((d.seconds() - 2.5e-7).abs() < 1e-15);
    }

    #[test]
    fn reset_zeroes_counters() {
        let t = Timeline::new();
        t.charge_copy(10.0, 10);
        t.reset();
        assert_eq!(t.snapshot(), TimelineSnapshot::default());
    }

    #[test]
    fn concurrent_charges_are_not_lost() {
        use std::sync::Arc;
        let t = Arc::new(Timeline::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        t.advance_ns(1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.now_ns(), 4000);
    }
}
