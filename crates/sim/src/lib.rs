//! Deterministic performance-model simulator for the pyGinkgo reproduction.
//!
//! The paper evaluates on hardware this reproduction does not have (NVIDIA
//! A100, AMD Instinct MI100, a 76-core Xeon 8368 node). Following the
//! substitution rules in `DESIGN.md`, kernels in this workspace execute
//! *real numerics* while their *reported execution time* is virtual: each
//! kernel describes the work it actually scheduled (per-chunk bytes streamed,
//! bytes gathered randomly, flops) and a [`DeviceSpec`] turns that work
//! description into nanoseconds using a roofline-style cost model with
//! greedy-scheduling load balance.
//!
//! What emerges from structure (not from curve fitting):
//!
//! * load imbalance — computed by greedily scheduling the kernel's *actual*
//!   chunk costs onto the device's workers,
//! * occupancy ramps — small matrices cannot fill hundreds of GPU warp slots,
//! * bandwidth saturation — CPU thread scaling flattens when the socket
//!   bandwidth cap is reached,
//! * launch-overhead amortization — fixed per-kernel costs dominate small
//!   problems and vanish for large ones.
//!
//! Only the device rate constants are calibrated; they are documented on the
//! preset constructors with their public provenance.

#![warn(missing_docs)]

mod cost;
mod noise;
pub mod rng;
mod spec;
pub mod testing;
mod timeline;

pub use cost::ChunkWork;
pub use noise::Noise;
pub use spec::{DeviceKind, DeviceSpec};
pub use timeline::{Timeline, TimelineSnapshot};

/// Virtual-time cost, in nanoseconds, charged by the `pyginkgo` facade for
/// one dynamically-dispatched API call (argument validation, dtype-string
/// parsing, registry lookup, handle reference counting).
///
/// Calibration: the paper (§6.3, Fig. 5c) reports binding overheads of
/// 1e-7–1e-5 s per SpMV call, i.e. 25-35% of a small matrix's kernel time
/// (Fig. 5b). A bare pybind11 crossing costs a few hundred ns, but one
/// pyGinkgo operation performs several (argument conversion, dtype dispatch,
/// result wrapping, handle refcounting) plus interpreter work around them;
/// the aggregate charged per facade call is 3 us, which lands Fig. 5b/5c in
/// the paper's ranges.
pub const BINDING_CALL_NS: f64 = 3_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_call_cost_is_in_papers_range() {
        assert!((100.0..=10_000.0).contains(&BINDING_CALL_NS));
    }

    #[test]
    fn presets_are_distinct_devices() {
        let a100 = DeviceSpec::a100();
        let mi100 = DeviceSpec::mi100();
        let xeon = DeviceSpec::xeon_8368(32);
        assert_ne!(a100.name, mi100.name);
        assert!(a100.mem_bw_gbps > mi100.mem_bw_gbps);
        assert!(a100.mem_bw_gbps > xeon.mem_bw_gbps);
        assert_eq!(xeon.kind, DeviceKind::Cpu);
        assert_eq!(a100.kind, DeviceKind::Gpu);
    }
}
