//! Device descriptions and the kernel cost model.

use crate::cost::ChunkWork;
use std::collections::BinaryHeap;

/// Broad device class; affects defaults and reporting only — all timing comes
/// from the numeric fields of [`DeviceSpec`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceKind {
    /// Host processor (OpenMP-style threading in Ginkgo terms).
    Cpu,
    /// Discrete accelerator with its own memory (CUDA/HIP executors).
    Gpu,
}

/// A simulated execution platform.
///
/// A "worker" is the unit of concurrent progress the cost model schedules
/// chunks onto: a hardware warp/wavefront execution slot on GPUs, a thread on
/// CPUs. Aggregate rates cap the sum over workers, which is how bandwidth
/// saturation appears.
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Human-readable device name, e.g. `"NVIDIA A100"`.
    pub name: String,
    /// CPU or GPU.
    pub kind: DeviceKind,
    /// Number of concurrently progressing workers.
    pub workers: usize,
    /// SIMD/warp width of one worker. Kernels use this to decide chunk
    /// granularity; lanes left idle by short rows are wasted work.
    pub simd_width: usize,
    /// Aggregate streaming memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Streaming bandwidth one worker can sustain alone, GB/s.
    pub worker_bw_gbps: f64,
    /// Aggregate peak arithmetic rate in GFLOP/s.
    pub flops_gflops: f64,
    /// Multiplier applied to randomly-gathered bytes (cache-unfriendly
    /// accesses such as `x[col[i]]` in SpMV).
    pub random_access_penalty: f64,
    /// Fixed cost of launching one kernel / opening one parallel region, ns.
    pub kernel_launch_ns: f64,
    /// Per-chunk scheduling overhead, ns (task dispatch, warp scheduling).
    pub chunk_overhead_ns: f64,
    /// Host<->device copy latency, ns (0 for CPU devices).
    pub copy_latency_ns: f64,
    /// Host<->device copy bandwidth, GB/s (PCIe for GPUs).
    pub copy_bw_gbps: f64,
}

impl DeviceSpec {
    /// NVIDIA A100-SXM4-40GB model.
    ///
    /// Provenance: 108 SMs x 4 warp schedulers = 432 warp slots; 1555 GB/s
    /// HBM2e; FP32 peak 19.5 TFLOP/s (we use an achievable 16 TFLOP/s);
    /// ~8 us launch-to-completion latency for a null kernel including the
    /// stream synchronization the benchmarks perform (launch alone is
    /// ~4 us); PCIe 4.0 x16 ~ 25 GB/s effective.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "NVIDIA A100".to_owned(),
            kind: DeviceKind::Gpu,
            workers: 432,
            simd_width: 32,
            mem_bw_gbps: 1555.0,
            worker_bw_gbps: 7.5,
            flops_gflops: 16_000.0,
            random_access_penalty: 1.55,
            kernel_launch_ns: 8_000.0,
            chunk_overhead_ns: 8.0,
            copy_latency_ns: 10_000.0,
            copy_bw_gbps: 25.0,
        }
    }

    /// AMD Instinct MI100 model.
    ///
    /// Provenance: 120 CUs x 4 SIMD units = 480 wavefront slots of width 64;
    /// 1228 GB/s HBM2; FP32 peak 23 TFLOP/s (achievable ~15); HIP
    /// launch+sync latency is measured higher than CUDA's (~11 us);
    /// slightly worse cache
    /// behaviour on irregular gathers in published SpMV studies
    /// (Tsai/Cojean/Anzt 2020), hence the higher random-access penalty.
    pub fn mi100() -> Self {
        DeviceSpec {
            name: "AMD Instinct MI100".to_owned(),
            kind: DeviceKind::Gpu,
            workers: 480,
            simd_width: 64,
            mem_bw_gbps: 1228.0,
            worker_bw_gbps: 6.0,
            flops_gflops: 15_000.0,
            random_access_penalty: 1.8,
            kernel_launch_ns: 11_000.0,
            chunk_overhead_ns: 10.0,
            copy_latency_ns: 12_000.0,
            copy_bw_gbps: 22.0,
        }
    }

    /// One socket of the HoreKa CPU node: Intel Xeon Platinum 8368
    /// (Ice Lake, 38 cores), limited to `threads` worker threads as the
    /// paper's thread sweep does (1..32).
    ///
    /// Provenance: 8-channel DDR4-3200 = 204.8 GB/s per socket (~175 GB/s
    /// achievable stream); a single Ice Lake core sustains ~12 GB/s;
    /// AVX-512 FP32 peak ~2.4 GFLOP/s/core/GHz x 2.4 GHz x 38 cores; an
    /// OpenMP parallel-for region costs a couple of microseconds to fork and
    /// join.
    pub fn xeon_8368(threads: usize) -> Self {
        let threads = threads.max(1);
        DeviceSpec {
            name: format!("Intel Xeon Platinum 8368 ({threads} threads)"),
            kind: DeviceKind::Cpu,
            workers: threads,
            simd_width: 16,
            mem_bw_gbps: 175.0,
            worker_bw_gbps: 12.0,
            flops_gflops: 70.0 * threads as f64,
            random_access_penalty: 1.35,
            kernel_launch_ns: if threads > 1 { 2_000.0 } else { 0.0 },
            chunk_overhead_ns: if threads > 1 { 150.0 } else { 0.0 },
            copy_latency_ns: 0.0,
            copy_bw_gbps: 175.0,
        }
    }

    /// A single Xeon 8368 core with no parallel-region overhead — the
    /// platform of the paper's SciPy baseline.
    pub fn single_core() -> Self {
        let mut spec = DeviceSpec::xeon_8368(1);
        spec.name = "Intel Xeon Platinum 8368 (1 core)".to_owned();
        spec
    }

    /// Effective cost in nanoseconds of one chunk running alone on one
    /// worker.
    fn chunk_ns(&self, c: &ChunkWork) -> f64 {
        let bytes = c.streamed_bytes + c.random_bytes * self.random_access_penalty;
        let mem_ns = bytes / self.worker_bw_gbps; // GB/s == bytes/ns
        let flop_ns = c.flops / (self.flops_gflops / self.workers as f64);
        mem_ns.max(flop_ns) + self.chunk_overhead_ns
    }

    /// Virtual time for one kernel launch that scheduled `chunks` units of
    /// work, in nanoseconds.
    ///
    /// Chunks are greedily assigned (in submission order) to the least-loaded
    /// worker — a standard model of dynamic scheduling. The result is the
    /// makespan, floored by the aggregate-bandwidth and aggregate-flops
    /// roofline, plus the launch overhead.
    pub fn kernel_time_ns(&self, chunks: &[ChunkWork]) -> f64 {
        if chunks.is_empty() {
            return self.kernel_launch_ns;
        }
        let makespan = if self.workers == 1 {
            chunks.iter().map(|c| self.chunk_ns(c)).sum()
        } else {
            self.makespan(chunks)
        };

        // Aggregate roofline floor: even perfectly balanced work cannot beat
        // the shared memory system or the total arithmetic throughput.
        let total_bytes: f64 = chunks
            .iter()
            .map(|c| c.streamed_bytes + c.random_bytes * self.random_access_penalty)
            .sum();
        let total_flops: f64 = chunks.iter().map(|c| c.flops).sum();
        let bw_floor_ns = total_bytes / self.mem_bw_gbps;
        let flop_floor_ns = total_flops / self.flops_gflops;

        self.kernel_launch_ns + makespan.max(bw_floor_ns).max(flop_floor_ns)
    }

    /// Greedy list-scheduling makespan of the chunk costs over the workers.
    fn makespan(&self, chunks: &[ChunkWork]) -> f64 {
        use std::cmp::Reverse;
        // Min-heap over f64 load; orderable via total_cmp wrapper.
        #[derive(PartialEq)]
        struct Load(f64);
        impl Eq for Load {}
        impl PartialOrd for Load {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Load {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }
        }

        let active = self.workers.min(chunks.len());
        let mut heap: BinaryHeap<Reverse<Load>> = (0..active)
            .map(|_| Reverse(Load(0.0)))
            .collect();
        for c in chunks {
            // lint: allow(panic): `active >= 1` seeds the heap, and every
            // pop is followed by a push — it can never be empty here.
            let Reverse(Load(load)) = heap.pop().expect("heap is never empty");
            heap.push(Reverse(Load(load + self.chunk_ns(c))));
        }
        heap.into_iter()
            .map(|Reverse(Load(l))| l)
            .fold(0.0, f64::max)
    }

    /// Virtual time of a host<->device copy of `bytes` bytes, ns.
    pub fn copy_time_ns(&self, bytes: usize) -> f64 {
        self.copy_latency_ns + bytes as f64 / self.copy_bw_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_chunks(n: usize, bytes: f64) -> Vec<ChunkWork> {
        (0..n).map(|_| ChunkWork::new(bytes, 0.0, 0.0)).collect()
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let spec = DeviceSpec::a100();
        assert_eq!(spec.kernel_time_ns(&[]), spec.kernel_launch_ns);
    }

    #[test]
    fn more_chunks_use_more_workers_until_saturation() {
        let spec = DeviceSpec::xeon_8368(8);
        // 1 chunk: serial. 8 equal chunks: ~1/8 the work per worker.
        let one = spec.kernel_time_ns(&uniform_chunks(1, 8.0e6));
        let eight = spec.kernel_time_ns(&uniform_chunks(8, 1.0e6));
        assert!(eight < one, "parallel {eight} should beat serial {one}");
        // With 8 equal chunks the makespan should be roughly 1/8 of serial
        // compute time (modulo launch overhead and the bandwidth floor).
        let speedup = (one - spec.kernel_launch_ns) / (eight - spec.kernel_launch_ns);
        assert!(speedup > 5.0, "speedup {speedup}");
    }

    #[test]
    fn aggregate_bandwidth_caps_thread_scaling() {
        // 32 threads x 12 GB/s/worker = 384 GB/s raw, capped at 175 GB/s.
        let spec = DeviceSpec::xeon_8368(32);
        let bytes_total = 3.2e9; // 3.2 GB spread over plenty of chunks
        let chunks = uniform_chunks(3200, bytes_total / 3200.0);
        let t = spec.kernel_time_ns(&chunks);
        let min_t = bytes_total / spec.mem_bw_gbps;
        assert!(t >= min_t, "time {t} cannot beat bandwidth floor {min_t}");
        assert!(t < 1.4 * min_t + spec.kernel_launch_ns, "should be near the floor, got {t}");
    }

    #[test]
    fn imbalance_emerges_from_skewed_chunks() {
        let spec = DeviceSpec::xeon_8368(4);
        // Balanced: 4 x 1MB. Skewed: one 3.7MB chunk + 3 x 0.1MB.
        let balanced = spec.kernel_time_ns(&uniform_chunks(4, 1.0e6));
        let skewed = spec.kernel_time_ns(&[
            ChunkWork::new(3.7e6, 0.0, 0.0),
            ChunkWork::new(0.1e6, 0.0, 0.0),
            ChunkWork::new(0.1e6, 0.0, 0.0),
            ChunkWork::new(0.1e6, 0.0, 0.0),
        ]);
        assert!(skewed > 2.0 * balanced, "skewed {skewed} vs balanced {balanced}");
    }

    #[test]
    fn random_access_costs_more_than_streaming() {
        let spec = DeviceSpec::a100();
        let streamed = spec.kernel_time_ns(&[ChunkWork::new(1.0e6, 0.0, 0.0)]);
        let random = spec.kernel_time_ns(&[ChunkWork::new(0.0, 1.0e6, 0.0)]);
        assert!(random > streamed);
    }

    #[test]
    fn copy_time_has_latency_floor() {
        let spec = DeviceSpec::a100();
        assert!(spec.copy_time_ns(0) >= 10_000.0);
        let one_gb = spec.copy_time_ns(1 << 30);
        assert!(one_gb > 1.0e9 / 25.0, "1 GiB over ~25 GB/s");
    }

    #[test]
    fn a100_spmv_model_peaks_near_paper_rate() {
        // CSR SpMV, f32/i32, nnz large enough to saturate: ~12.3 bytes/nnz
        // streamed (value+colidx+rowptr amortized) plus ~2.2 random bytes for
        // the x gather. The paper reports ~150 GFLOP/s peak for pyGinkgo.
        let spec = DeviceSpec::a100();
        let nnz: f64 = 5.0e7;
        let chunks: Vec<ChunkWork> = (0..2048)
            .map(|_| {
                let share = nnz / 2048.0;
                ChunkWork::new(share * 12.3, share * 2.2, 2.0 * share)
            })
            .collect();
        let t_ns = spec.kernel_time_ns(&chunks);
        let gflops = 2.0 * nnz / t_ns; // flops per ns == GFLOP/s
        assert!(
            (100.0..220.0).contains(&gflops),
            "model peak {gflops} GFLOP/s should bracket the paper's ~150"
        );
    }
}
