//! Small, portable, deterministic PRNG.
//!
//! The workspace needs reproducible pseudo-randomness in three places: the
//! synthetic matrix generators, benchmark right-hand sides, and the Fig. 5
//! measurement-noise model. `rand`'s `StdRng` explicitly documents that its
//! output is *not* portable across library versions or platforms, which would
//! make the recorded experiment outputs unreproducible. This module
//! implements xoshiro256++ (Blackman & Vigna, 2019; public domain reference
//! code) seeded via SplitMix64 — both algorithms are fully specified, so the
//! same seed yields the same streams forever.

/// SplitMix64 step, used to expand a 64-bit seed into xoshiro state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from a 64-bit seed (expanded with SplitMix64, as
    /// the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp { s }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform double in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_from_splitmix_seed() {
        // Cross-checked once against the C reference implementation
        // (xoshiro256plusplus.c + splitmix64.c) with seed 0; pinned here so
        // any change to the algorithm is caught.
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let again: Vec<u64> = {
            let mut rng2 = Xoshiro256pp::seed_from_u64(0);
            (0..4).map(|_| rng2.next_u64()).collect()
        };
        assert_eq!(first, again, "determinism");
        assert_eq!(first.len(), 4);
        // Distinct consecutive outputs (sanity; collision probability ~0).
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(123);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues hit in 1000 draws");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>(), "astronomically unlikely to be identity");
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
