//! End-to-end probe of the continuous profiling plane, run by
//! `scripts/check_profile.sh`.
//!
//! Drives a profiled CG solve on a 2D Poisson matrix (small grid under
//! `PYGKO_BENCH_QUICK=1`) on an omp-16 device through the pyGinkgo facade
//! with `with_profiling()` and the HTTP exporter serving, then scrapes the
//! profile endpoints over a raw `TcpStream` and checks the contract:
//!
//! * the facade's `profile()` snapshot and the scraped `/profile` JSON
//!   agree on a rooted, non-empty flame tree bounded by the node cap;
//! * `/profile?format=folded` obeys the folded-stacks grammar — every line
//!   is `path(;path)* <integer>`;
//! * `HEAD` on `/profile` returns the same status and `Content-Length` a
//!   `GET` would, with no body;
//! * `/profile/diff?base=<name>` against a committed baseline parses and
//!   carries a row per live path; a missing `base` parameter is a 400 and
//!   an unknown name a 404;
//! * `/metrics` passes the strict `telemetry::prom` validator and carries
//!   the `gko_profile_*`, `gko_build_info`, and `gko_uptime_seconds`
//!   series;
//! * shutdown is clean (the port stops accepting).
//!
//! Any violated expectation panics, which exits nonzero for the CI script.
//!
//! `cargo run --release -p pygko-bench --bin profile_probe`

use gko::config::Config;
use gko::telemetry::DetectorConfig;
use pygko_bench::quick_mode;
use pygko_matgen::generators::poisson2d;
use pyginkgo as pg;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn http_request(addr: SocketAddr, method: &str, path: &str) -> (String, Vec<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: probe\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status = lines.next().unwrap_or("").to_string();
    let headers: Vec<String> = lines.map(|l| l.to_ascii_lowercase()).collect();
    (status, headers, body.to_string())
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let (status, _, body) = http_request(addr, "GET", path);
    (status, body)
}

fn content_length(headers: &[String]) -> usize {
    headers
        .iter()
        .find_map(|h| h.strip_prefix("content-length:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length header")
}

/// Asserts `text` obeys the folded-stacks grammar: every non-empty line is
/// `path(;path)* <integer>` with non-empty path segments.
fn check_folded_grammar(text: &str) -> usize {
    let mut lines = 0usize;
    for line in text.lines() {
        let (stack, count) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("folded line lacks a count separator: {line:?}")
        });
        count
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("folded count is not an integer: {line:?}"));
        assert!(!stack.is_empty(), "folded line has an empty stack: {line:?}");
        for seg in stack.split(';') {
            assert!(!seg.is_empty(), "empty path segment in {line:?}");
        }
        lines += 1;
    }
    lines
}

fn main() {
    let grid = if quick_mode() { 120 } else { 600 };
    let gen = poisson2d("poisson2d", grid, grid);
    let (rows, nnz) = (gen.rows, gen.nnz());
    println!("profile_probe: poisson2d_{grid} ({rows} rows, {nnz} nnz), omp-16");

    let dev = pg::device_with_id("omp", 16).expect("omp device");
    // The probe asserts on flame structure, not detector verdicts: the
    // wall-clock detectors fire spuriously on oversubscribed CI hosts, so
    // they are neutralized before profiling arms tracing + recorder.
    dev.executor().enable_flight_recorder_with(DetectorConfig {
        drift_min_solves: u64::MAX,
        imbalance_ratio: f64::INFINITY,
        ..DetectorConfig::default()
    });
    let m = pg::SparseMatrix::from_triplets(
        &dev,
        (gen.rows, gen.cols),
        &gen.triplets,
        "double",
        "int32",
        "Csr",
    )
    .expect("assemble matrix");
    let solver = pg::solver::cg(&dev, &m, None, 20 * grid, 1e-8)
        .expect("build cg")
        .with_profiling();
    let server = dev
        .executor()
        .serve_telemetry("127.0.0.1:0")
        .expect("start exporter");
    let addr = server.addr();
    println!("profile_probe: serving on http://{addr} (try: curl http://{addr}/profile)");

    let b = pg::as_tensor_fill(&dev, (rows, 1), "double", 1.0).expect("rhs");
    let mut x = pg::as_tensor_fill(&dev, (rows, 1), "double", 0.0).expect("x0");
    let logger = solver.apply(&b, &mut x).expect("solve");
    assert!(logger.converged(), "probe solve must converge");
    println!(
        "profile_probe: CG converged in {} iterations (residual {:.3e})",
        logger.iterations(),
        logger.final_residual()
    );

    // --- the facade snapshot: rooted, non-empty, bounded ---
    let snap = solver.profile().expect("with_profiling was called");
    assert!(snap.solves >= 1, "solve folded into the live window");
    assert!(!snap.nodes.is_empty(), "flame tree is non-empty");
    assert_eq!(snap.nodes[0].depth, 0, "flattening starts at a root");
    assert_eq!(snap.nodes[0].kind, "solve", "tree is rooted at the solve span");
    assert_eq!(snap.nodes[0].name, "solver::Cg", "root carries the solver annotation");
    assert!(
        snap.nodes.len() <= snap.max_nodes,
        "store is bounded: {} nodes > cap {}",
        snap.nodes.len(),
        snap.max_nodes
    );
    assert!(
        snap.nodes.iter().any(|n| n.path.contains("csr")),
        "csr kernel spans surface as flame paths"
    );
    assert!(
        snap.nodes[0].self_wall_ns <= snap.nodes[0].wall_ns,
        "root self time cannot exceed its total time"
    );
    println!(
        "profile_probe: facade snapshot OK — {} nodes over {} solves",
        snap.nodes.len(),
        snap.solves
    );

    // --- GET /profile (JSON flame tree) ---
    let (status, body) = http_get(addr, "/profile");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let doc = Config::from_json(&body).expect("/profile is valid JSON");
    let roots = doc
        .get("roots")
        .and_then(Config::as_array)
        .expect("roots array");
    assert!(!roots.is_empty(), "/profile serves a non-empty tree");
    assert_eq!(
        roots[0].get("kind").and_then(Config::as_str),
        Some("solve"),
        "first root is a solve span"
    );
    assert!(
        doc.get("solves").and_then(Config::as_int).unwrap_or(0) >= 1,
        "/profile reports folded solves"
    );
    println!("profile_probe: /profile OK ({} roots)", roots.len());

    // --- GET /profile?format=folded (flamegraph.pl grammar) ---
    let (status, folded) = http_get(addr, "/profile?format=folded");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let folded_lines = check_folded_grammar(&folded);
    assert_eq!(
        folded_lines,
        snap.nodes.len(),
        "one folded line per flame node"
    );
    println!("profile_probe: folded grammar OK ({folded_lines} lines)");

    // --- HEAD parity on every route ---
    for path in ["/profile", "/profile?format=folded", "/metrics", "/healthz"] {
        let (get_status, get_headers, get_body) = http_request(addr, "GET", path);
        let (head_status, head_headers, head_body) = http_request(addr, "HEAD", path);
        assert_eq!(head_status, get_status, "HEAD status parity on {path}");
        assert!(head_body.is_empty(), "HEAD {path} must not carry a body");
        let head_len = content_length(&head_headers);
        // The GET body length must match its own header; the HEAD length is
        // a fresh snapshot so it may differ slightly, but must be nonzero.
        assert_eq!(content_length(&get_headers), get_body.len(), "GET length on {path}");
        assert!(head_len > 0, "HEAD {path} advertises a body length");
    }
    println!("profile_probe: HEAD parity OK");

    // --- /profile/diff: 400 without base, 404 on unknown, 200 on known ---
    let (status, _) = http_get(addr, "/profile/diff");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");
    let (status, _) = http_get(addr, "/profile/diff?base=nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    dev.executor().profile_commit_baseline("main");
    // More solves after the baseline so the diff has growth to report.
    for _ in 0..2 {
        let mut x2 = pg::as_tensor_fill(&dev, (rows, 1), "double", 0.0).expect("x0");
        solver.apply(&b, &mut x2).expect("solve");
    }
    let (status, diff_body) = http_get(addr, "/profile/diff?base=main");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let diff = Config::from_json(&diff_body).expect("/profile/diff is valid JSON");
    assert_eq!(diff.get("base").and_then(Config::as_str), Some("main"));
    let diff_rows = diff
        .get("rows")
        .and_then(Config::as_array)
        .expect("rows array");
    assert!(!diff_rows.is_empty(), "diff carries per-path rows");
    let has_growth = diff_rows.iter().any(|r| {
        r.get("delta_pct")
            .and_then(Config::as_float)
            .map(|d| d > 0.0)
            .unwrap_or(false)
    });
    assert!(has_growth, "post-baseline solves must show self-time growth");
    println!("profile_probe: /profile/diff OK ({} rows)", diff_rows.len());

    // --- /metrics: strict exposition + the new series ---
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    gko::telemetry::prom::validate(&metrics)
        .unwrap_or_else(|e| panic!("/metrics violates the exposition format: {e}"));
    for series in [
        "gko_profile_nodes",
        "gko_profile_evicted_total",
        "gko_profile_solves_total",
        "gko_build_info{",
        "gko_uptime_seconds",
    ] {
        assert!(
            metrics.contains(series),
            "/metrics is missing the {series} series"
        );
    }
    println!("profile_probe: /metrics OK (strict validator + profile series)");

    server.shutdown();
    assert!(
        TcpStream::connect(addr).is_err(),
        "port must stop accepting after shutdown"
    );
    println!("profile_probe: shutdown clean — all checks passed");
}
