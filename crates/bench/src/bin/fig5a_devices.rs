//! Figure 5a: pyGinkgo's SpMV performance (GFLOP/s) against nonzero count
//! on the simulated NVIDIA A100 and AMD Instinct MI100, for both the CSR
//! and COO formats, fp32, over the 45-matrix overhead suite.
//!
//! `cargo run -p pygko-bench --bin fig5a_devices --release`

use pygko_bench::{fmt, gflops, maybe_shrink, Report};
use pygko_matgen::overhead_suite;
use pyginkgo as pg;

fn measure(dev: &pg::Device, m: &pg::SparseMatrix) -> f64 {
    let n = m.shape().1;
    let b = pg::as_tensor_fill(dev, (n, 1), "float", 1.0).unwrap();
    let t0 = dev.executor().timeline().snapshot();
    let _ = m.spmv(&b).unwrap();
    dev.executor().timeline().snapshot().since(&t0).seconds()
}

fn main() {
    let mut report = Report::new(
        "Figure 5a: pyGinkgo SpMV GFLOP/s by NNZ, device x format, fp32",
        &[
            "matrix",
            "nnz",
            "A100 CSR",
            "A100 COO",
            "MI100 CSR",
            "MI100 COO",
        ],
    );

    let mut rows: Vec<(usize, Vec<String>)> = Vec::new();
    let mut large_win = (0.0f64, 0.0f64); // (a100 csr, mi100 csr) at max nnz
    let mut max_nnz = 0usize;

    for info in maybe_shrink(overhead_suite()) {
        let gen = info.generate();
        let nnz = gen.nnz();
        let mut cells = vec![gen.name.clone(), nnz.to_string()];
        let mut a100_csr = 0.0;
        let mut mi100_csr = 0.0;
        for device_name in ["cuda", "hip"] {
            let dev = pg::device(device_name).unwrap();
            for format in ["Csr", "Coo"] {
                let m = pg::SparseMatrix::from_triplets(
                    &dev,
                    (gen.rows, gen.cols),
                    &gen.triplets,
                    "float",
                    "int32",
                    format,
                )
                .unwrap();
                let gf = gflops(nnz, measure(&dev, &m));
                if format == "Csr" {
                    if device_name == "cuda" {
                        a100_csr = gf;
                    } else {
                        mi100_csr = gf;
                    }
                }
                cells.push(fmt(gf));
            }
        }
        if nnz > max_nnz {
            max_nnz = nnz;
            large_win = (a100_csr, mi100_csr);
        }
        rows.push((nnz, cells));
    }

    rows.sort_by_key(|(nnz, _)| *nnz);
    for (_, row) in rows {
        report.row(row);
    }
    report.print();
    report.write_csv("fig5a_devices").expect("csv");

    println!(
        "\npaper: A100 slightly outperforms MI100, most visibly at large NNZ; \
         CSR is generally at or above COO"
    );
    println!(
        "measured at the largest matrix (nnz = {max_nnz}): A100 CSR {:.0} GF/s vs MI100 CSR {:.0} GF/s",
        large_win.0, large_win.1
    );
}
