//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. CSR SpMV strategy — nnz-balanced vs classical row-balanced chunks;
//! 2. GMRES variant — Ginkgo's Givens/per-iteration-check vs CuPy's
//!    projection/end-of-cycle-check (cost per iteration);
//! 3. Facade dispatch — pre-instantiated enum table vs boxed `dyn LinOp`
//!    virtual calls (real wall-clock microbenchmark, not virtual time);
//! 4. Preconditioner choice — iterations to convergence for none / Jacobi /
//!    block-Jacobi / ILU / IC on an SPD system.
//!
//! `cargo run -p pygko-bench --bin ablations --release`

use gko::linop::LinOp;
use gko::matrix::{Csr, Dense, SpmvStrategy};
use gko::solver::{Cg, Gmres};
use gko::stop::Criteria;
use gko::{Dim2, Executor};
use pygko_baselines::cupy::CupyGmres;
use pygko_baselines::gpu_executor;
use pygko_bench::{cast_triplets, fmt, solver_iters, time_spmv, Report};
use pygko_matgen::generators::{poisson2d, rmat};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    spmv_strategy();
    gmres_variant();
    dispatch_cost();
    preconditioner_effect();
}

/// Ablation 1: the load-balanced partition is what wins on skewed matrices
/// and is neutral on regular ones.
fn spmv_strategy() {
    let mut report = Report::new(
        "Ablation 1: CSR SpMV strategy (virtual time, A100)",
        &["matrix", "nnz", "classical s", "load-balanced s", "gain"],
    );
    for gen in [
        poisson2d("regular (poisson2d 500)", 500, 500),
        // Power-law degrees: a handful of hub rows hold a large share of
        // the nonzeros — the classical equal-row partition's worst case.
        rmat("skewed (rmat-17 power law)", 17, 8, 7),
    ] {
        let t32 = cast_triplets::<f32>(&gen);
        let dim = Dim2::new(gen.rows, gen.cols);
        let exec = Executor::cuda(0);
        let classical = Csr::<f32, i32>::from_triplets(&exec, dim, &t32)
            .unwrap()
            .with_strategy(SpmvStrategy::Classical);
        let t_classical = time_spmv(&exec, &classical, gen.rows);
        let balanced = Csr::<f32, i32>::from_triplets(&exec, dim, &t32)
            .unwrap()
            .with_strategy(SpmvStrategy::LoadBalance);
        let t_balanced = time_spmv(&exec, &balanced, gen.rows);
        report.row(vec![
            gen.name.clone(),
            gen.nnz().to_string(),
            fmt(t_classical),
            fmt(t_balanced),
            format!("{:.2}x", t_classical / t_balanced),
        ]);
    }
    report.print();
    report.write_csv("ablation_spmv_strategy").expect("csv");
}

/// Ablation 2: the two GMRES formulations of §6.2.1, cost per iteration at
/// a fixed iteration budget.
fn gmres_variant() {
    let iters = solver_iters();
    let mut report = Report::new(
        "Ablation 2: GMRES variant cost (fixed iterations, A100)",
        &["n", "Ginkgo s/iter", "CuPy-style s/iter", "ratio"],
    );
    for n in [500usize, 5_000, 50_000] {
        let gen = poisson2d("g", (n as f64).sqrt() as usize, (n as f64).sqrt() as usize);
        let t64 = cast_triplets::<f64>(&gen);
        let dim = Dim2::new(gen.rows, gen.cols);
        let criteria = Criteria::iterations(iters);

        let gk = Executor::cuda(0);
        let a = Arc::new(Csr::<f64, i32>::from_triplets(&gk, dim, &t64).unwrap());
        let solver = Gmres::new(a.clone() as Arc<dyn LinOp<f64>>)
            .unwrap()
            .with_krylov_dim(30)
            .with_criteria(criteria);
        let b = Dense::<f64>::vector(&gk, gen.rows, 1.0);
        let mut x = Dense::<f64>::vector(&gk, gen.rows, 0.0);
        let t0 = gk.timeline().snapshot();
        solver.apply(&b, &mut x).unwrap();
        let gko_tpi = gk.timeline().snapshot().since(&t0).seconds() / iters as f64;

        let cu = gpu_executor("CuPy-style");
        let a_cu = Arc::new(Csr::<f64, i32>::from_triplets(&cu, dim, &t64).unwrap());
        let solver = CupyGmres::new(a_cu, 30, criteria);
        let b = Dense::<f64>::vector(&cu, gen.rows, 1.0);
        let mut x = Dense::<f64>::vector(&cu, gen.rows, 0.0);
        let t0 = cu.timeline().snapshot();
        solver.apply(&b, &mut x).unwrap();
        let cupy_tpi = cu.timeline().snapshot().since(&t0).seconds() / iters as f64;

        report.row(vec![
            gen.rows.to_string(),
            fmt(gko_tpi),
            fmt(cupy_tpi),
            format!("{:.2}", gko_tpi / cupy_tpi),
        ]);
    }
    report.print();
    report.write_csv("ablation_gmres").expect("csv");
    println!("(ratios slightly above 1 reproduce §6.2.1: CuPy's CPU Hessenberg wins at small sizes)");
}

/// Ablation 3: dispatch mechanism — measured in *real wall-clock* because
/// this is host-side binding machinery, not simulated device work.
fn dispatch_cost() {
    let dev = pyginkgo::device("reference").unwrap();
    let n = 64usize;
    let t: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 2.0)).collect();
    let m = pyginkgo::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr")
        .unwrap();
    let b = pyginkgo::as_tensor_fill(&dev, (n, 1), "double", 1.0).unwrap();
    let mut x = pyginkgo::as_tensor_fill(&dev, (n, 1), "double", 0.0).unwrap();

    // Pre-instantiated enum dispatch (the facade).
    let reps = 20_000;
    let start = Instant::now();
    for _ in 0..reps {
        m.spmv_into(&b, &mut x).unwrap();
    }
    let enum_ns = start.elapsed().as_nanos() as f64 / reps as f64;

    // Boxed dyn-trait virtual call (the alternative design).
    let exec = Executor::reference();
    let t64 = cast_triplets::<f64>(&pygko_matgen::generators::diagonal_mass("d", n, 1.0, 3));
    let a: Arc<dyn LinOp<f64>> =
        Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t64).unwrap());
    let bd = Dense::<f64>::vector(&exec, n, 1.0);
    let mut xd = Dense::zeros(&exec, Dim2::new(n, 1));
    let start = Instant::now();
    for _ in 0..reps {
        a.apply(&bd, &mut xd).unwrap();
    }
    let dyn_ns = start.elapsed().as_nanos() as f64 / reps as f64;

    let mut report = Report::new(
        "Ablation 3: dispatch mechanism (REAL wall clock, tiny matrix)",
        &["mechanism", "ns/call"],
    );
    report.row(vec!["facade enum dispatch + GIL + validation".into(), fmt(enum_ns)]);
    report.row(vec!["bare dyn LinOp virtual call".into(), fmt(dyn_ns)]);
    report.print();
    report.write_csv("ablation_dispatch").expect("csv");
    println!(
        "(the facade's extra {:.0} ns/call is the §5.1 dynamic layer; it is amortized over kernel work)",
        (enum_ns - dyn_ns).max(0.0)
    );
}

/// Ablation 4: preconditioners trade setup cost for iteration count.
fn preconditioner_effect() {
    let gen = poisson2d("poisson2d 120", 120, 120);
    let exec = Executor::cuda(0);
    let t64 = cast_triplets::<f64>(&gen);
    let a = Arc::new(
        Csr::<f64, i32>::from_triplets(&exec, Dim2::new(gen.rows, gen.cols), &t64).unwrap(),
    );
    let mut report = Report::new(
        "Ablation 4: preconditioner effect on CG (poisson2d 120x120, tol 1e-8)",
        &["preconditioner", "iterations", "converged", "solve virtual s"],
    );
    for name in ["none", "jacobi", "block-jacobi(4)", "ilu", "ic"] {
        let pre: Option<Arc<dyn LinOp<f64>>> = match name {
            "none" => None,
            "jacobi" => Some(Arc::new(gko::preconditioner::Jacobi::new(&*a).unwrap())),
            "block-jacobi(4)" => Some(Arc::new(
                gko::preconditioner::Jacobi::with_block_size(&*a, 4).unwrap(),
            )),
            "ilu" => Some(Arc::new(gko::preconditioner::Ilu::new(&*a).unwrap())),
            _ => Some(Arc::new(gko::preconditioner::Ic::new(&*a).unwrap())),
        };
        let mut solver = Cg::new(a.clone() as Arc<dyn LinOp<f64>>)
            .unwrap()
            .with_criteria(Criteria::iterations_and_reduction(5000, 1e-8));
        if let Some(p) = pre {
            solver = solver.with_preconditioner(p).unwrap();
        }
        let b = Dense::<f64>::vector(&exec, gen.rows, 1.0);
        let mut x = Dense::<f64>::vector(&exec, gen.rows, 0.0);
        let t0 = exec.timeline().snapshot();
        solver.apply(&b, &mut x).unwrap();
        let secs = exec.timeline().snapshot().since(&t0).seconds();
        let rec = solver.logger().snapshot();
        report.row(vec![
            name.into(),
            rec.iterations.to_string(),
            rec.converged().to_string(),
            fmt(secs),
        ]);
    }
    report.print();
    report.write_csv("ablation_precond").expect("csv");
}
