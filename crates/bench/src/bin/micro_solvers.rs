//! Wall-clock microbenchmarks of the solver iterations (real host
//! execution of the real numerics). Plain-binary successor of the former
//! criterion bench.
//!
//! `cargo run --release -p pygko-bench --bin micro_solvers`

use gko::linop::LinOp;
use gko::matrix::{Csr, Dense};
use gko::preconditioner::{Ilu, Jacobi};
use gko::solver::{BiCgStab, Cg, Cgs, Gmres};
use gko::stop::Criteria;
use gko::{Dim2, Executor};
use pygko_bench::{fmt, micro_iters, wall_secs, Report};
use pygko_matgen::generators::poisson2d;
use std::sync::Arc;

fn setup() -> (Executor, Arc<Csr<f64, i32>>, Dense<f64>) {
    let exec = Executor::reference();
    let gen = poisson2d("p", 60, 60);
    let a = Arc::new(
        Csr::<f64, i32>::from_triplets(&exec, Dim2::new(gen.rows, gen.cols), &gen.triplets)
            .unwrap(),
    );
    let b = Dense::<f64>::vector(&exec, gen.rows, 1.0);
    (exec, a, b)
}

fn bench_krylov_iterations(report: &mut Report) {
    let (exec, a, b) = setup();
    let n = a.size().rows;
    let criteria = Criteria::iterations(20);
    let iters = micro_iters(10);

    let solvers: Vec<(&str, Box<dyn LinOp<f64>>)> = vec![
        (
            "cg",
            Box::new(
                Cg::new(a.clone() as Arc<dyn LinOp<f64>>)
                    .unwrap()
                    .with_criteria(criteria),
            ),
        ),
        (
            "cgs",
            Box::new(
                Cgs::new(a.clone() as Arc<dyn LinOp<f64>>)
                    .unwrap()
                    .with_criteria(criteria),
            ),
        ),
        (
            "bicgstab",
            Box::new(
                BiCgStab::new(a.clone() as Arc<dyn LinOp<f64>>)
                    .unwrap()
                    .with_criteria(criteria),
            ),
        ),
        (
            "gmres30",
            Box::new(
                Gmres::new(a.clone() as Arc<dyn LinOp<f64>>)
                    .unwrap()
                    .with_krylov_dim(30)
                    .with_criteria(criteria),
            ),
        ),
    ];
    for (name, solver) in &solvers {
        let secs = wall_secs(iters, || {
            let mut x = Dense::<f64>::zeros(&exec, Dim2::new(n, 1));
            solver.apply(&b, &mut x).unwrap();
        });
        report.row(vec![
            "krylov_20_iterations_poisson2d_60".into(),
            (*name).into(),
            fmt(secs * 1e3),
        ]);
    }
}

fn bench_preconditioner_generation(report: &mut Report) {
    let (_, a, _) = setup();
    let iters = micro_iters(10);
    let secs = wall_secs(iters, || {
        Jacobi::new(&*a).unwrap();
    });
    report.row(vec![
        "preconditioner_generation_poisson2d_60".into(),
        "jacobi".into(),
        fmt(secs * 1e3),
    ]);
    let secs = wall_secs(iters, || {
        Ilu::new(&*a).unwrap();
    });
    report.row(vec![
        "preconditioner_generation_poisson2d_60".into(),
        "ilu0".into(),
        fmt(secs * 1e3),
    ]);
}

fn main() {
    let mut report = Report::new(
        "Solver wall-clock microbenchmarks",
        &["group", "case", "ms/op"],
    );
    bench_krylov_iterations(&mut report);
    bench_preconditioner_generation(&mut report);
    report.print();
    let path = report.write_csv("micro_solvers").expect("write csv");
    println!("\nwrote {}", path.display());
}
