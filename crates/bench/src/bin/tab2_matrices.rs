//! Table 2: the six representative matrices and their attributes, with the
//! synthetic generators' actual dimensions/nonzeros next to the paper's.
//!
//! `cargo run -p pygko-bench --bin tab2_matrices --release`

use pygko_bench::Report;
use pygko_matgen::representative;

fn main() {
    // The paper's Table 2 values.
    let paper: [(&str, usize, f64, &str); 6] = [
        ("A", 25_503, 1.55e4, "bcsstm37"),
        ("B", 46_772, 4.68e4, "bcsstm39"),
        ("C", 25_187, 1.93e5, "mult_dcop_01"),
        ("D", 131_072, 7.86e5, "delaunay_n17"),
        ("E", 41_092, 1.68e6, "av41092"),
        ("F", 321_671, 1.83e6, "ASIC320ks"),
    ];

    let mut table = Report::new(
        "Table 2: test matrices and relevant attributes (paper vs synthetic)",
        &[
            "Matrix",
            "Paper name",
            "Paper dim",
            "Paper NNZ",
            "Synthetic dim",
            "Synthetic NNZ",
            "Class",
            "Density %",
        ],
    );
    for (info, (letter, dim, nnz, name)) in representative().iter().zip(paper) {
        let m = info.generate();
        table.row(vec![
            letter.to_string(),
            name.to_string(),
            dim.to_string(),
            format!("{nnz:.2e}"),
            m.rows.to_string(),
            format!("{:.2e}", m.nnz() as f64),
            info.class.to_string(),
            format!("{:.4}", m.density() * 100.0),
        ]);
    }
    table.print();
    table.write_csv("tab2_matrices").expect("csv");
}
