//! Figure 4: SpMV speedup relative to SciPy for the six representative
//! matrices of Table 2 — (a) on the simulated A100, (b) on the simulated
//! Xeon at 32 threads — fp32, per library.
//!
//! `cargo run -p pygko-bench --bin fig4_representative --release`

use gko::matrix::{Coo, Csr};
use gko::{Dim2, Executor};
use pygko_baselines::cupy::CupyCsr;
use pygko_baselines::scipy::ScipyCsr;
use pygko_baselines::tf::TfCoo;
use pygko_baselines::torch::TorchCsr;
use pygko_baselines::{cpu_executor, gpu_executor, scipy_executor};
use pygko_bench::{cast_triplets, fmt, time_spmv, Report};
use pygko_matgen::representative;
use std::sync::Arc;

fn main() {
    let mut gpu_report = Report::new(
        "Figure 4a: speedup vs SciPy on A100 (representative matrices, fp32)",
        &["matrix", "nnz", "pyGinkgo x", "PyTorch x", "TensorFlow x", "CuPy x"],
    );
    let mut cpu_report = Report::new(
        "Figure 4b: speedup vs SciPy on Xeon 8368, 32 threads (fp32)",
        &["matrix", "nnz", "pyGinkgo x", "PyTorch x", "TensorFlow x"],
    );

    let mut gpu_small = Vec::new();
    let mut cpu_small = Vec::new();

    for info in representative() {
        let gen = info.generate();
        let n = gen.rows;
        let nnz = gen.nnz();
        let t32 = cast_triplets::<f32>(&gen);
        let dim = Dim2::new(gen.rows, gen.cols);
        let letter = gen.name.chars().next().unwrap();

        let sp_exec = scipy_executor();
        let scipy = ScipyCsr::new(Arc::new(
            Csr::<f32, i32>::from_triplets(&sp_exec, dim, &t32).unwrap(),
        ));
        let t_scipy = time_spmv(&sp_exec, &scipy, n);

        // --- GPU ---
        let gk = Executor::cuda(0);
        let a = Csr::<f32, i32>::from_triplets(&gk, dim, &t32).unwrap();
        let t_gko_gpu = time_spmv(&gk, &a, n);

        let to_exec = gpu_executor("PyTorch");
        let torch = TorchCsr::new(Arc::new(
            Csr::<f32, i32>::from_triplets(&to_exec, dim, &t32).unwrap(),
        ));
        let t_torch = time_spmv(&to_exec, &torch, n);

        let tf_exec = gpu_executor("TensorFlow");
        let tf = TfCoo::new(Arc::new(
            Coo::<f32, i32>::from_triplets(&tf_exec, dim, &t32).unwrap(),
        ));
        let t_tf = time_spmv(&tf_exec, &tf, n);

        let cu_exec = gpu_executor("CuPy");
        let cupy = CupyCsr::new(Arc::new(
            Csr::<f32, i32>::from_triplets(&cu_exec, dim, &t32).unwrap(),
        ));
        let t_cupy = time_spmv(&cu_exec, &cupy, n);

        gpu_report.row(vec![
            gen.name.clone(),
            nnz.to_string(),
            fmt(t_scipy / t_gko_gpu),
            fmt(t_scipy / t_torch),
            fmt(t_scipy / t_tf),
            fmt(t_scipy / t_cupy),
        ]);
        if letter == 'A' || letter == 'B' {
            gpu_small.push(t_scipy / t_gko_gpu);
        }

        // --- CPU (32 threads) ---
        let omp = Executor::omp(32);
        let a = Csr::<f32, i32>::from_triplets(&omp, dim, &t32).unwrap();
        let t_gko_cpu = time_spmv(&omp, &a, n);

        let to_exec = cpu_executor("PyTorch", 32);
        let torch = TorchCsr::new(Arc::new(
            Csr::<f32, i32>::from_triplets(&to_exec, dim, &t32).unwrap(),
        ));
        let t_torch_cpu = time_spmv(&to_exec, &torch, n);

        let tf_exec = cpu_executor("TensorFlow", 32);
        let tf = TfCoo::new(Arc::new(
            Coo::<f32, i32>::from_triplets(&tf_exec, dim, &t32).unwrap(),
        ));
        let t_tf_cpu = time_spmv(&tf_exec, &tf, n);

        cpu_report.row(vec![
            gen.name.clone(),
            nnz.to_string(),
            fmt(t_scipy / t_gko_cpu),
            fmt(t_scipy / t_torch_cpu),
            fmt(t_scipy / t_tf_cpu),
        ]);
        if letter == 'A' || letter == 'B' {
            cpu_small.push(t_scipy / t_gko_cpu);
        }
    }

    gpu_report.print();
    gpu_report.write_csv("fig4a_representative_gpu").expect("csv");
    cpu_report.print();
    cpu_report.write_csv("fig4b_representative_cpu").expect("csv");

    let gpu_avg: f64 = gpu_small.iter().sum::<f64>() / gpu_small.len() as f64;
    let cpu_avg: f64 = cpu_small.iter().sum::<f64>() / cpu_small.len() as f64;
    println!(
        "\npaper: low-NNZ matrices (A, B) are more efficient on CPU than GPU; \
         speedup grows with NNZ; matrix E drops (density)"
    );
    println!(
        "measured on A and B: CPU speedup {cpu_avg:.2}x vs GPU speedup {gpu_avg:.2}x \
         (CPU should win)"
    );
}
