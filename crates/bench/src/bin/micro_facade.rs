//! Wall-clock microbenchmarks of the facade's dynamic layer — the
//! real-host-time counterpart of the §6.3 virtual-time overhead study.
//! Plain-binary successor of the former criterion bench.
//!
//! `cargo run --release -p pygko-bench --bin micro_facade`

use gko::linop::LinOp;
use gko::matrix::{Csr, Dense};
use gko::{Dim2, Executor};
use pygko_bench::{fmt, micro_iters, wall_secs, Report};
use pyginkgo as pg;

fn bench_binding_overhead(report: &mut Report) {
    let n = 1000usize;
    let t: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 2.0)).collect();

    // Engine direct.
    let exec = Executor::reference();
    let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
    let b = Dense::<f64>::vector(&exec, n, 1.0);
    let mut x = Dense::zeros(&exec, Dim2::new(n, 1));

    // Facade.
    let dev = pg::device("reference").unwrap();
    let m = pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
    let bt = pg::as_tensor_fill(&dev, (n, 1), "double", 1.0).unwrap();
    let mut xt = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0).unwrap();

    let iters = micro_iters(2000);
    let secs = wall_secs(iters, || a.apply(&b, &mut x).unwrap());
    report.row(vec![
        "binding_overhead_diag1000".into(),
        "engine_spmv".into(),
        fmt(secs * 1e6),
    ]);
    let secs = wall_secs(iters, || m.spmv_into(&bt, &mut xt).unwrap());
    report.row(vec![
        "binding_overhead_diag1000".into(),
        "facade_spmv".into(),
        fmt(secs * 1e6),
    ]);
}

fn bench_dispatch_layers(report: &mut Report) {
    let dev = pg::device("reference").unwrap();
    let iters = micro_iters(5000);
    let secs = wall_secs(iters, || {
        "float64".parse::<pg::DType>().unwrap();
    });
    report.row(vec![
        "facade_calls".into(),
        "dtype_parse".into(),
        fmt(secs * 1e6),
    ]);
    let secs = wall_secs(iters, || {
        pg::as_tensor_fill(&dev, (16, 1), "double", 1.0).unwrap();
    });
    report.row(vec![
        "facade_calls".into(),
        "tensor_construct_16".into(),
        fmt(secs * 1e6),
    ]);
    let t16 = pg::as_tensor_fill(&dev, (16, 1), "double", 1.0).unwrap();
    let secs = wall_secs(iters, || {
        t16.dot(&t16).unwrap();
    });
    report.row(vec![
        "facade_calls".into(),
        "tensor_dot_16".into(),
        fmt(secs * 1e6),
    ]);
}

fn main() {
    let mut report = Report::new(
        "Facade wall-clock microbenchmarks",
        &["group", "case", "us/op"],
    );
    bench_binding_overhead(&mut report);
    bench_dispatch_layers(&mut report);
    report.print();
    let path = report.write_csv("micro_facade").expect("write csv");
    println!("\nwrote {}", path.display());
}
