//! Figures 5b and 5c: the binding overhead of pyGinkgo relative to the
//! native engine.
//!
//! For each of the 45 overhead-suite matrices, on both simulated GPUs and
//! both formats, the same SpMV runs (1) directly against the engine and
//! (2) through the facade's dynamic layer. Reported, exactly as the paper
//! defines them:
//!
//! * Fig. 5b: `P_overhead = (P_gko - P_pygko) / P_gko * 100` (relative
//!   performance difference in percent);
//! * Fig. 5c: `T_overhead = T_pygko - T_gko` (absolute time difference in
//!   seconds).
//!
//! The paper's Fig. 5c shows occasional *negative* time differences caused
//! by system noise; the deterministic simulator reproduces that with the
//! seeded Gaussian measurement-noise model (`pygko_sim::Noise`, seed
//! printed below) applied to both measurements, as documented in DESIGN.md.
//!
//! `cargo run -p pygko-bench --bin fig5bc_overhead --release`

use gko::linop::LinOp;
use gko::matrix::{Coo, Csr, Dense};
use gko::{Dim2, Executor};
use pygko_bench::{cast_triplets, fmt, maybe_shrink, Report};
use pygko_matgen::overhead_suite;
use pygko_sim::Noise;
use pyginkgo as pg;

const NOISE_SEED: u64 = 54_598; // the paper's DOI suffix, for memorability
/// Relative jitter of one timing measurement (~2%, typical of back-to-back
/// GPU kernel timings) plus a small absolute term from timer granularity.
const REL_SIGMA: f64 = 0.02;
const ABS_SIGMA_NS: f64 = 400.0;

fn engine_spmv_ns(exec: &Executor, op: &dyn LinOp<f32>, n: usize) -> f64 {
    let b = Dense::<f32>::vector(exec, n, 1.0);
    let mut x = Dense::zeros(exec, Dim2::new(n, 1));
    let t0 = exec.timeline().snapshot();
    op.apply(&b, &mut x).unwrap();
    exec.synchronize();
    exec.timeline().snapshot().since(&t0).ns as f64
}

fn facade_spmv_ns(dev: &pg::Device, m: &pg::SparseMatrix) -> f64 {
    let n = m.shape().1;
    let b = pg::as_tensor_fill(dev, (n, 1), "float", 1.0).unwrap();
    let mut x = pg::as_tensor_fill(dev, (n, 1), "float", 0.0).unwrap();
    let t0 = dev.executor().timeline().snapshot();
    m.spmv_into(&b, &mut x).unwrap();
    dev.synchronize();
    dev.executor().timeline().snapshot().since(&t0).ns as f64
}

fn main() {
    println!("measurement noise: seed {NOISE_SEED}, rel sigma {REL_SIGMA}, abs sigma {ABS_SIGMA_NS} ns");
    let mut noise = Noise::new(NOISE_SEED);

    let mut fig5b = Report::new(
        "Figure 5b: relative performance difference (pyGinkgo vs Ginkgo), %",
        &["matrix", "nnz", "A100 CSR %", "A100 COO %", "MI100 CSR %", "MI100 COO %"],
    );
    let mut fig5c = Report::new(
        "Figure 5c: time difference T_pyGinkgo - T_Ginkgo, seconds",
        &["matrix", "nnz", "A100 CSR s", "A100 COO s", "MI100 CSR s", "MI100 COO s"],
    );

    let mut rows_b: Vec<(usize, Vec<String>)> = Vec::new();
    let mut rows_c: Vec<(usize, Vec<String>)> = Vec::new();
    let mut negatives = 0usize;
    let mut total = 0usize;
    let mut small_overheads = Vec::new();
    let mut large_overheads = Vec::new();

    for info in maybe_shrink(overhead_suite()) {
        let gen = info.generate();
        let n = gen.rows;
        let nnz = gen.nnz();
        let t32 = cast_triplets::<f32>(&gen);
        let dim = Dim2::new(gen.rows, gen.cols);

        let mut cells_b = vec![gen.name.clone(), nnz.to_string()];
        let mut cells_c = vec![gen.name.clone(), nnz.to_string()];

        for device_name in ["cuda", "hip"] {
            for format in ["Csr", "Coo"] {
                // Engine path.
                let exec = if device_name == "cuda" {
                    Executor::cuda(0)
                } else {
                    Executor::hip(0)
                };
                let engine_ns = match format {
                    "Csr" => {
                        let a = Csr::<f32, i32>::from_triplets(&exec, dim, &t32).unwrap();
                        engine_spmv_ns(&exec, &a, n)
                    }
                    _ => {
                        let a = Coo::<f32, i32>::from_triplets(&exec, dim, &t32).unwrap();
                        engine_spmv_ns(&exec, &a, n)
                    }
                };

                // Facade path.
                let dev = pg::device(device_name).unwrap();
                let m = pg::SparseMatrix::from_triplets(
                    &dev,
                    (gen.rows, gen.cols),
                    &gen.triplets,
                    "float",
                    "int32",
                    format,
                )
                .unwrap();
                let facade_ns = facade_spmv_ns(&dev, &m);

                // Apply the measurement-noise model to both sides.
                let engine_meas = noise.perturb_ns(engine_ns, REL_SIGMA, ABS_SIGMA_NS);
                let facade_meas = noise.perturb_ns(facade_ns, REL_SIGMA, ABS_SIGMA_NS);

                let p_gko = 1.0 / engine_meas;
                let p_pygko = 1.0 / facade_meas;
                let overhead_pct = (p_gko - p_pygko) / p_gko * 100.0;
                let dt_s = (facade_meas - engine_meas) * 1e-9;

                total += 1;
                if dt_s < 0.0 {
                    negatives += 1;
                }
                if nnz < 100_000 {
                    small_overheads.push(overhead_pct);
                } else if nnz > 1_000_000 {
                    large_overheads.push(overhead_pct);
                }

                cells_b.push(fmt(overhead_pct));
                cells_c.push(format!("{dt_s:.2e}"));
            }
        }
        rows_b.push((nnz, cells_b));
        rows_c.push((nnz, cells_c));
    }

    rows_b.sort_by_key(|(nnz, _)| *nnz);
    rows_c.sort_by_key(|(nnz, _)| *nnz);
    for (_, row) in rows_b {
        fig5b.row(row);
    }
    for (_, row) in rows_c {
        fig5c.row(row);
    }
    fig5b.print();
    fig5b.write_csv("fig5b_overhead_pct").expect("csv");
    fig5c.print();
    fig5c.write_csv("fig5c_overhead_seconds").expect("csv");

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\npaper: overhead ~25-35% at low NNZ dropping below 10% for NNZ > 1e7; \
         time differences 1e-7..1e-5 s, occasionally below zero from noise"
    );
    println!(
        "measured: mean overhead {:.1}% (nnz < 1e5) vs {:.1}% (nnz > 1e6); \
         {negatives}/{total} time differences below zero",
        mean(&small_overheads),
        mean(&large_overheads)
    );
}
