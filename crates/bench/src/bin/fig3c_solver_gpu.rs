//! Figure 3c: iterative solvers on the (simulated) A100 — pyGinkgo's
//! speedup in *time per iteration* relative to CuPy for CG, CGS, and
//! GMRES(30), double precision, no preconditioner, fixed iteration count,
//! over the 40-matrix solver suite.
//!
//! `cargo run -p pygko-bench --bin fig3c_solver_gpu --release`

use gko::linop::LinOp;
use gko::matrix::{Csr, Dense};
use gko::solver::{Cg, Cgs, Gmres};
use gko::stop::Criteria;
use gko::{Dim2, Executor};
use pygko_baselines::cupy::{CupyGmres, CupyKrylov};
use pygko_baselines::gpu_executor;
use pygko_bench::{cast_triplets, fmt, maybe_shrink, solver_iters, Report};
use pygko_matgen::solver_suite;
use std::sync::Arc;

/// Runs a solver to the iteration cap and returns virtual seconds per
/// iteration charged to `exec`.
fn time_per_iter<V: gko::Value>(
    exec: &Executor,
    solver: &dyn LinOp<V>,
    n: usize,
    iters: usize,
) -> f64 {
    let b = Dense::<V>::filled(exec, Dim2::new(n, 1), V::one());
    let mut x = Dense::<V>::zeros(exec, Dim2::new(n, 1));
    let t0 = exec.timeline().snapshot();
    solver.apply(&b, &mut x).expect("solve");
    exec.synchronize();
    exec.timeline().snapshot().since(&t0).seconds() / iters as f64
}

fn main() {
    let iters = solver_iters();
    println!("fixed iterations per solve: {iters} (paper: 1000; metric is time/iteration)");

    let mut report = Report::new(
        "Figure 3c: solver time-per-iteration speedup vs CuPy on A100, fp64",
        &["matrix", "nnz", "CG x", "CGS x", "GMRES x"],
    );
    let mut rows: Vec<(usize, Vec<String>)> = Vec::new();
    let mut sums = [0.0f64; 3];
    let mut count = 0usize;

    for info in maybe_shrink(solver_suite()) {
        let gen = info.generate();
        let n = gen.rows;
        let nnz = gen.nnz();
        let t64 = cast_triplets::<f64>(&gen);
        let dim = Dim2::new(n, n);
        let criteria = Criteria::iterations(iters);

        // pyGinkgo on its executor.
        let gk = Executor::cuda(0);
        let a_gk = Arc::new(Csr::<f64, i32>::from_triplets(&gk, dim, &t64).unwrap());

        // CuPy on its executor; the same algorithm skeletons run over the
        // warp-per-row SpMV, except GMRES which is CuPy's own variant.
        let cu = gpu_executor("CuPy");
        let a_cu = Arc::new(Csr::<f64, i32>::from_triplets(&cu, dim, &t64).unwrap());

        // CG.
        let s = Cg::new(a_gk.clone() as Arc<dyn LinOp<f64>>).unwrap().with_criteria(criteria);
        let gko_cg = time_per_iter(&gk, &s, n, iters);
        let s = CupyKrylov::cg(a_cu.clone(), criteria).unwrap();
        let cupy_cg = time_per_iter(&cu, &s, n, iters);

        // CGS.
        let s = Cgs::new(a_gk.clone() as Arc<dyn LinOp<f64>>).unwrap().with_criteria(criteria);
        let gko_cgs = time_per_iter(&gk, &s, n, iters);
        let s = CupyKrylov::cgs(a_cu.clone(), criteria).unwrap();
        let cupy_cgs = time_per_iter(&cu, &s, n, iters);

        // GMRES(30): Ginkgo's Givens/device variant vs CuPy's CPU variant.
        let s = Gmres::new(a_gk.clone() as Arc<dyn LinOp<f64>>)
            .unwrap()
            .with_krylov_dim(30)
            .with_criteria(criteria);
        let gko_gmres = time_per_iter(&gk, &s, n, iters);
        let s = CupyGmres::new(a_cu.clone(), 30, criteria);
        let cupy_gmres = time_per_iter(&cu, &s, n, iters);

        let sp = [cupy_cg / gko_cg, cupy_cgs / gko_cgs, cupy_gmres / gko_gmres];
        for (acc, v) in sums.iter_mut().zip(sp) {
            *acc += v;
        }
        count += 1;

        rows.push((
            nnz,
            vec![
                gen.name.clone(),
                nnz.to_string(),
                fmt(sp[0]),
                fmt(sp[1]),
                fmt(sp[2]),
            ],
        ));
    }

    rows.sort_by_key(|(nnz, _)| *nnz);
    for (_, row) in rows {
        report.row(row);
    }
    report.print();
    report.write_csv("fig3c_solver_gpu").expect("csv");

    println!(
        "\npaper: CGS up to ~4x (best at low NNZ), CG ~2.5x, GMRES slightly below 1x; \
         speedups shrink as NNZ grows"
    );
    println!(
        "measured means: CG {:.2}x, CGS {:.2}x, GMRES {:.2}x over {count} matrices",
        sums[0] / count as f64,
        sums[1] / count as f64,
        sums[2] / count as f64
    );
}
