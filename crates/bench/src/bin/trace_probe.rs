//! End-to-end probe of causal span tracing, run by `scripts/check_trace.sh`.
//!
//! Drives an armed CG solve on a 2D Poisson matrix (~1.8M nnz on the full
//! 600x600 grid, a small grid under `PYGKO_BENCH_QUICK=1`) on an omp-16
//! device through the pyGinkgo facade with `with_tracing(1)` and the HTTP
//! exporter serving, then scrapes `/traces` and `/traces/<id>` over a raw
//! `TcpStream` and checks the whole contract:
//!
//! * the facade's `trace_report()` and the scraped `/traces/<id>` document
//!   agree on the same trace;
//! * the span parent links form a single rooted tree (unique ids, exactly
//!   one root, every parent resolvable);
//! * the chunk spans parented under every `pool_dispatch` span exactly tile
//!   `0..chunk_count` — no chunk lost, none duplicated, across lanes and
//!   steals;
//! * `?format=chrome` renders a parseable Chrome-trace document;
//! * the `/runs` entry for the solve links back to the trace id;
//! * shutdown is clean (the port stops accepting).
//!
//! Any violated expectation panics, which exits nonzero for the CI script.
//!
//! `cargo run --release -p pygko-bench --bin trace_probe`

use gko::config::Config;
use gko::telemetry::DetectorConfig;
use pygko_bench::quick_mode;
use pygko_matgen::generators::poisson2d;
use pyginkgo as pg;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: probe\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    (head.lines().next().unwrap_or("").to_string(), body.to_string())
}

/// One span as scraped from the `/traces/<id>` JSON document.
struct JsonSpan {
    id: i64,
    parent: i64,
    kind: String,
    index: i64,
    lane: Option<i64>,
}

fn parse_spans(doc: &Config) -> Vec<JsonSpan> {
    doc.get("spans")
        .and_then(Config::as_array)
        .expect("spans array")
        .iter()
        .map(|s| JsonSpan {
            id: s.get("id").and_then(Config::as_int).expect("span id"),
            parent: s.get("parent").and_then(Config::as_int).expect("parent"),
            kind: s
                .get("kind")
                .and_then(Config::as_str)
                .expect("kind")
                .to_string(),
            index: s.get("index").and_then(Config::as_int).expect("index"),
            lane: s.get("lane").and_then(Config::as_int),
        })
        .collect()
}

/// The probe's core checks: single rooted tree, resolvable parents, and
/// per-dispatch chunk tiling.
fn validate_tree(spans: &[JsonSpan], root: i64, lanes: i64) {
    let mut ids = std::collections::BTreeSet::new();
    for s in spans {
        assert!(ids.insert(s.id), "duplicate span id {}", s.id);
    }
    let roots: Vec<_> = spans.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(roots.len(), 1, "exactly one root span");
    assert_eq!(roots[0].id, root, "root matches the report's root field");
    assert_eq!(roots[0].kind, "solve");
    for s in spans {
        if s.parent != 0 {
            assert!(
                ids.contains(&s.parent),
                "span {} has dangling parent {}",
                s.id,
                s.parent
            );
        }
        if let Some(lane) = s.lane {
            assert_eq!(s.kind, "chunk", "only chunk spans carry a lane");
            assert!((0..lanes).contains(&lane), "lane {lane} out of range");
        }
    }
    let dispatches: Vec<_> = spans.iter().filter(|s| s.kind == "pool_dispatch").collect();
    assert!(!dispatches.is_empty(), "pooled solve emitted no dispatches");
    let mut chunk_total = 0usize;
    for d in &dispatches {
        let mut indices: Vec<i64> = spans
            .iter()
            .filter(|s| s.kind == "chunk" && s.parent == d.id)
            .map(|s| s.index)
            .collect();
        indices.sort_unstable();
        let expected: Vec<i64> = (0..d.index).collect();
        assert_eq!(
            indices, expected,
            "chunk spans must tile dispatch {} (chunks={})",
            d.id, d.index
        );
        chunk_total += indices.len();
    }
    println!(
        "trace_probe: tree OK — {} spans, {} dispatches, {} chunk spans, all tiled",
        spans.len(),
        dispatches.len(),
        chunk_total
    );
}

fn main() {
    let grid = if quick_mode() { 120 } else { 600 };
    let gen = poisson2d("poisson2d", grid, grid);
    let (rows, nnz) = (gen.rows, gen.nnz());
    println!("trace_probe: poisson2d_{grid} ({rows} rows, {nnz} nnz), omp-16");

    let dev = pg::device_with_id("omp", 16).expect("omp device");
    // This probe asserts on tracing structure, not detector verdicts: the
    // wall-clock detectors fire spuriously on oversubscribed CI hosts with
    // a 16-lane pool, so they are neutralized before tracing arms the
    // recorder (enable_flight_recorder is idempotent and keeps this config).
    dev.executor().enable_flight_recorder_with(DetectorConfig {
        drift_min_solves: u64::MAX,
        imbalance_ratio: f64::INFINITY,
        ..DetectorConfig::default()
    });
    let m = pg::SparseMatrix::from_triplets(
        &dev,
        (gen.rows, gen.cols),
        &gen.triplets,
        "double",
        "int32",
        "Csr",
    )
    .expect("assemble matrix");
    let solver = pg::solver::cg(&dev, &m, None, 20 * grid, 1e-8)
        .expect("build cg")
        .with_tracing(1)
        .expect("arm tracing");
    // The full-grid solve assembles ~300k spans — past the default
    // per-trace cap, which exists for unattended production use. The probe
    // asserts zero truncation, so re-arm (idempotent) with a larger budget.
    dev.executor().enable_tracing_with(gko::TraceConfig {
        sample_n: 1,
        max_spans: 2_000_000,
        ..gko::TraceConfig::default()
    });
    let server = dev
        .executor()
        .serve_telemetry("127.0.0.1:0")
        .expect("start exporter");
    let addr = server.addr();
    println!("trace_probe: serving on http://{addr} (try: curl http://{addr}/traces)");

    let b = pg::as_tensor_fill(&dev, (rows, 1), "double", 1.0).expect("rhs");
    let mut x = pg::as_tensor_fill(&dev, (rows, 1), "double", 0.0).expect("x0");
    let logger = solver.apply(&b, &mut x).expect("solve");
    assert!(
        logger.converged(),
        "reference solve must converge (stopped after {} iterations)",
        logger.iterations()
    );
    println!(
        "trace_probe: CG converged in {} iterations (residual {:.3e})",
        logger.iterations(),
        logger.final_residual()
    );

    // --- the facade report ---
    let report = solver.trace_report().expect("sample_n=1 retains the solve");
    assert_eq!(report.annotation, "solver::Cg");
    assert!(report.converged);
    assert!(report.iterations > 0);
    assert_eq!(report.truncated_spans, 0, "probe solve must not truncate");
    let trace_id = report.trace_id;
    println!(
        "trace_probe: facade trace {} — {} spans over {} iterations",
        trace_id,
        report.spans.len(),
        report.iterations
    );

    // --- /traces index ---
    let (status, body) = http_get(addr, "/traces");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let index = Config::from_json(&body).expect("/traces is valid JSON");
    assert!(matches!(index.get("armed"), Some(Config::Bool(true))));
    assert_eq!(index.get("drops_total").and_then(Config::as_int), Some(0));
    let entries = index
        .get("traces")
        .and_then(Config::as_array)
        .expect("traces array");
    assert!(
        entries
            .iter()
            .any(|e| e.get("trace_id").and_then(Config::as_int) == Some(trace_id as i64)),
        "index lists the solve's trace"
    );
    println!("trace_probe: /traces OK ({} retained)", entries.len());

    // --- /traces/<id> drill-down ---
    let (status, body) = http_get(addr, &format!("/traces/{trace_id}"));
    assert_eq!(status, "HTTP/1.1 200 OK");
    let doc = Config::from_json(&body).expect("/traces/<id> is valid JSON");
    assert_eq!(
        doc.get("trace_id").and_then(Config::as_int),
        Some(trace_id as i64)
    );
    let root = doc.get("root").and_then(Config::as_int).expect("root id");
    let spans = parse_spans(&doc);
    assert_eq!(spans.len(), report.spans.len(), "scrape matches the facade");
    validate_tree(&spans, root, 16);

    // --- Chrome-trace export ---
    let (status, chrome) = http_get(addr, &format!("/traces/{trace_id}?format=chrome"));
    assert_eq!(status, "HTTP/1.1 200 OK");
    let chrome = Config::from_json(&chrome).expect("chrome export is valid JSON");
    let events = chrome
        .get("traceEvents")
        .and_then(Config::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "chrome export has events");
    println!("trace_probe: chrome export OK ({} events)", events.len());

    // --- /runs linkage ---
    let (status, runs) = http_get(addr, "/runs");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let doc = Config::from_json(&runs).expect("/runs is valid JSON");
    let reports = doc
        .get("reports")
        .and_then(Config::as_array)
        .expect("reports array");
    assert!(
        reports
            .iter()
            .any(|r| r.get("trace_id").and_then(Config::as_int) == Some(trace_id as i64)),
        "/runs links the trace id"
    );
    println!("trace_probe: /runs linkage OK");

    server.shutdown();
    assert!(
        TcpStream::connect(addr).is_err(),
        "port must stop accepting after shutdown"
    );
    println!("trace_probe: shutdown clean — all checks passed");
}
