//! Format × executor SpMV sweep with pool and profiler telemetry.
//!
//! Runs every sparse format on the reference executor and on OpenMP-model
//! executors with 1/2/4/8/16 threads, on a large (~1.8M-nnz) Poisson
//! matrix — plus the full CSR strategy sweep (classical, load-balance,
//! merge-path, auto) on a skewed power-law matrix whose ultra-dense row is
//! the case merge-path exists for, and a plan-reuse-vs-rebuild ablation
//! quantifying the cached inspector — and writes
//! `results/BENCH_spmv.json` with deterministic
//! virtual-time GFLOP/s, the speedup over the reference executor, the
//! worker-pool counters (dispatches, chunks, steals, and
//! `pool_ns_per_dispatch` — mean wall-clock nanoseconds a dispatch spends
//! inside the pool, chunk execution included), and — via a [`Profiler`] and
//! the metrics registry attached to each executor — the per-kernel
//! call/time aggregates and virtual-latency quantiles of the whole sweep.
//!
//! The JSON is built as a [`gko::config::Config`] tree and serialized with
//! the engine's own serializer, so `bench_gate` can parse it back with the
//! same code. Virtual-time fields are deterministic; committing the output
//! as `results/BASELINE_spmv.json` gives the regression gate its reference.
//!
//! `cargo run --release -p pygko-bench --bin spmv_formats`

use gko::config::Config;
use gko::linop::LinOp;
use gko::log::{Profiler, ProfilerSummary};
use gko::matrix::{BatchCsr, BatchDense, Coo, Csr, Dense, Ell, Hybrid, Sellp, SpmvStrategy};
use gko::solver::{BatchCg, Cg};
use gko::stop::Criteria;
use gko::{Dim2, Executor, MetricsSnapshot};
use pygko_bench::{fmt, gflops, quick_mode, results_dir, Report};
use pygko_matgen::generators::{poisson2d, power_law, spd_tridiag_batch};
use std::sync::Arc;

struct Record {
    matrix: String,
    format: &'static str,
    strategy: &'static str,
    executor: String,
    threads: usize,
    seconds: f64,
    gflops: f64,
    speedup: f64,
    dispatches: u64,
    chunks: u64,
    steals: u64,
    pool_ns_per_dispatch: f64,
}

/// One timed apply of `op` on `exec`; returns virtual seconds plus the pool
/// counters this kernel added.
fn run_once<V: gko::Value>(
    exec: &Executor,
    op: &dyn LinOp<V>,
    b: &Dense<V>,
    x: &mut Dense<V>,
) -> (f64, gko::PoolStats) {
    // Warm up so lazy pool spawning is not charged to the measured kernel.
    op.apply(b, x).expect("spmv");
    let s0 = exec.pool_stats();
    let t0 = exec.timeline().snapshot();
    op.apply(b, x).expect("spmv");
    exec.synchronize();
    let secs = exec.timeline().snapshot().since(&t0).seconds();
    (secs, exec.pool_stats().since(&s0))
}

fn main() {
    let grid = if quick_mode() { 120 } else { 600 };
    let gen = poisson2d("poisson2d", grid, grid);
    let nnz = gen.nnz();
    let dim = Dim2::new(gen.rows, gen.cols);
    let poisson_name = format!("poisson2d_{grid}");
    println!("matrix: {poisson_name} ({} rows, {nnz} nnz)", gen.rows);

    // Skewed power-law matrix: one row holds ~90% of the columns, so
    // row-parallel strategies serialize one lane while merge-path splits the
    // row by nonzero count.
    let skew_n = if quick_mode() { 20_000 } else { 200_000 };
    let skew_gen = power_law("powerlaw", skew_n, 2, 0.9, 2026);
    let skew_nnz = skew_gen.nnz();
    let skew_dim = Dim2::new(skew_gen.rows, skew_gen.cols);
    let skew_name = format!("powerlaw_{skew_n}");
    println!("matrix: {skew_name} ({} rows, {skew_nnz} nnz)", skew_gen.rows);

    let executors: Vec<(String, usize, Executor)> = std::iter::once((
        "reference".to_string(),
        1usize,
        Executor::reference(),
    ))
    .chain(
        [1usize, 2, 4, 8, 16]
            .into_iter()
            .map(|t| (format!("omp{t}"), t, Executor::omp(t))),
    )
    .collect();

    let mut records: Vec<Record> = Vec::new();
    // One profiler per executor observes every kernel of that executor's
    // sweep (including warm-up applies and format conversions); the metrics
    // registry additionally folds the same stream into latency histograms,
    // and the flight recorder's anomaly counters ride along so `bench_gate`
    // can refuse a run that tripped a detector.
    let mut profiles: Vec<(String, usize, ProfilerSummary)> = Vec::new();
    let mut metrics: Vec<(String, usize, MetricsSnapshot)> = Vec::new();
    for (name, threads, exec) in &executors {
        let profiler = Arc::new(Profiler::new());
        exec.add_logger(profiler.clone());
        exec.enable_metrics();
        exec.enable_flight_recorder();
        let csr = Csr::<f64, i32>::from_triplets(exec, dim, &gen.triplets).unwrap();
        let b = Dense::<f64>::vector(exec, gen.cols, 1.0);
        let mut x = Dense::zeros(exec, Dim2::new(gen.rows, 1));

        let mut push = |matrix: &str, mat_nnz: usize, format: &'static str,
                        strategy: &'static str, op: &dyn LinOp<f64>, b: &Dense<f64>,
                        x: &mut Dense<f64>| {
            let (secs, stats) = run_once(exec, op, b, x);
            records.push(Record {
                matrix: matrix.to_owned(),
                format,
                strategy,
                executor: name.clone(),
                threads: *threads,
                seconds: secs,
                gflops: gflops(mat_nnz, secs),
                speedup: 0.0, // filled below, once the reference row exists
                dispatches: stats.dispatches,
                chunks: stats.chunks,
                steals: stats.steals,
                pool_ns_per_dispatch: if stats.dispatches == 0 {
                    0.0
                } else {
                    stats.dispatch_ns as f64 / stats.dispatches as f64
                },
            });
        };

        push(&poisson_name, nnz, "csr", "classical",
             &csr.clone().with_strategy(SpmvStrategy::Classical), &b, &mut x);
        push(&poisson_name, nnz, "csr", "load_balance",
             &csr.clone().with_strategy(SpmvStrategy::LoadBalance), &b, &mut x);
        push(&poisson_name, nnz, "csr", "merge_path",
             &csr.clone().with_strategy(SpmvStrategy::MergePath), &b, &mut x);
        push(&poisson_name, nnz, "csr", "auto", &csr, &b, &mut x);
        push(&poisson_name, nnz, "coo", "segmented", &Coo::from_csr(&csr), &b, &mut x);
        push(&poisson_name, nnz, "ell", "row_parallel", &Ell::from_csr(&csr), &b, &mut x);
        push(&poisson_name, nnz, "sellp", "slice_parallel", &Sellp::from_csr(&csr), &b, &mut x);
        push(&poisson_name, nnz, "hybrid", "ell+coo", &Hybrid::from_csr(&csr), &b, &mut x);

        // CSR strategy sweep on the skewed matrix: the row the merge-path
        // kernel exists for.
        let skew_csr =
            Csr::<f64, i32>::from_triplets(exec, skew_dim, &skew_gen.triplets).unwrap();
        let sb = Dense::<f64>::vector(exec, skew_gen.cols, 1.0);
        let mut sx = Dense::zeros(exec, Dim2::new(skew_gen.rows, 1));
        push(&skew_name, skew_nnz, "csr", "classical",
             &skew_csr.clone().with_strategy(SpmvStrategy::Classical), &sb, &mut sx);
        push(&skew_name, skew_nnz, "csr", "load_balance",
             &skew_csr.clone().with_strategy(SpmvStrategy::LoadBalance), &sb, &mut sx);
        push(&skew_name, skew_nnz, "csr", "merge_path",
             &skew_csr.clone().with_strategy(SpmvStrategy::MergePath), &sb, &mut sx);
        push(&skew_name, skew_nnz, "csr", "auto", &skew_csr, &sb, &mut sx);
        profiles.push((name.clone(), *threads, profiler.summary()));
        metrics.push((
            name.clone(),
            *threads,
            exec.metrics_snapshot().expect("metrics enabled"),
        ));
        exec.clear_loggers();
    }

    // Speedup of each row over the same matrix/format/strategy on reference.
    let reference: Vec<(String, f64)> = records
        .iter()
        .filter(|r| r.executor == "reference")
        .map(|r| (format!("{}/{}/{}", r.matrix, r.format, r.strategy), r.seconds))
        .collect();
    for r in records.iter_mut() {
        let key = format!("{}/{}/{}", r.matrix, r.format, r.strategy);
        if let Some((_, ref_secs)) = reference.iter().find(|(k, _)| *k == key) {
            r.speedup = ref_secs / r.seconds;
        }
    }

    let mut report = Report::new(
        "SpMV formats x strategies (virtual time)",
        &[
            "matrix", "format", "strategy", "executor", "threads", "GFLOP/s", "speedup",
            "dispatches", "chunks", "steals", "ns/dispatch",
        ],
    );
    for r in &records {
        report.row(vec![
            r.matrix.clone(),
            r.format.into(),
            r.strategy.into(),
            r.executor.clone(),
            r.threads.to_string(),
            fmt(r.gflops),
            fmt(r.speedup),
            r.dispatches.to_string(),
            r.chunks.to_string(),
            r.steals.to_string(),
            fmt(r.pool_ns_per_dispatch),
        ]);
    }
    report.print();

    // Plan-reuse vs per-apply-rebuild ablation (the inspector-executor
    // payoff): the same LoadBalance CSR applied `applies` times with the
    // cached plan, then again with the cache invalidated before every
    // apply. Virtual time is deterministic, so the delta is exactly the
    // modeled inspector cost.
    let applies = 100usize;
    let ab_exec = Executor::omp(16);
    let ab_csr = Csr::<f64, i32>::from_triplets(&ab_exec, dim, &gen.triplets)
        .unwrap()
        .with_strategy(SpmvStrategy::LoadBalance);
    let ab_b = Dense::<f64>::vector(&ab_exec, gen.cols, 1.0);
    let mut ab_x = Dense::zeros(&ab_exec, Dim2::new(gen.rows, 1));
    // Measure the inspector alone: one plan build on the virtual timeline.
    let t0 = ab_exec.timeline().snapshot();
    let _ = ab_csr.plan();
    ab_exec.synchronize();
    let plan_build_secs = ab_exec.timeline().snapshot().since(&t0).seconds();
    let run_applies = |rebuild: bool, x: &mut Dense<f64>| -> f64 {
        let t0 = ab_exec.timeline().snapshot();
        for _ in 0..applies {
            if rebuild {
                ab_csr.invalidate_plan();
            }
            ab_csr.apply(&ab_b, x).expect("spmv");
        }
        ab_exec.synchronize();
        ab_exec.timeline().snapshot().since(&t0).seconds()
    };
    ab_csr.invalidate_plan();
    let before = ab_csr.plan_stats();
    let reused_secs = run_applies(false, &mut ab_x);
    let after = ab_csr.plan_stats();
    // Counters are monotone; the delta is this run's build/hit behaviour.
    let reused_stats = gko::matrix::PlanCacheStats {
        builds: after.builds - before.builds,
        hits: after.hits - before.hits,
    };
    let rebuilt_secs = run_applies(true, &mut ab_x);
    let reuse_ratio = reused_stats.reuse_ratio();
    println!(
        "\nplan ablation ({poisson_name}, csr/load_balance, omp16, {applies} applies):\n  \
         plan_build {:.3} us | apply (reused) {:.3} us | apply (rebuilt) {:.3} us | \
         reuse ratio {:.4}",
        plan_build_secs * 1e6,
        reused_secs / applies as f64 * 1e6,
        rebuilt_secs / applies as f64 * 1e6,
        reuse_ratio
    );
    assert!(
        reuse_ratio >= 0.99,
        "cached plan should serve >=99% of lookups: {reused_stats:?}"
    );
    assert!(
        reused_secs <= rebuilt_secs,
        "plan reuse must not be slower than per-apply rebuilds"
    );

    // Batched-solver headline: many independent small SPD systems sharing
    // one sparsity, solved by batched CG (one pool drain per kernel across
    // all systems) versus a loop of single-system CG solves. omp16 charges a
    // virtual launch fee per kernel, so batching amortizes it across the
    // whole batch and the per-system virtual time must drop.
    let batch_systems = if quick_mode() { 200 } else { 1200 };
    let batch_n = 32usize;
    let bgen = spd_tridiag_batch("tridiag", batch_n, batch_systems, 7);
    let bt_exec = Executor::omp(16);
    bt_exec.enable_flight_recorder();
    let bt_dim = Dim2::new(batch_n, batch_n);
    let proto =
        Csr::<f64, i32>::from_triplets(&bt_exec, bt_dim, &bgen.prototype.triplets).unwrap();
    let batch = Arc::new(BatchCsr::from_shared(&proto, &bgen.system_values).unwrap());
    let batch_criteria = Criteria::iterations_and_reduction(200, 1e-10);
    let vec_dim = Dim2::new(batch_n, 1);
    let mut batch_b = BatchDense::<f64>::zeros(&bt_exec, batch_systems, vec_dim);
    let mut batch_x = BatchDense::<f64>::zeros(&bt_exec, batch_systems, vec_dim);
    for s in 0..batch_systems {
        batch_b.system_mut(s).copy_from_slice(&bgen.rhs[s]);
    }
    let batch_solver = BatchCg::new(batch.clone()).unwrap().with_criteria(batch_criteria);
    let t0 = bt_exec.timeline().snapshot();
    let batch_record = batch_solver.apply_batch(&batch_b, &mut batch_x).unwrap();
    bt_exec.synchronize();
    let batched_secs = bt_exec.timeline().snapshot().since(&t0).seconds();
    assert!(
        batch_record.all_converged(),
        "batched CG should converge on every diagonally dominant system \
         ({}/{batch_systems} converged)",
        batch_record.converged_count()
    );
    let batch_plan = batch.plan_stats().expect("shared sparsity has a plan cache");
    assert_eq!(
        batch_plan.builds, 1,
        "one shared plan should serve the whole solve: {batch_plan:?}"
    );

    // The same systems as independent single solves (matrices, vectors, and
    // solvers built outside the timed region — only solve time is compared).
    let singles: Vec<(Cg<f64>, Dense<f64>, Dense<f64>)> = (0..batch_systems)
        .map(|s| {
            let triplets: Vec<(usize, usize, f64)> = bgen
                .prototype
                .triplets
                .iter()
                .zip(&bgen.system_values[s])
                .map(|(&(r, c, _), &v)| (r, c, v))
                .collect();
            let csr = Arc::new(Csr::<f64, i32>::from_triplets(&bt_exec, bt_dim, &triplets).unwrap());
            let solver = Cg::new(csr).unwrap().with_criteria(batch_criteria);
            let b = Dense::from_vec(&bt_exec, vec_dim, bgen.rhs[s].clone()).unwrap();
            let x = Dense::zeros(&bt_exec, vec_dim);
            (solver, b, x)
        })
        .collect();
    let t0 = bt_exec.timeline().snapshot();
    for (solver, b, x) in &mut singles.into_iter() {
        let mut x = x;
        solver.apply(&b, &mut x).expect("single cg");
    }
    bt_exec.synchronize();
    let loop_secs = bt_exec.timeline().snapshot().since(&t0).seconds();

    let batch_anomalies = bt_exec
        .flight_recorder()
        .map(|r| r.anomalies_total())
        .unwrap_or(0);
    let per_system_batched_ns = batched_secs / batch_systems as f64 * 1e9;
    let per_system_loop_ns = loop_secs / batch_systems as f64 * 1e9;
    println!(
        "\nbatched CG ({batch_systems} systems of {batch_n} rows, omp16):\n  \
         batched {:.2} us/system | loop-of-singles {:.2} us/system | speedup {:.2}x | \
         plan builds {} hits {} | anomalies {batch_anomalies}",
        per_system_batched_ns / 1e3,
        per_system_loop_ns / 1e3,
        loop_secs / batched_secs,
        batch_plan.builds,
        batch_plan.hits
    );
    assert!(
        batched_secs < loop_secs,
        "batched CG must beat the loop of single solves per system: \
         batched {batched_secs}s vs loop {loop_secs}s"
    );
    assert_eq!(batch_anomalies, 0, "batched sweep tripped a flight-recorder detector");

    // Trace overhead: the same fixed-work CG solve (fixed iteration count,
    // so the inert and armed runs do identical numerical work) on a fresh
    // omp-16 executor with standard (classical) CSR, timed on the wall
    // clock untraced and with tracing armed at sample_n=1. The inert figure
    // is the cost of the tracing *code paths* while disarmed — one relaxed
    // load per probe — and `bench_gate` holds it inside a tolerance band;
    // the armed figure quantifies full span assembly. The retained trace's
    // per-op span counts are asserted here: exactly one root, one iteration
    // span per iteration, and one csr kernel span per iteration plus the
    // prologue residual apply.
    let tr_iters = 40usize;
    let tr_exec = Executor::omp(16);
    let tr_csr = Arc::new(
        Csr::<f64, i32>::from_triplets(&tr_exec, dim, &gen.triplets)
            .unwrap()
            .with_strategy(SpmvStrategy::Classical),
    );
    let tr_b = Dense::<f64>::vector(&tr_exec, gen.cols, 1.0);
    let tr_criteria = Criteria::iterations(tr_iters);
    let timed_solve = |exec: &Executor| -> u64 {
        let solver = Cg::new(tr_csr.clone()).unwrap().with_criteria(tr_criteria);
        let mut x = Dense::<f64>::zeros(exec, Dim2::new(gen.rows, 1));
        let t0 = std::time::Instant::now();
        solver.apply(&tr_b, &mut x).expect("fixed-work cg");
        t0.elapsed().as_nanos() as u64
    };
    let min_of = |exec: &Executor, runs: usize| -> u64 {
        timed_solve(exec); // warm-up: pool spawn, plan build, page faults
        (0..runs).map(|_| timed_solve(exec)).min().unwrap_or(0)
    };
    let inert_ns = min_of(&tr_exec, 3);
    tr_exec.enable_flight_recorder_with(gko::DetectorConfig {
        drift_min_solves: u64::MAX,
        imbalance_ratio: f64::INFINITY,
        ..gko::DetectorConfig::default()
    });
    tr_exec.enable_tracing_with(gko::TraceConfig {
        sample_n: 1,
        max_spans: 2_000_000,
        ..gko::TraceConfig::default()
    });
    let armed_ns = min_of(&tr_exec, 3);
    let trace = tr_exec.tracer().latest().expect("armed solve retained");
    assert_eq!(trace.iterations as usize, tr_iters);
    assert_eq!(trace.truncated_spans, 0);
    let count = |pred: &dyn Fn(&gko::SpanRecord) -> bool| {
        trace.spans.iter().filter(|s| pred(s)).count()
    };
    let span_counts = [
        ("solve", count(&|s| s.kind == gko::SpanKind::Solve)),
        ("iteration", count(&|s| s.kind == gko::SpanKind::Iteration)),
        ("kernel_apply", count(&|s| s.kind == gko::SpanKind::Kernel)),
        ("plan_build", count(&|s| s.kind == gko::SpanKind::PlanBuild)),
        ("pool_dispatch", count(&|s| s.kind == gko::SpanKind::Dispatch)),
        ("chunk", count(&|s| s.kind == gko::SpanKind::Chunk)),
    ];
    assert_eq!(span_counts[0].1, 1, "exactly one solve root");
    assert_eq!(span_counts[1].1, tr_iters, "one span per iteration");
    assert_eq!(
        count(&|s| s.name == "csr"),
        tr_iters + 1,
        "one csr apply per iteration plus the prologue residual"
    );
    assert!(span_counts[4].1 > 0, "pooled solve opened dispatch spans");
    assert!(span_counts[5].1 > 0, "dispatches recorded chunk spans");

    // Continuous profiler on top of armed tracing: the same fixed-work
    // solve with every finished span tree folded into the flame aggregate.
    // The fold runs off the solve's critical path only in the sense that it
    // is one pass per completed trace, so its cost rides the same tolerance
    // band as armed tracing.
    tr_exec.enable_profiling();
    let profiled_ns = min_of(&tr_exec, 3);
    let prof = tr_exec.profile_snapshot();
    assert!(prof.solves >= 4, "warm-up + 3 timed solves folded: {}", prof.solves);
    assert!(!prof.nodes.is_empty(), "profiled solve built a flame tree");
    let root = &prof.nodes[0];
    assert_eq!(root.depth, 0, "first flattened node is a root");
    assert_eq!(root.kind, "solve", "flame tree is rooted at the solve span");
    assert!(
        prof.nodes.iter().any(|n| n.path.contains("csr")),
        "csr kernel spans surface as flame paths"
    );
    assert!(
        prof.nodes.len() <= prof.max_nodes,
        "flame store respects its node cap"
    );
    tr_exec.disable_profiling();
    tr_exec.disable_tracing();
    let inert_ns_per_iter = inert_ns as f64 / tr_iters as f64;
    let armed_ns_per_iter = armed_ns as f64 / tr_iters as f64;
    let profiled_ns_per_iter = profiled_ns as f64 / tr_iters as f64;
    let armed_over_inert = if inert_ns == 0 {
        0.0
    } else {
        armed_ns as f64 / inert_ns as f64
    };
    let profiled_over_inert = if inert_ns == 0 {
        0.0
    } else {
        profiled_ns as f64 / inert_ns as f64
    };
    println!(
        "\ntrace overhead ({poisson_name}, csr/classical, omp16, {tr_iters} fixed iterations):\n  \
         inert {:.1} us/iter | armed {:.1} us/iter | profiled {:.1} us/iter | \
         armed/inert {:.2}x | profiled/inert {:.2}x | {} spans | {} flame nodes",
        inert_ns_per_iter / 1e3,
        armed_ns_per_iter / 1e3,
        profiled_ns_per_iter / 1e3,
        armed_over_inert,
        profiled_over_inert,
        trace.spans.len(),
        prof.nodes.len()
    );

    // Per-kernel profiler aggregates for the widest parallel executor.
    if let Some((name, _, summary)) = profiles.last() {
        println!("\nprofiler summary ({name}):");
        for k in &summary.kernels {
            println!(
                "  {:<14} {:>6} calls  {:>12} virtual ns  {:>12} self ns",
                k.op, k.calls, k.virtual_ns, k.self_virtual_ns
            );
        }
        println!(
            "  pool: {} dispatches, {} chunks, {} steals; {} allocations ({} bytes)",
            summary.pool_dispatches,
            summary.pool_chunks,
            summary.pool_steals,
            summary.allocations,
            summary.allocated_bytes
        );
    }

    // JSON via the engine's own Config tree + serializer (the workspace
    // carries no serialization dependency): timing records, each executor's
    // profiler telemetry, and the metrics-registry quantile summaries.
    let record_json: Vec<Config> = records
        .iter()
        .map(|r| {
            Config::map()
                .with("matrix", r.matrix.as_str())
                .with("nnz", if r.matrix == poisson_name { nnz } else { skew_nnz })
                .with("format", r.format)
                .with("strategy", r.strategy)
                .with("executor", r.executor.as_str())
                .with("threads", r.threads)
                .with("virtual_seconds", r.seconds)
                .with("gflops", r.gflops)
                .with("speedup_vs_reference", r.speedup)
                .with("pool_dispatches", r.dispatches as i64)
                .with("pool_chunks", r.chunks as i64)
                .with("pool_steals", r.steals as i64)
                .with("pool_ns_per_dispatch", r.pool_ns_per_dispatch)
        })
        .collect();
    let profile_json: Vec<Config> = profiles
        .iter()
        .map(|(name, threads, summary)| {
            let kernels: Vec<Config> = summary
                .kernels
                .iter()
                .map(|k| {
                    Config::map()
                        .with("op", k.op)
                        .with("calls", k.calls as i64)
                        .with("wall_ns", k.wall_ns as i64)
                        .with("virtual_ns", k.virtual_ns as i64)
                        .with("self_wall_ns", k.self_wall_ns as i64)
                        .with("self_virtual_ns", k.self_virtual_ns as i64)
                })
                .collect();
            Config::map()
                .with("executor", name.as_str())
                .with("threads", *threads)
                .with("pool_dispatches", summary.pool_dispatches as i64)
                .with("pool_chunks", summary.pool_chunks as i64)
                .with("pool_steals", summary.pool_steals as i64)
                .with("allocations", summary.allocations as i64)
                .with("allocated_bytes", summary.allocated_bytes as i64)
                .with("kernels", kernels)
        })
        .collect();
    // Virtual-time quantiles only: wall-clock quantiles vary run to run and
    // would make the committed baseline undiffable.
    let metrics_json: Vec<Config> = metrics
        .iter()
        .map(|(name, threads, snap)| {
            let kernels: Vec<Config> = snap
                .kernels
                .iter()
                .map(|k| {
                    Config::map()
                        .with("op", k.op.as_str())
                        .with("calls", k.calls as i64)
                        .with("virtual_p50_ns", k.virtual_ns.p50() as i64)
                        .with("virtual_p95_ns", k.virtual_ns.p95() as i64)
                        .with("virtual_p99_ns", k.virtual_ns.p99() as i64)
                        .with("virtual_max_ns", k.virtual_ns.max as i64)
                })
                .collect();
            Config::map()
                .with("executor", name.as_str())
                .with("threads", *threads)
                .with("events", snap.events as i64)
                .with("pool_dispatches", snap.pool_dispatch_ns.count as i64)
                .with("allocations", snap.alloc_bytes.count as i64)
                .with(
                    "anomalies_total",
                    snap.anomalies.iter().map(|(_, n)| *n).sum::<u64>() as i64,
                )
                .with("kernels", kernels)
        })
        .collect();
    let plan_ablation_json = Config::map()
        .with("matrix", poisson_name.as_str())
        .with("format", "csr")
        .with("strategy", "load_balance")
        .with("executor", "omp16")
        .with("applies", applies)
        .with("plan_build_ns", plan_build_secs * 1e9)
        .with("apply_reused_ns", reused_secs / applies as f64 * 1e9)
        .with("apply_rebuilt_ns", rebuilt_secs / applies as f64 * 1e9)
        .with("plan_builds", reused_stats.builds as i64)
        .with("plan_hits", reused_stats.hits as i64)
        .with("reuse_ratio", reuse_ratio);
    let batched_json = Config::map()
        .with("matrix", "tridiag_batch")
        .with("systems", batch_systems)
        .with("rows_per_system", batch_n)
        .with("executor", "omp16")
        .with("threads", 16usize)
        .with("batched_virtual_seconds", batched_secs)
        .with("loop_virtual_seconds", loop_secs)
        .with("per_system_batched_ns", per_system_batched_ns)
        .with("per_system_loop_ns", per_system_loop_ns)
        .with("speedup_vs_loop", loop_secs / batched_secs)
        .with("converged", batch_record.converged_count())
        .with("max_iterations", batch_record.max_iterations())
        .with("plan_builds", batch_plan.builds as i64)
        .with("plan_hits", batch_plan.hits as i64)
        .with("reuse_ratio", batch_plan.reuse_ratio())
        .with("anomalies_total", batch_anomalies as i64);
    // Wall-clock fields (unlike the virtual-time records) vary run to run;
    // `bench_gate` compares them under its dedicated, generous trace
    // tolerance. The span counts are exact for the fixed-work solve.
    let span_counts_json = span_counts
        .iter()
        .fold(Config::map(), |c, (kind, n)| c.with(kind, *n as i64));
    let trace_overhead_json = Config::map()
        .with("matrix", poisson_name.as_str())
        .with("format", "csr")
        .with("strategy", "classical")
        .with("executor", "omp16")
        .with("iterations", tr_iters)
        .with("inert_wall_ns_per_iter", inert_ns_per_iter)
        .with("armed_wall_ns_per_iter", armed_ns_per_iter)
        .with("profiled_wall_ns_per_iter", profiled_ns_per_iter)
        .with("armed_over_inert", armed_over_inert)
        .with("profiled_over_inert", profiled_over_inert)
        .with("spans_total", trace.spans.len() as i64)
        .with("span_counts", span_counts_json);
    // Folded flame profile of the profiled fixed-work solve: one
    // `path -> self_wall_ns` entry per flame node. Self times are wall
    // clock (run-to-run noisy), so bench_gate never gates on them — it
    // reads them only for differential attribution once a gated row has
    // already regressed.
    let profile_paths = prof
        .nodes
        .iter()
        .fold(Config::map(), |c, n| c.with(n.path.as_str(), n.self_wall_ns as i64));
    let profiles_folded_json = Config::map()
        .with("matrix", poisson_name.as_str())
        .with("format", "csr")
        .with("strategy", "classical")
        .with("executor", "omp16")
        .with("solves", prof.solves as i64)
        .with("paths", profile_paths);
    let doc = Config::map()
        .with("records", record_json)
        .with("profiles", profile_json)
        .with("metrics", metrics_json)
        .with("plan_ablation", plan_ablation_json)
        .with("batched", batched_json)
        .with("trace_overhead", trace_overhead_json)
        .with("profiles_folded", profiles_folded_json.clone());

    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_spmv.json");
    std::fs::write(&path, gko::config::json::to_string_pretty(&doc)).expect("write json");
    println!("\nwrote {}", path.display());
    // Standalone copy for the committed profile baseline: refresh with
    //   cp results/BENCH_profile.json results/BASELINE_profile.json
    let profile_doc = Config::map().with("profiles_folded", profiles_folded_json);
    let profile_path = dir.join("BENCH_profile.json");
    std::fs::write(&profile_path, gko::config::json::to_string_pretty(&profile_doc))
        .expect("write profile json");
    println!("wrote {}", profile_path.display());

    // Headline check: parallel CSR and COO beat the serial reference by 2x.
    for format in ["csr", "coo"] {
        let best = records
            .iter()
            .filter(|r| r.matrix == poisson_name && r.format == format && r.executor != "reference")
            .map(|r| r.speedup)
            .fold(0.0f64, f64::max);
        println!("best {format} omp speedup vs reference: {best:.2}x");
        assert!(
            best >= 2.0,
            "{format} omp should be at least 2x the reference executor"
        );
    }

    // Merge-path headline: on the skewed matrix at full width, splitting the
    // ultra-dense row beats every row-parallel strategy.
    let skew_secs = |strategy: &str| {
        records
            .iter()
            .find(|r| r.matrix == skew_name && r.strategy == strategy && r.executor == "omp16")
            .map(|r| r.seconds)
            .expect("skewed omp16 row")
    };
    let (mp, lb, cl) = (
        skew_secs("merge_path"),
        skew_secs("load_balance"),
        skew_secs("classical"),
    );
    println!(
        "powerlaw omp16: merge_path {:.1} us vs load_balance {:.1} us vs classical {:.1} us",
        mp * 1e6,
        lb * 1e6,
        cl * 1e6
    );
    assert!(
        mp < lb && mp < cl,
        "merge-path should win on the skewed matrix: mp {mp} lb {lb} cl {cl}"
    );
    // Auto must have picked merge-path there (skew is far past the
    // threshold), so its row should match merge_path's virtual time.
    let auto = skew_secs("auto");
    assert!(
        (auto - mp).abs() <= 1e-12_f64.max(mp * 1e-9),
        "auto should resolve to merge-path on the skewed matrix: auto {auto} mp {mp}"
    );
}
