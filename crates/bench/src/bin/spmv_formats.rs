//! Format × executor SpMV sweep with pool and profiler telemetry.
//!
//! Runs every sparse format on the reference executor and on OpenMP-model
//! executors with 1/2/4/8/16 threads, on a large (~1.8M-nnz) Poisson
//! matrix, and writes `results/BENCH_spmv.json` with deterministic
//! virtual-time GFLOP/s, the speedup over the reference executor, the
//! worker-pool counters (dispatches, chunks, steals, mean wall-clock
//! nanoseconds per kernel dispatch), and — via a [`Profiler`] attached to
//! each executor — the per-kernel call/time aggregates of the whole sweep.
//!
//! `cargo run --release -p pygko-bench --bin spmv_formats`

use gko::linop::LinOp;
use gko::log::{Profiler, ProfilerSummary};
use gko::matrix::{Coo, Csr, Dense, Ell, Hybrid, Sellp, SpmvStrategy};
use gko::{Dim2, Executor};
use pygko_bench::{fmt, gflops, quick_mode, results_dir, Report};
use pygko_matgen::generators::poisson2d;
use std::fmt::Write as _;
use std::sync::Arc;

struct Record {
    format: &'static str,
    strategy: &'static str,
    executor: String,
    threads: usize,
    seconds: f64,
    gflops: f64,
    speedup: f64,
    dispatches: u64,
    chunks: u64,
    steals: u64,
    dispatch_overhead_ns: f64,
}

/// One timed apply of `op` on `exec`; returns virtual seconds plus the pool
/// counters this kernel added.
fn run_once<V: gko::Value>(
    exec: &Executor,
    op: &dyn LinOp<V>,
    b: &Dense<V>,
    x: &mut Dense<V>,
) -> (f64, gko::PoolStats) {
    // Warm up so lazy pool spawning is not charged to the measured kernel.
    op.apply(b, x).expect("spmv");
    let s0 = exec.pool_stats();
    let t0 = exec.timeline().snapshot();
    op.apply(b, x).expect("spmv");
    exec.synchronize();
    let secs = exec.timeline().snapshot().since(&t0).seconds();
    (secs, exec.pool_stats().since(&s0))
}

fn main() {
    let grid = if quick_mode() { 120 } else { 600 };
    let gen = poisson2d("poisson2d", grid, grid);
    let nnz = gen.nnz();
    let dim = Dim2::new(gen.rows, gen.cols);
    println!("matrix: poisson2d_{grid} ({} rows, {nnz} nnz)", gen.rows);

    let executors: Vec<(String, usize, Executor)> = std::iter::once((
        "reference".to_string(),
        1usize,
        Executor::reference(),
    ))
    .chain(
        [1usize, 2, 4, 8, 16]
            .into_iter()
            .map(|t| (format!("omp{t}"), t, Executor::omp(t))),
    )
    .collect();

    let mut records: Vec<Record> = Vec::new();
    // One profiler per executor observes every kernel of that executor's
    // sweep (including warm-up applies and format conversions).
    let mut profiles: Vec<(String, usize, ProfilerSummary)> = Vec::new();
    for (name, threads, exec) in &executors {
        let profiler = Arc::new(Profiler::new());
        exec.add_logger(profiler.clone());
        let csr = Csr::<f64, i32>::from_triplets(exec, dim, &gen.triplets).unwrap();
        let b = Dense::<f64>::vector(exec, gen.cols, 1.0);
        let mut x = Dense::zeros(exec, Dim2::new(gen.rows, 1));

        let mut push = |format: &'static str, strategy: &'static str, op: &dyn LinOp<f64>,
                        x: &mut Dense<f64>| {
            let (secs, stats) = run_once(exec, op, &b, x);
            records.push(Record {
                format,
                strategy,
                executor: name.clone(),
                threads: *threads,
                seconds: secs,
                gflops: gflops(nnz, secs),
                speedup: 0.0, // filled below, once the reference row exists
                dispatches: stats.dispatches,
                chunks: stats.chunks,
                steals: stats.steals,
                dispatch_overhead_ns: if stats.dispatches == 0 {
                    0.0
                } else {
                    stats.dispatch_ns as f64 / stats.dispatches as f64
                },
            });
        };

        push("csr", "classical", &csr, &mut x);
        let lb = csr.clone().with_strategy(SpmvStrategy::LoadBalance);
        push("csr", "load_balance", &lb, &mut x);
        push("coo", "segmented", &Coo::from_csr(&csr), &mut x);
        push("ell", "row_parallel", &Ell::from_csr(&csr), &mut x);
        push("sellp", "slice_parallel", &Sellp::from_csr(&csr), &mut x);
        push("hybrid", "ell+coo", &Hybrid::from_csr(&csr), &mut x);
        profiles.push((name.clone(), *threads, profiler.summary()));
        exec.clear_loggers();
    }

    // Speedup of each row over the same format/strategy on reference.
    let reference: Vec<(String, f64)> = records
        .iter()
        .filter(|r| r.executor == "reference")
        .map(|r| (format!("{}/{}", r.format, r.strategy), r.seconds))
        .collect();
    for r in records.iter_mut() {
        let key = format!("{}/{}", r.format, r.strategy);
        if let Some((_, ref_secs)) = reference.iter().find(|(k, _)| *k == key) {
            r.speedup = ref_secs / r.seconds;
        }
    }

    let mut report = Report::new(
        &format!("SpMV formats on poisson2d_{grid} (virtual time)"),
        &[
            "format", "strategy", "executor", "threads", "GFLOP/s", "speedup",
            "dispatches", "chunks", "steals", "ns/dispatch",
        ],
    );
    for r in &records {
        report.row(vec![
            r.format.into(),
            r.strategy.into(),
            r.executor.clone(),
            r.threads.to_string(),
            fmt(r.gflops),
            fmt(r.speedup),
            r.dispatches.to_string(),
            r.chunks.to_string(),
            r.steals.to_string(),
            fmt(r.dispatch_overhead_ns),
        ]);
    }
    report.print();

    // Per-kernel profiler aggregates for the widest parallel executor.
    if let Some((name, _, summary)) = profiles.last() {
        println!("\nprofiler summary ({name}):");
        for k in &summary.kernels {
            println!(
                "  {:<14} {:>6} calls  {:>12} virtual ns  {:>12} self ns",
                k.op, k.calls, k.virtual_ns, k.self_virtual_ns
            );
        }
        println!(
            "  pool: {} dispatches, {} chunks, {} steals; {} allocations ({} bytes)",
            summary.pool_dispatches,
            summary.pool_chunks,
            summary.pool_steals,
            summary.allocations,
            summary.allocated_bytes
        );
    }

    // Hand-rolled JSON (the workspace carries no serialization dependency):
    // timing records plus each executor's profiler telemetry.
    let mut json = String::from("{\n\"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(
            json,
            "  {{\"matrix\": \"poisson2d_{grid}\", \"nnz\": {nnz}, \
             \"format\": \"{}\", \"strategy\": \"{}\", \"executor\": \"{}\", \
             \"threads\": {}, \"virtual_seconds\": {:e}, \"gflops\": {:.6}, \
             \"speedup_vs_reference\": {:.6}, \"pool_dispatches\": {}, \
             \"pool_chunks\": {}, \"pool_steals\": {}, \
             \"dispatch_overhead_ns\": {:.1}}}{}",
            r.format,
            r.strategy,
            r.executor,
            r.threads,
            r.seconds,
            r.gflops,
            r.speedup,
            r.dispatches,
            r.chunks,
            r.steals,
            r.dispatch_overhead_ns,
            if i + 1 == records.len() { "" } else { "," }
        );
    }
    json.push_str("],\n\"profiles\": [\n");
    for (i, (name, threads, summary)) in profiles.iter().enumerate() {
        let _ = write!(
            json,
            "  {{\"executor\": \"{name}\", \"threads\": {threads}, \
             \"pool_dispatches\": {}, \"pool_chunks\": {}, \
             \"pool_steals\": {}, \"allocations\": {}, \
             \"allocated_bytes\": {}, \"kernels\": [",
            summary.pool_dispatches,
            summary.pool_chunks,
            summary.pool_steals,
            summary.allocations,
            summary.allocated_bytes
        );
        for (j, k) in summary.kernels.iter().enumerate() {
            let _ = write!(
                json,
                "{}{{\"op\": \"{}\", \"calls\": {}, \"wall_ns\": {}, \
                 \"virtual_ns\": {}, \"self_wall_ns\": {}, \
                 \"self_virtual_ns\": {}}}",
                if j == 0 { "" } else { ", " },
                k.op,
                k.calls,
                k.wall_ns,
                k.virtual_ns,
                k.self_wall_ns,
                k.self_virtual_ns
            );
        }
        let _ = writeln!(
            json,
            "]}}{}",
            if i + 1 == profiles.len() { "" } else { "," }
        );
    }
    json.push_str("]\n}\n");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_spmv.json");
    std::fs::write(&path, json).expect("write json");
    println!("\nwrote {}", path.display());

    // Headline check: parallel CSR and COO beat the serial reference by 2x.
    for format in ["csr", "coo"] {
        let best = records
            .iter()
            .filter(|r| r.format == format && r.executor != "reference")
            .map(|r| r.speedup)
            .fold(0.0f64, f64::max);
        println!("best {format} omp speedup vs reference: {best:.2}x");
        assert!(
            best >= 2.0,
            "{format} omp should be at least 2x the reference executor"
        );
    }
}
