//! Figure 3b: SpMV on the (simulated) Xeon Platinum 8368 — pyGinkgo's
//! speedup relative to single-core SciPy as the thread count scales
//! (1..32), plus PyTorch and TensorFlow at 32 threads, fp32.
//!
//! `cargo run -p pygko-bench --bin fig3b_spmv_cpu --release`

use gko::matrix::{Coo, Csr};
use gko::Dim2;
use pygko_baselines::cpu_executor;
use pygko_baselines::scipy::ScipyCsr;
use pygko_baselines::tf::TfCoo;
use pygko_baselines::torch::TorchCsr;
use pygko_baselines::scipy_executor;
use pygko_bench::{cast_triplets, fmt, maybe_shrink, time_spmv, Report};
use pygko_matgen::spmv_suite;
use std::sync::Arc;

const THREADS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn main() {
    let mut report = Report::new(
        "Figure 3b: CPU SpMV speedup vs SciPy (1 core), fp32, thread sweep",
        &[
            "matrix",
            "nnz",
            "x @1t",
            "x @2t",
            "x @4t",
            "x @8t",
            "x @16t",
            "x @32t",
            "PyTorch32 x",
            "TF32 x",
        ],
    );

    let mut rows: Vec<(usize, Vec<String>)> = Vec::new();
    let mut best_high_nnz: f64 = 0.0;

    for info in maybe_shrink(spmv_suite()) {
        let gen = info.generate();
        let n = gen.rows;
        let nnz = gen.nnz();
        let t32 = cast_triplets::<f32>(&gen);
        let dim = Dim2::new(gen.rows, gen.cols);

        let sp_exec = scipy_executor();
        let scipy = ScipyCsr::new(Arc::new(
            Csr::<f32, i32>::from_triplets(&sp_exec, dim, &t32).unwrap(),
        ));
        let t_scipy = time_spmv(&sp_exec, &scipy, n);

        let mut cells = vec![gen.name.clone(), nnz.to_string()];
        for threads in THREADS {
            let exec = gko::Executor::omp(threads);
            let a = Csr::<f32, i32>::from_triplets(&exec, dim, &t32).unwrap();
            let t = time_spmv(&exec, &a, n);
            let speedup = t_scipy / t;
            if threads == 32 && nnz > 1_000_000 {
                best_high_nnz = best_high_nnz.max(speedup);
            }
            cells.push(fmt(speedup));
        }

        // PyTorch and TensorFlow on 32 CPU threads.
        let to_exec = cpu_executor("PyTorch", 32);
        let torch = TorchCsr::new(Arc::new(
            Csr::<f32, i32>::from_triplets(&to_exec, dim, &t32).unwrap(),
        ));
        cells.push(fmt(t_scipy / time_spmv(&to_exec, &torch, n)));

        let tf_exec = cpu_executor("TensorFlow", 32);
        let tf = TfCoo::new(Arc::new(
            Coo::<f32, i32>::from_triplets(&tf_exec, dim, &t32).unwrap(),
        ));
        cells.push(fmt(t_scipy / time_spmv(&tf_exec, &tf, n)));

        rows.push((nnz, cells));
    }

    rows.sort_by_key(|(nnz, _)| *nnz);
    for (_, row) in rows {
        report.row(row);
    }
    report.print();
    report.write_csv("fig3b_spmv_cpu").expect("csv");

    println!(
        "\npaper: pyGinkgo 7-35x faster than SciPy at 32 threads for high-NNZ matrices; \
         10-60x vs PyTorch, 30-90x vs TensorFlow"
    );
    println!("measured best 32-thread speedup on matrices with NNZ > 1e6: {best_high_nnz:.1}x");
}
