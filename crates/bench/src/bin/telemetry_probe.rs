//! End-to-end probe of the live telemetry plane, run by
//! `scripts/check_telemetry.sh`.
//!
//! Drives a full CG solve on a 2D Poisson matrix (~1.8M nnz, or a small
//! grid under `PYGKO_BENCH_QUICK=1`) through the pyGinkgo facade with the
//! flight recorder armed and the HTTP exporter serving, then scrapes all
//! three endpoints over a raw `TcpStream` (no external HTTP client) and
//! checks the whole contract:
//!
//! * `/metrics` parses under the strict in-tree Prometheus validator and
//!   carries one labelled series triple per pool lane;
//! * `/healthz` is valid JSON and reports the recorder armed;
//! * `/runs` holds the solve's report — converged, anomaly-free, annotated
//!   with the system matrix;
//! * the anomaly detectors pass their self-tests (each injected fault fires
//!   exactly its own anomaly kind, and only under persistence);
//! * shutdown is clean (the port stops accepting).
//!
//! Any violated expectation panics, which exits nonzero for the CI script.
//!
//! `cargo run --release -p pygko-bench --bin telemetry_probe`

use gko::config::Config;
use gko::log::{Event, Logger as _};
use gko::stop::StopReason;
use gko::telemetry::{prom, Anomaly, DetectorConfig, FlightRecorder};
use gko::LaneStats;
use pygko_bench::quick_mode;
use pygko_matgen::generators::poisson2d;
use pyginkgo as pg;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to telemetry server");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: probe\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("response is UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    (head.lines().next().unwrap_or("").to_string(), body.to_string())
}

/// The three detectors, each fed its own injected fault and a healthy
/// control, through the same pure functions the recorder uses.
fn detector_self_tests() {
    let cfg = DetectorConfig::default();

    // Convergence: plateau -> Stagnation, runaway growth -> Divergence,
    // steady improvement -> clean.
    let plateau = vec![1.0; cfg.stagnation_window + 1];
    assert!(matches!(
        gko::telemetry::recorder::detect_convergence(1.0, &plateau, false, &cfg),
        Some(Anomaly::Stagnation { .. })
    ));
    let runaway: Vec<f64> = (0..=cfg.stagnation_window)
        .map(|i| 10.0f64.powi(i as i32))
        .collect();
    assert!(matches!(
        gko::telemetry::recorder::detect_convergence(1e-3, &runaway, false, &cfg),
        Some(Anomaly::Divergence { .. })
    ));
    let improving: Vec<f64> = (0..=cfg.stagnation_window)
        .map(|i| 0.5f64.powi(i as i32))
        .collect();
    assert_eq!(
        gko::telemetry::recorder::detect_convergence(1.0, &improving, false, &cfg),
        None
    );

    // Lane imbalance: one hot lane at scale fires; balanced lanes don't.
    let lane = |busy_ns| LaneStats {
        chunks: 1,
        steals: 0,
        busy_ns,
    };
    assert!(matches!(
        gko::telemetry::recorder::detect_lane_imbalance(
            &[lane(40_000_000), lane(0), lane(0), lane(0)],
            &cfg
        ),
        Some(Anomaly::LaneImbalance { lane: 0, .. })
    ));
    assert_eq!(
        gko::telemetry::recorder::detect_lane_imbalance(&[lane(5_000_000); 4], &cfg),
        None
    );

    // Latency drift end to end through a detached recorder: persistence
    // withholds the first slow solve, the second fires exactly one
    // LatencyDrift, and a tail-only spike never fires.
    let rec = FlightRecorder::detached(DetectorConfig::default());
    let solve = |wall_ns: u64| {
        for _ in 0..8 {
            rec.on_event(&Event::LinOpApplyCompleted {
                op: "csr",
                wall_ns,
                virtual_ns: 0,
            });
        }
        rec.on_event(&Event::SolveCompleted {
            solver: "solver::Cg",
            iterations: 8,
            residual: 1e-12,
            reason: StopReason::ResidualReduction,
        });
    };
    for _ in 0..3 {
        solve(1_000);
    }
    solve(1_000_000);
    assert!(rec.latest().unwrap().anomalies.is_empty(), "withheld once");
    solve(1_000_000);
    let anomalies = rec.latest().unwrap().anomalies;
    assert_eq!(anomalies.len(), 1);
    assert!(matches!(anomalies[0], Anomaly::LatencyDrift { .. }));
    println!("telemetry_probe: detector self-tests OK");
}

fn main() {
    detector_self_tests();

    let grid = if quick_mode() { 120 } else { 600 };
    let gen = poisson2d("poisson2d", grid, grid);
    let (rows, nnz) = (gen.rows, gen.nnz());
    println!("telemetry_probe: poisson2d_{grid} ({rows} rows, {nnz} nnz)");

    // Two pool lanes: enough for labelled per-lane series, few enough that
    // the imbalance bound (max/mean <= lanes) sits below the detector's
    // default threshold even on a single-core host.
    let dev = pg::device_with_id("omp", 2).expect("omp device");
    let m = pg::SparseMatrix::from_triplets(
        &dev,
        (gen.rows, gen.cols),
        &gen.triplets,
        "double",
        "int32",
        "Csr",
    )
    .expect("assemble matrix");
    let solver = pg::solver::cg(&dev, &m, None, 20 * grid, 1e-8)
        .expect("build cg")
        .with_flight_recorder();
    let server = dev
        .executor()
        .serve_telemetry("127.0.0.1:0")
        .expect("start exporter");
    let addr = server.addr();
    println!("telemetry_probe: serving on http://{addr} (try: curl http://{addr}/metrics)");

    let b = pg::as_tensor_fill(&dev, (rows, 1), "double", 1.0).expect("rhs");
    let mut x = pg::as_tensor_fill(&dev, (rows, 1), "double", 0.0).expect("x0");
    let logger = solver.apply(&b, &mut x).expect("solve");
    assert!(
        logger.converged(),
        "reference solve must converge (stopped after {} iterations)",
        logger.iterations()
    );
    println!(
        "telemetry_probe: CG converged in {} iterations (residual {:.3e})",
        logger.iterations(),
        logger.final_residual()
    );

    // --- /metrics ---
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    prom::validate(&metrics).expect("/metrics passes the strict validator");
    let lanes = dev.executor().pool_lane_stats().len();
    assert!(lanes >= 2, "omp pool spun {lanes} lanes");
    for lane in 0..lanes {
        for series in [
            "gko_pool_lane_chunks_total",
            "gko_pool_lane_steals_total",
            "gko_pool_lane_busy_ns_total",
        ] {
            let needle = format!("{series}{{lane=\"{lane}\"}}");
            assert!(metrics.contains(&needle), "missing {needle}");
        }
    }
    assert!(metrics.contains("gko_solves_total 1"), "solve counted");
    assert!(
        !metrics.contains("gko_anomalies_total{"),
        "healthy solve produced anomaly samples:\n{metrics}"
    );
    println!("telemetry_probe: /metrics OK ({} lanes labelled)", lanes);

    // --- /healthz ---
    let (status, health) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let health = Config::from_json(&health).expect("/healthz is valid JSON");
    assert_eq!(health.get("status").and_then(Config::as_str), Some("ok"));
    let flight = health.get("flight_recorder").expect("flight_recorder key");
    assert!(matches!(flight.get("enabled"), Some(Config::Bool(true))));
    assert_eq!(flight.get("anomalies").and_then(Config::as_int), Some(0));
    println!("telemetry_probe: /healthz OK");

    // --- /runs ---
    let (status, runs) = http_get(addr, "/runs");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let doc = Config::from_json(&runs).expect("/runs is valid JSON");
    let reports = doc
        .get("reports")
        .and_then(Config::as_array)
        .expect("reports array");
    assert_eq!(reports.len(), 1, "exactly the probe's solve");
    let report = &reports[0];
    assert!(matches!(report.get("converged"), Some(Config::Bool(true))));
    assert!(report
        .get("anomalies")
        .and_then(Config::as_array)
        .expect("anomalies array")
        .is_empty());
    let matrix = report.get("matrix").expect("annotated with the system");
    assert_eq!(
        matrix.get("nnz").and_then(Config::as_int),
        Some(nnz as i64)
    );
    assert!(!report
        .get("kernels")
        .and_then(Config::as_array)
        .expect("kernels array")
        .is_empty());

    // The facade sees the same report.
    let facade_report = solver.flight_report().expect("facade report");
    assert!(facade_report.converged && facade_report.anomalies.is_empty());
    println!("telemetry_probe: /runs OK (zero-anomaly report)");

    server.shutdown();
    assert!(
        TcpStream::connect(addr).is_err(),
        "port must stop accepting after shutdown"
    );
    println!("telemetry_probe: shutdown clean — all checks passed");
}
