//! §6.2.2: CPU solver comparison — pyGinkgo (32 threads) vs SciPy (1 core),
//! time per iteration for CG, CGS, and GMRES(30), double precision, on the
//! solver suite. The paper reports pyGinkgo 3–8x faster for CG with similar
//! results for CGS and GMRES.
//!
//! `cargo run -p pygko-bench --bin solver_cpu --release`

use gko::linop::LinOp;
use gko::matrix::{Csr, Dense};
use gko::solver::{Cg, Cgs, Gmres};
use gko::stop::Criteria;
use gko::{Dim2, Executor};
use pygko_baselines::scipy::scipy_solver;
use pygko_baselines::scipy_executor;
use pygko_bench::{cast_triplets, fmt, maybe_shrink, solver_iters, Report};
use pygko_matgen::solver_suite;
use std::sync::Arc;

fn run<V: gko::Value>(exec: &Executor, solver: &dyn LinOp<V>, n: usize, iters: usize) -> f64 {
    let b = Dense::<V>::filled(exec, Dim2::new(n, 1), V::one());
    let mut x = Dense::<V>::zeros(exec, Dim2::new(n, 1));
    let t0 = exec.timeline().snapshot();
    solver.apply(&b, &mut x).unwrap();
    exec.timeline().snapshot().since(&t0).seconds() / iters as f64
}

fn main() {
    let iters = solver_iters();
    let mut report = Report::new(
        "Section 6.2.2: solver time/iteration speedup vs SciPy on CPU, fp64",
        &["matrix", "nnz", "CG x", "CGS x", "GMRES x"],
    );

    let mut rows: Vec<(usize, Vec<String>)> = Vec::new();
    let mut cg_speedups = Vec::new();

    for info in maybe_shrink(solver_suite()) {
        let gen = info.generate();
        let n = gen.rows;
        let nnz = gen.nnz();
        let t64 = cast_triplets::<f64>(&gen);
        let dim = Dim2::new(n, n);
        let criteria = Criteria::iterations(iters);

        // pyGinkgo on 32 threads.
        let omp = Executor::omp(32);
        let a = Arc::new(Csr::<f64, i32>::from_triplets(&omp, dim, &t64).unwrap());

        let s = Cg::new(a.clone() as Arc<dyn LinOp<f64>>).unwrap().with_criteria(criteria);
        let gko_cg = run(&omp, &s, n, iters);
        let s = Cgs::new(a.clone() as Arc<dyn LinOp<f64>>).unwrap().with_criteria(criteria);
        let gko_cgs = run(&omp, &s, n, iters);
        let s = Gmres::new(a.clone() as Arc<dyn LinOp<f64>>)
            .unwrap()
            .with_krylov_dim(30)
            .with_criteria(criteria);
        let gko_gmres = run(&omp, &s, n, iters);

        // SciPy on one core.
        let sp = scipy_executor();
        let a_sp = Arc::new(Csr::<f64, i32>::from_triplets(&sp, dim, &t64).unwrap());
        let (s, _) = scipy_solver(a_sp.clone(), "cg", iters).unwrap();
        let scipy_cg = run(&sp, &*s, n, iters);
        let (s, _) = scipy_solver(a_sp.clone(), "cgs", iters).unwrap();
        let scipy_cgs = run(&sp, &*s, n, iters);
        let (s, _) = scipy_solver(a_sp, "gmres", iters).unwrap();
        let scipy_gmres = run(&sp, &*s, n, iters);

        cg_speedups.push(scipy_cg / gko_cg);
        rows.push((
            nnz,
            vec![
                gen.name.clone(),
                nnz.to_string(),
                fmt(scipy_cg / gko_cg),
                fmt(scipy_cgs / gko_cgs),
                fmt(scipy_gmres / gko_gmres),
            ],
        ));
    }

    rows.sort_by_key(|(nnz, _)| *nnz);
    for (_, row) in rows {
        report.row(row);
    }
    report.print();
    report.write_csv("solver_cpu").expect("csv");

    cg_speedups.sort_by(f64::total_cmp);
    println!(
        "\npaper: pyGinkgo 3-8x faster than SciPy for CG (similar for CGS/GMRES)"
    );
    println!(
        "measured CG speedup range: {:.1}x .. {:.1}x (median {:.1}x)",
        cg_speedups.first().unwrap(),
        cg_speedups.last().unwrap(),
        cg_speedups[cg_speedups.len() / 2]
    );
}
