//! Figure 3a: SpMV on the (simulated) NVIDIA A100 — speedup of pyGinkgo,
//! PyTorch, TensorFlow, and CuPy relative to SciPy on one CPU core, over the
//! 30-matrix SpMV suite, single precision, ordered by nonzero count.
//!
//! `cargo run -p pygko-bench --bin fig3a_spmv_gpu --release`

use gko::matrix::{Coo, Csr};
use gko::Dim2;
use pygko_baselines::cupy::CupyCsr;
use pygko_baselines::scipy::ScipyCsr;
use pygko_baselines::tf::TfCoo;
use pygko_baselines::torch::TorchCsr;
use pygko_baselines::{gpu_executor, scipy_executor};
use pygko_bench::{cast_triplets, fmt, gflops, maybe_shrink, time_spmv, Report};
use pygko_matgen::spmv_suite;
use std::sync::Arc;

fn main() {
    let mut report = Report::new(
        "Figure 3a: GPU SpMV speedup vs SciPy (1 core), fp32, by NNZ",
        &[
            "matrix",
            "nnz",
            "scipy GF/s",
            "pyGinkgo x",
            "PyTorch x",
            "TensorFlow x",
            "CuPy x",
            "pyGinkgo GF/s",
            "PyTorch GF/s",
            "TF GF/s",
            "CuPy GF/s",
        ],
    );

    let mut rows: Vec<(usize, Vec<String>)> = Vec::new();
    let mut peaks = [0.0f64; 4]; // pyginkgo, torch, tf, cupy

    for info in maybe_shrink(spmv_suite()) {
        let gen = info.generate();
        let n = gen.rows;
        let nnz = gen.nnz();
        let t32 = cast_triplets::<f32>(&gen);
        let dim = Dim2::new(gen.rows, gen.cols);

        // Baseline: SciPy on one core.
        let sp_exec = scipy_executor();
        let scipy = ScipyCsr::new(Arc::new(
            Csr::<f32, i32>::from_triplets(&sp_exec, dim, &t32).unwrap(),
        ));
        let t_scipy = time_spmv(&sp_exec, &scipy, n);

        // pyGinkgo through the facade (includes binding overhead).
        let dev = pyginkgo::device("cuda").unwrap();
        let m = pyginkgo::SparseMatrix::from_triplets(
            &dev,
            (gen.rows, gen.cols),
            &gen.triplets,
            "float",
            "int32",
            "Csr",
        )
        .unwrap();
        let b = pyginkgo::as_tensor_fill(&dev, (n, 1), "float", 1.0).unwrap();
        let t0 = dev.executor().timeline().snapshot();
        let _ = m.spmv(&b).unwrap();
        let t_pygko = dev.executor().timeline().snapshot().since(&t0).seconds();

        // PyTorch (CSR is its best-performing format here).
        let to_exec = gpu_executor("PyTorch");
        let torch = TorchCsr::new(Arc::new(
            Csr::<f32, i32>::from_triplets(&to_exec, dim, &t32).unwrap(),
        ));
        let t_torch = time_spmv(&to_exec, &torch, n);

        // TensorFlow (COO only).
        let tf_exec = gpu_executor("TensorFlow");
        let tf = TfCoo::new(Arc::new(
            Coo::<f32, i32>::from_triplets(&tf_exec, dim, &t32).unwrap(),
        ));
        let t_tf = time_spmv(&tf_exec, &tf, n);

        // CuPy (cuSPARSE CSR).
        let cu_exec = gpu_executor("CuPy");
        let cupy = CupyCsr::new(Arc::new(
            Csr::<f32, i32>::from_triplets(&cu_exec, dim, &t32).unwrap(),
        ));
        let t_cupy = time_spmv(&cu_exec, &cupy, n);

        let gf = [
            gflops(nnz, t_pygko),
            gflops(nnz, t_torch),
            gflops(nnz, t_tf),
            gflops(nnz, t_cupy),
        ];
        for (p, g) in peaks.iter_mut().zip(gf) {
            *p = p.max(g);
        }

        rows.push((
            nnz,
            vec![
                gen.name.clone(),
                nnz.to_string(),
                fmt(gflops(nnz, t_scipy)),
                fmt(t_scipy / t_pygko),
                fmt(t_scipy / t_torch),
                fmt(t_scipy / t_tf),
                fmt(t_scipy / t_cupy),
                fmt(gf[0]),
                fmt(gf[1]),
                fmt(gf[2]),
                fmt(gf[3]),
            ],
        ));
    }

    rows.sort_by_key(|(nnz, _)| *nnz);
    for (_, row) in rows {
        report.row(row);
    }
    report.print();
    report.write_csv("fig3a_spmv_gpu").expect("csv");

    println!("\npeak GFLOP/s   paper: pyGinkgo ~150, PyTorch ~110, CuPy ~85, TensorFlow ~50");
    println!(
        "           measured: pyGinkgo {:.0}, PyTorch {:.0}, CuPy {:.0}, TensorFlow {:.0}",
        peaks[0], peaks[1], peaks[3], peaks[2]
    );
}
