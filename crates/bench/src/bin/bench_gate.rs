//! Benchmark regression gate: diffs `results/BENCH_spmv.json` against the
//! committed `results/BASELINE_spmv.json` and exits nonzero on slowdown.
//!
//! Both files are written by `spmv_formats` (virtual-time fields are
//! deterministic, so an honest rerun reproduces the baseline exactly) and
//! parsed back with the engine's own JSON parser. Every baseline record,
//! keyed by `(matrix, format, strategy, executor)`, must be present in the
//! candidate and satisfy
//!
//! ```text
//! candidate.virtual_seconds <= tolerance * baseline.virtual_seconds
//! ```
//!
//! and the same band is applied to each kernel's `virtual_p99_ns` in the
//! per-executor metrics sections, and to the `plan_build_ns` /
//! `apply_reused_ns` / `apply_rebuilt_ns` columns of the plan-reuse
//! ablation when the baseline carries them. The `trace_overhead` section's
//! wall-clock rows (inert/armed ns-per-iteration and their ratio) compare
//! under the separate `BENCH_GATE_TRACE_TOLERANCE` band. Missing records
//! fail the gate, so a format or executor silently dropped from the sweep
//! is caught too.
//!
//! The gate also refuses a candidate whose per-executor metrics carry a
//! nonzero `anomalies_total` — a sweep that tripped a flight-recorder
//! detector is not a clean benchmark run. Baselines written before that
//! field existed stay comparable (only candidate values are inspected).
//!
//! When any row regresses and both sides carry a folded flame profile
//! (the candidate's `profiles_folded` section and the committed
//! `results/BASELINE_profile.json`), the gate performs differential
//! attribution: per-span-path self-time deltas, ranked, the top 3 printed
//! as `ATTRIBUTED <path> +41%` lines — naming the offending code path
//! instead of leaving a bare ratio. Attribution is advisory (wall-clock
//! self times are noisy); it never changes the exit code by itself.
//!
//! Environment knobs:
//!
//! * `BENCH_GATE_TOLERANCE` — allowed slowdown ratio (default 1.25). The
//!   virtual clock is deterministic, but the band leaves room for honest
//!   cost-model retuning; raise it deliberately when the model changes.
//! * `BENCH_GATE_TRACE_TOLERANCE` — allowed slowdown ratio for the
//!   `trace_overhead` rows (default 5.0). Those are wall-clock figures —
//!   the tracing overhead being measured is real work the virtual clock
//!   cannot see — so the band is deliberately generous; its job is to
//!   catch the inert tracing path growing from "one relaxed load" into
//!   something structural, not scheduler noise.
//! * `BENCH_GATE_INJECT` — multiplies every candidate timing, simulating a
//!   uniform slowdown. `BENCH_GATE_INJECT=2.0` must make the gate fail —
//!   `scripts/check_bench.sh` uses this as a self-test of the gate itself.
//! * `PROFILE_INJECT` — multiplies the candidate's folded-profile self
//!   time by 100 for every span path containing the given substring,
//!   simulating one kernel going 100x slow. `PROFILE_INJECT=csr` must
//!   surface a csr path as the top attributed regression —
//!   `scripts/check_profile.sh` uses this as a self-test of attribution.
//!
//! Usage: `bench_gate [baseline.json [candidate.json [baseline_profile.json]]]`
//! (all default to the `results/` directory).

use gko::config::Config;
use pygko_bench::results_dir;
use std::path::PathBuf;

/// One comparable timing: identity key, baseline value, candidate value.
struct Check {
    key: String,
    metric: &'static str,
    baseline: f64,
    candidate: f64,
}

fn env_f64(name: &str, default: f64) -> f64 {
    match std::env::var(name) {
        Err(_) => default,
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bench_gate: bad {name}='{v}' (expected a number)");
            std::process::exit(2);
        }),
    }
}

fn load(path: &PathBuf) -> Config {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: cannot read {}: {e}", path.display());
        std::process::exit(2);
    });
    Config::from_json(&text).unwrap_or_else(|e| {
        eprintln!("bench_gate: {} is not valid JSON: {e}", path.display());
        std::process::exit(2);
    })
}

fn str_field(c: &Config, key: &str) -> String {
    c.get(key)
        .and_then(Config::as_str)
        .unwrap_or_default()
        .to_string()
}

/// Flattens a document into `(key, metric, value)` rows: one
/// `virtual_seconds` per timing record and one `virtual_p99_ns` per
/// (executor, kernel) metrics entry.
fn flatten(doc: &Config) -> Vec<(String, &'static str, f64)> {
    let mut rows = Vec::new();
    for r in doc.get("records").and_then(Config::as_array).unwrap_or(&[]) {
        let key = format!(
            "{}/{}/{}/{}",
            str_field(r, "matrix"),
            str_field(r, "format"),
            str_field(r, "strategy"),
            str_field(r, "executor"),
        );
        if let Some(secs) = r.get("virtual_seconds").and_then(Config::as_float) {
            rows.push((key, "virtual_seconds", secs));
        }
    }
    for m in doc.get("metrics").and_then(Config::as_array).unwrap_or(&[]) {
        let exec = str_field(m, "executor");
        for k in m.get("kernels").and_then(Config::as_array).unwrap_or(&[]) {
            let key = format!("metrics/{exec}/{}", str_field(k, "op"));
            if let Some(p99) = k.get("virtual_p99_ns").and_then(Config::as_float) {
                rows.push((key, "virtual_p99_ns", p99));
            }
        }
    }
    // Plan-reuse ablation (absent from baselines predating the plan cache;
    // comparisons are baseline-driven, so old files stay fully comparable).
    if let Some(p) = doc.get("plan_ablation") {
        let key = format!(
            "plan_ablation/{}/{}/{}/{}",
            str_field(p, "matrix"),
            str_field(p, "format"),
            str_field(p, "strategy"),
            str_field(p, "executor"),
        );
        for metric in ["plan_build_ns", "apply_reused_ns", "apply_rebuilt_ns"] {
            if let Some(v) = p.get(metric).and_then(Config::as_float) {
                rows.push((key.clone(), metric, v));
            }
        }
    }
    // Batched-solver section (absent from baselines predating batched
    // formats; comparisons are baseline-driven, so old files stay fully
    // comparable).
    if let Some(b) = doc.get("batched") {
        let key = format!(
            "batched/{}/{}",
            str_field(b, "matrix"),
            str_field(b, "executor"),
        );
        for metric in ["per_system_batched_ns", "per_system_loop_ns"] {
            if let Some(v) = b.get(metric).and_then(Config::as_float) {
                rows.push((key.clone(), metric, v));
            }
        }
    }
    // Trace-overhead section (absent from baselines predating span tracing;
    // comparisons are baseline-driven, so old files stay fully comparable).
    // These rows are wall-clock and compare under the dedicated trace band.
    if let Some(t) = doc.get("trace_overhead") {
        let key = format!(
            "trace_overhead/{}/{}/{}/{}",
            str_field(t, "matrix"),
            str_field(t, "format"),
            str_field(t, "strategy"),
            str_field(t, "executor"),
        );
        for metric in [
            "inert_wall_ns_per_iter",
            "armed_wall_ns_per_iter",
            "profiled_wall_ns_per_iter",
            "armed_over_inert",
            "profiled_over_inert",
        ] {
            if let Some(v) = t.get(metric).and_then(Config::as_float) {
                rows.push((key.clone(), metric, v));
            }
        }
    }
    rows
}

/// True for rows compared under `BENCH_GATE_TRACE_TOLERANCE` instead of the
/// main band: the wall-clock trace/profile-overhead figures.
fn is_trace_metric(metric: &str) -> bool {
    matches!(
        metric,
        "inert_wall_ns_per_iter"
            | "armed_wall_ns_per_iter"
            | "profiled_wall_ns_per_iter"
            | "armed_over_inert"
            | "profiled_over_inert"
    )
}

/// Extracts a document's folded flame profile as `(path, self_wall_ns)`
/// rows, or an empty list when the section is absent.
fn folded_paths(doc: &Config) -> Vec<(String, f64)> {
    let Some(Config::Map(paths)) = doc
        .get("profiles_folded")
        .and_then(|p| p.get("paths"))
    else {
        return Vec::new();
    };
    paths
        .iter()
        .filter_map(|(path, v)| v.as_float().map(|ns| (path.clone(), ns)))
        .collect()
}

/// Differential attribution: per-path self-time growth of the candidate
/// profile over the baseline profile, worst first. Paths new in the
/// candidate rank by absolute self time (no baseline to divide by); paths
/// that vanished are ignored — a kernel that stopped running cannot be the
/// regression.
fn attribute(base: &[(String, f64)], cand: &[(String, f64)]) -> Vec<(String, f64, f64, f64)> {
    let mut rows: Vec<(String, f64, f64, f64)> = cand
        .iter()
        .map(|(path, c)| {
            let b = base
                .iter()
                .find(|(p, _)| p == path)
                .map(|&(_, v)| v)
                .unwrap_or(0.0);
            let delta_pct = if b > 0.0 {
                (c - b) / b * 100.0
            } else {
                f64::INFINITY
            };
            (path.clone(), b, *c, delta_pct)
        })
        .collect();
    rows.sort_by(|a, b| {
        b.3.partial_cmp(&a.3)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                (b.2 - b.1)
                    .partial_cmp(&(a.2 - a.1))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.0.cmp(&b.0))
    });
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let baseline_path = args
        .get(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("BASELINE_spmv.json"));
    let candidate_path = args
        .get(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("BENCH_spmv.json"));
    let profile_baseline_path = args
        .get(3)
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("BASELINE_profile.json"));
    let tolerance = env_f64("BENCH_GATE_TOLERANCE", 1.25);
    let trace_tolerance = env_f64("BENCH_GATE_TRACE_TOLERANCE", 5.0);
    let inject = env_f64("BENCH_GATE_INJECT", 1.0);
    let profile_inject = std::env::var("PROFILE_INJECT").ok();

    println!(
        "bench_gate: {} vs {} (tolerance {tolerance}x, trace {trace_tolerance}x{})",
        candidate_path.display(),
        baseline_path.display(),
        if inject != 1.0 {
            format!(", injected slowdown {inject}x")
        } else {
            String::new()
        }
    );

    let baseline = flatten(&load(&baseline_path));
    let candidate_doc = load(&candidate_path);
    let candidate = flatten(&candidate_doc);
    if baseline.is_empty() {
        eprintln!("bench_gate: baseline has no comparable rows");
        std::process::exit(2);
    }

    // Flight-recorder verdict: a candidate executor section with a nonzero
    // anomaly count fails the gate outright.
    let mut anomalous: Vec<String> = Vec::new();
    for m in candidate_doc
        .get("metrics")
        .and_then(Config::as_array)
        .unwrap_or(&[])
    {
        let n = m
            .get("anomalies_total")
            .and_then(Config::as_int)
            .unwrap_or(0);
        if n > 0 {
            anomalous.push(format!("{} ({n} anomalies)", str_field(m, "executor")));
        }
    }
    if let Some(b) = candidate_doc.get("batched") {
        let n = b
            .get("anomalies_total")
            .and_then(Config::as_int)
            .unwrap_or(0);
        if n > 0 {
            anomalous.push(format!("batched sweep ({n} anomalies)"));
        }
    }

    let mut checks: Vec<Check> = Vec::new();
    let mut missing: Vec<String> = Vec::new();
    for (key, metric, base) in baseline {
        match candidate
            .iter()
            .find(|(k, m, _)| *k == key && *m == metric)
        {
            None => missing.push(format!("{key} [{metric}]")),
            Some(&(_, _, cand)) => checks.push(Check {
                key,
                metric,
                baseline: base,
                candidate: cand * inject,
            }),
        }
    }

    let mut regressions: Vec<&Check> = Vec::new();
    for c in &checks {
        // A zero baseline (e.g. the reference executor's pool counters)
        // only requires the candidate to stay zero-ish within tolerance of
        // nothing: treat any positive candidate against a zero baseline as
        // equal — those rows carry no timing signal.
        let band = if is_trace_metric(c.metric) {
            trace_tolerance
        } else {
            tolerance
        };
        let ok = if c.baseline == 0.0 {
            true
        } else {
            c.candidate <= band * c.baseline
        };
        if !ok {
            regressions.push(c);
        }
    }

    println!(
        "bench_gate: {} rows compared, {} missing, {} regressed, {} anomalous",
        checks.len(),
        missing.len(),
        regressions.len(),
        anomalous.len()
    );
    for m in &missing {
        eprintln!("  MISSING   {m}");
    }
    for c in &regressions {
        let band = if is_trace_metric(c.metric) {
            trace_tolerance
        } else {
            tolerance
        };
        eprintln!(
            "  REGRESSED {} [{}]: {:.3e} -> {:.3e} ({:.2}x > {band}x allowed)",
            c.key,
            c.metric,
            c.baseline,
            c.candidate,
            c.candidate / c.baseline
        );
    }
    for a in &anomalous {
        eprintln!("  ANOMALOUS {a}");
    }

    // Differential attribution: once something regressed, name the span
    // paths whose self time grew the most. Advisory only — wall-clock self
    // times are noisy, so attribution ranks but never gates.
    if !regressions.is_empty() || !missing.is_empty() {
        let base_profile = std::fs::read_to_string(&profile_baseline_path)
            .ok()
            .and_then(|t| Config::from_json(&t).ok())
            .map(|doc| folded_paths(&doc))
            .unwrap_or_default();
        let mut cand_profile = folded_paths(&candidate_doc);
        if let Some(needle) = &profile_inject {
            for (path, ns) in cand_profile.iter_mut() {
                if path.contains(needle.as_str()) {
                    *ns *= 100.0;
                }
            }
        }
        if base_profile.is_empty() || cand_profile.is_empty() {
            eprintln!(
                "  (no differential attribution: profile baseline {} or candidate \
                 profiles_folded section missing)",
                profile_baseline_path.display()
            );
        } else {
            eprintln!("  top regressed span paths (self-time vs profile baseline):");
            for (path, base_ns, cand_ns, delta_pct) in
                attribute(&base_profile, &cand_profile).into_iter().take(3)
            {
                if delta_pct.is_finite() {
                    eprintln!(
                        "  ATTRIBUTED {path} {}{:.0}% ({:.3e} -> {:.3e} ns)",
                        if delta_pct >= 0.0 { "+" } else { "" },
                        delta_pct,
                        base_ns,
                        cand_ns
                    );
                } else {
                    eprintln!("  ATTRIBUTED {path} new ({cand_ns:.3e} ns, no baseline)");
                }
            }
        }
    }

    if !missing.is_empty() || !regressions.is_empty() || !anomalous.is_empty() {
        std::process::exit(1);
    }
    println!("bench_gate: OK");
}
