//! Wall-clock microbenchmarks of the real SpMV kernels.
//!
//! These measure actual host execution time (unlike the figure harnesses,
//! which report deterministic virtual time) and exist for regression
//! tracking of the kernels themselves. Successor of the former criterion
//! bench of the same scope, as a plain binary so the workspace builds with
//! no external dev-dependencies.
//!
//! `cargo run --release -p pygko-bench --bin micro_spmv`

use gko::linop::LinOp;
use gko::matrix::{Coo, Csr, Dense, Ell, Sellp, SpmvStrategy};
use gko::{Dim2, Executor, Value};
use pygko_bench::{fmt, micro_iters, wall_secs, Report};
use pygko_matgen::generators::{circuit, poisson2d};

fn bench_formats(report: &mut Report) {
    let exec = Executor::reference();
    let gen = poisson2d("p", 200, 200);
    let t: Vec<(usize, usize, f64)> = gen.triplets.clone();
    let dim = Dim2::new(gen.rows, gen.cols);
    let csr = Csr::<f64, i32>::from_triplets(&exec, dim, &t).unwrap();
    let coo = Coo::from_csr(&csr);
    let ell = Ell::from_csr(&csr);
    let sellp = Sellp::from_csr(&csr);
    let b = Dense::<f64>::vector(&exec, gen.cols, 1.0);
    let mut x = Dense::zeros(&exec, Dim2::new(gen.rows, 1));

    let iters = micro_iters(50);
    let ops: [(&str, &dyn LinOp<f64>); 4] =
        [("csr", &csr), ("coo", &coo), ("ell", &ell), ("sellp", &sellp)];
    for (name, op) in ops {
        let secs = wall_secs(iters, || op.apply(&b, &mut x).unwrap());
        report.row(vec![
            "formats_poisson2d_200".into(),
            name.into(),
            gen.nnz().to_string(),
            fmt(secs * 1e6),
            fmt(gen.nnz() as f64 / secs / 1e6),
        ]);
    }
}

fn bench_strategies(report: &mut Report) {
    let exec = Executor::reference();
    let gen = circuit("c", 50_000, 4, 3, 9);
    let dim = Dim2::new(gen.rows, gen.cols);
    let b = Dense::<f64>::vector(&exec, gen.cols, 1.0);
    let mut x = Dense::zeros(&exec, Dim2::new(gen.rows, 1));

    let iters = micro_iters(30);
    for (name, strategy) in [
        ("classical", SpmvStrategy::Classical),
        ("load_balance", SpmvStrategy::LoadBalance),
    ] {
        let a = Csr::<f64, i32>::from_triplets(&exec, dim, &gen.triplets)
            .unwrap()
            .with_strategy(strategy);
        let secs = wall_secs(iters, || a.apply(&b, &mut x).unwrap());
        report.row(vec![
            "strategy_circuit_50k".into(),
            name.into(),
            gen.nnz().to_string(),
            fmt(secs * 1e6),
            fmt(gen.nnz() as f64 / secs / 1e6),
        ]);
    }
}

fn bench_value_types(report: &mut Report) {
    let exec = Executor::reference();
    let gen = poisson2d("p", 150, 150);
    let dim = Dim2::new(gen.rows, gen.cols);
    let iters = micro_iters(50);

    macro_rules! run {
        ($v:ty, $name:expr) => {{
            let t: Vec<(usize, usize, $v)> = gen
                .triplets
                .iter()
                .map(|&(r, c, v)| (r, c, <$v as Value>::from_f64(v)))
                .collect();
            let a = Csr::<$v, i32>::from_triplets(&exec, dim, &t).unwrap();
            let b = Dense::<$v>::filled(&exec, Dim2::new(gen.cols, 1), <$v as Value>::one());
            let mut x = Dense::<$v>::zeros(&exec, Dim2::new(gen.rows, 1));
            let secs = wall_secs(iters, || a.apply(&b, &mut x).unwrap());
            report.row(vec![
                "value_types_poisson2d_150".into(),
                $name.into(),
                gen.nnz().to_string(),
                fmt(secs * 1e6),
                fmt(gen.nnz() as f64 / secs / 1e6),
            ]);
        }};
    }
    run!(pygko_half::Half, "half");
    run!(f32, "float");
    run!(f64, "double");
}

fn main() {
    let mut report = Report::new(
        "SpMV wall-clock microbenchmarks",
        &["group", "case", "nnz", "us/op", "Mnnz/s"],
    );
    bench_formats(&mut report);
    bench_strategies(&mut report);
    bench_value_types(&mut report);
    report.print();
    let path = report.write_csv("micro_spmv").expect("write csv");
    println!("\nwrote {}", path.display());
}
