//! Table 1: the supported value and index types, verified by actually
//! running an SpMV through every pre-instantiated combination.
//!
//! `cargo run -p pygko-bench --bin tab1_types --release`

use pygko_bench::Report;
use pyginkgo as pg;

fn main() {
    // Paper Table 1.
    let mut table = Report::new(
        "Table 1: available data and index types",
        &["Size (bytes)", "Value Type", "Index Type"],
    );
    table.row(vec!["2".into(), "half".into(), "".into()]);
    table.row(vec!["4".into(), "float".into(), "int32".into()]);
    table.row(vec!["8".into(), "double".into(), "int64".into()]);
    table.print();
    table.write_csv("tab1_types").expect("csv");

    // Exhaustive functional check of the cross product, through the facade.
    let dev = pg::device("cuda").expect("device");
    let mut checks = Report::new(
        "verification: every (format, value, index) instantiation runs SpMV",
        &["binding", "shape", "nnz", "result[0]", "status"],
    );
    let triplets = vec![(0usize, 0usize, 2.0f64), (1, 0, 1.0), (1, 1, 3.0)];
    for format in ["Csr", "Coo"] {
        for dtype in ["half", "float", "double"] {
            for itype in ["int32", "int64"] {
                let m = pg::SparseMatrix::from_triplets(
                    &dev, (2, 2), &triplets, dtype, itype, format,
                )
                .expect("construct");
                let b = pg::as_tensor_fill(&dev, (2, 1), dtype, 1.0).expect("tensor");
                let x = m.spmv(&b).expect("spmv");
                let ok = (x.get(0, 0).unwrap() - 2.0).abs() < 1e-2
                    && (x.get(1, 0).unwrap() - 4.0).abs() < 1e-2;
                checks.row(vec![
                    m.binding_name("spmv"),
                    format!("{:?}", m.shape()),
                    m.nnz().to_string(),
                    format!("{}", x.get(0, 0).unwrap()),
                    if ok { "ok".into() } else { "WRONG".into() },
                ]);
                assert!(ok, "{} produced a wrong result", m.binding_name("spmv"));
            }
        }
    }
    checks.print();
    checks.write_csv("tab1_verification").expect("csv");
    println!(
        "\nregistry: {} pre-instantiated bindings available",
        pg::dispatch::registry().len()
    );
}
