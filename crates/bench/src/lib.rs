//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md`'s per-experiment index): it materializes the relevant
//! matrix suite, runs the kernels, reads the deterministic virtual-time
//! clocks, prints an aligned text table, and writes a CSV to `results/`.
//!
//! Environment knobs:
//!
//! * `PYGKO_BENCH_QUICK=1` — shrink suites to their smaller members for a
//!   fast smoke run (used by CI-style validation).
//! * `PYGKO_SOLVER_ITERS` — iterations for the fixed-iteration solver
//!   benchmarks (default 200; the paper used 1000 — the metric is time per
//!   iteration, so the count only affects noise, which we do not have).
//! * `PYGKO_RESULTS_DIR` — redirect all benchmark output files away from the
//!   committed `results/` directory (used by `scripts/verify.sh` smoke runs).

#![warn(missing_docs)]

use gko::linop::LinOp;
use gko::matrix::Dense;
use gko::{Dim2, Executor, Value};
use pygko_matgen::{GeneratedMatrix, MatrixInfo};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;

/// True when a quick (reduced-size) run was requested.
pub fn quick_mode() -> bool {
    std::env::var("PYGKO_BENCH_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Iteration count for fixed-iteration solver benches.
///
/// The paper runs 1000 iterations; the reported metric is *time per
/// iteration*, which in this deterministic simulation is independent of the
/// count, so the default is a faster 100. Set `PYGKO_SOLVER_ITERS=1000` to
/// match the paper exactly.
pub fn solver_iters() -> usize {
    std::env::var("PYGKO_SOLVER_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// Filters a suite down for quick mode (keeps every third matrix).
pub fn maybe_shrink(suite: Vec<MatrixInfo>) -> Vec<MatrixInfo> {
    if quick_mode() {
        suite.into_iter().step_by(3).collect()
    } else {
        suite
    }
}

/// Converts a generated matrix's triplets to value type `V`.
pub fn cast_triplets<V: Value>(m: &GeneratedMatrix) -> Vec<(usize, usize, V)> {
    m.triplets
        .iter()
        .map(|&(r, c, v)| (r, c, V::from_f64(v)))
        .collect()
}

/// Runs one SpMV through any engine-level operator and returns the virtual
/// seconds it charged to `exec`.
pub fn time_spmv<V: Value>(exec: &Executor, op: &dyn LinOp<V>, n_cols: usize) -> f64 {
    let b = Dense::<V>::filled(exec, Dim2::new(n_cols, 1), V::one());
    let mut x = Dense::<V>::zeros(exec, Dim2::new(op.size().rows, 1));
    let t0 = exec.timeline().snapshot();
    op.apply(&b, &mut x).expect("spmv");
    exec.synchronize();
    exec.timeline().snapshot().since(&t0).seconds()
}

/// GFLOP/s of an SpMV given its nonzero count and virtual seconds.
pub fn gflops(nnz: usize, seconds: f64) -> f64 {
    2.0 * nnz as f64 / seconds / 1e9
}

/// Mean wall-clock seconds per call of `f` over `iters` calls, after one
/// warm-up call. Used by the `micro_*` binaries, which measure real host
/// time of the real kernels (unlike the figure harnesses, which report
/// deterministic virtual time).
pub fn wall_secs(iters: usize, mut f: impl FnMut()) -> f64 {
    assert!(iters > 0, "need at least one timed iteration");
    f();
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

/// Iteration count for the wall-clock micro benches (reduced in quick mode).
pub fn micro_iters(full: usize) -> usize {
    if quick_mode() {
        (full / 10).max(1)
    } else {
        full
    }
}

/// An output table streamed to stdout and a CSV file.
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Report {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Prints the aligned table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n=== {} ===", self.title);
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ");
        }
        println!("{line}");
        println!("{}", "-".repeat(line.len().min(160)));
        for row in &self.rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            println!("{line}");
        }
    }

    /// Writes the table as CSV under `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// The directory benchmark outputs are written to: `PYGKO_RESULTS_DIR` when
/// set (smoke runs point it at a scratch directory so they never clobber the
/// committed `results/`), otherwise the workspace `results/` directory.
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("PYGKO_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Formats a float with engineering-friendly precision.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrip() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        r.print();
        let path = r.write_csv("unit_test_report").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn results_dir_honors_env_override() {
        // Env vars are process-global: take care to restore.
        let prev = std::env::var_os("PYGKO_RESULTS_DIR");
        std::env::set_var("PYGKO_RESULTS_DIR", "/tmp/pygko-results-test");
        let dir = results_dir();
        match prev {
            Some(v) => std::env::set_var("PYGKO_RESULTS_DIR", v),
            None => std::env::remove_var("PYGKO_RESULTS_DIR"),
        }
        assert_eq!(dir, PathBuf::from("/tmp/pygko-results-test"));
    }

    #[test]
    fn gflops_math() {
        assert_eq!(gflops(1_000_000, 2e-3), 1.0);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1.5), "1.500");
        assert!(fmt(1e-5).contains('e'));
        assert!(fmt(123456.0).contains('e'));
    }

    #[test]
    fn time_spmv_returns_positive_virtual_time() {
        let exec = Executor::cuda(0);
        let a = gko::matrix::Csr::<f32, i32>::from_triplets(
            &exec,
            Dim2::square(100),
            &(0..100).map(|i| (i, i, 1.0f32)).collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(time_spmv(&exec, &a, 100) > 0.0);
    }
}
