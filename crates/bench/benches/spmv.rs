//! Criterion wall-clock microbenchmarks of the real SpMV kernels.
//!
//! These measure actual host execution time (unlike the figure harnesses,
//! which report deterministic virtual time) and exist for regression
//! tracking of the kernels themselves.
//!
//! `cargo bench -p pygko-bench --bench spmv`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gko::linop::LinOp;
use gko::matrix::{Coo, Csr, Dense, Ell, Sellp, SpmvStrategy};
use gko::{Dim2, Executor};
use pygko_matgen::generators::{circuit, poisson2d};

fn bench_formats(c: &mut Criterion) {
    let exec = Executor::reference();
    let gen = poisson2d("p", 200, 200);
    let t: Vec<(usize, usize, f64)> = gen.triplets.clone();
    let dim = Dim2::new(gen.rows, gen.cols);
    let csr = Csr::<f64, i32>::from_triplets(&exec, dim, &t).unwrap();
    let coo = Coo::from_csr(&csr);
    let ell = Ell::from_csr(&csr);
    let sellp = Sellp::from_csr(&csr);
    let b = Dense::<f64>::vector(&exec, gen.cols, 1.0);
    let mut x = Dense::zeros(&exec, Dim2::new(gen.rows, 1));

    let mut group = c.benchmark_group("spmv_formats_poisson2d_200");
    group.throughput(Throughput::Elements(gen.nnz() as u64));
    group.bench_function("csr", |bench| bench.iter(|| csr.apply(&b, &mut x).unwrap()));
    group.bench_function("coo", |bench| bench.iter(|| coo.apply(&b, &mut x).unwrap()));
    group.bench_function("ell", |bench| bench.iter(|| ell.apply(&b, &mut x).unwrap()));
    group.bench_function("sellp", |bench| {
        bench.iter(|| sellp.apply(&b, &mut x).unwrap())
    });
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let exec = Executor::reference();
    let gen = circuit("c", 50_000, 4, 3, 9);
    let dim = Dim2::new(gen.rows, gen.cols);
    let b = Dense::<f64>::vector(&exec, gen.cols, 1.0);
    let mut x = Dense::zeros(&exec, Dim2::new(gen.rows, 1));

    let mut group = c.benchmark_group("spmv_strategy_circuit_50k");
    group.throughput(Throughput::Elements(gen.nnz() as u64));
    for (name, strategy) in [
        ("classical", SpmvStrategy::Classical),
        ("load_balance", SpmvStrategy::LoadBalance),
    ] {
        let a = Csr::<f64, i32>::from_triplets(&exec, dim, &gen.triplets)
            .unwrap()
            .with_strategy(strategy);
        group.bench_with_input(BenchmarkId::from_parameter(name), &a, |bench, a| {
            bench.iter(|| a.apply(&b, &mut x).unwrap())
        });
    }
    group.finish();
}

fn bench_value_types(c: &mut Criterion) {
    let exec = Executor::reference();
    let gen = poisson2d("p", 150, 150);
    let dim = Dim2::new(gen.rows, gen.cols);
    let mut group = c.benchmark_group("spmv_value_types_poisson2d_150");
    group.throughput(Throughput::Elements(gen.nnz() as u64));

    macro_rules! run {
        ($v:ty, $name:expr) => {{
            let t: Vec<(usize, usize, $v)> = gen
                .triplets
                .iter()
                .map(|&(r, c, v)| (r, c, <$v as gko::Value>::from_f64(v)))
                .collect();
            let a = Csr::<$v, i32>::from_triplets(&exec, dim, &t).unwrap();
            let b = Dense::<$v>::filled(&exec, Dim2::new(gen.cols, 1), <$v as gko::Value>::one());
            let mut x = Dense::<$v>::zeros(&exec, Dim2::new(gen.rows, 1));
            group.bench_function($name, |bench| bench.iter(|| a.apply(&b, &mut x).unwrap()));
        }};
    }
    run!(pygko_half::Half, "half");
    run!(f32, "float");
    run!(f64, "double");
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_formats, bench_strategies, bench_value_types
}
criterion_main!(benches);
