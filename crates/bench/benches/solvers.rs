//! Criterion wall-clock benchmarks of the solver iterations (real host
//! execution of the real numerics).
//!
//! `cargo bench -p pygko-bench --bench solvers`

use criterion::{criterion_group, criterion_main, Criterion};
use gko::linop::LinOp;
use gko::matrix::{Csr, Dense};
use gko::preconditioner::{Ilu, Jacobi};
use gko::solver::{BiCgStab, Cg, Cgs, Gmres};
use gko::stop::Criteria;
use gko::{Dim2, Executor};
use pygko_matgen::generators::poisson2d;
use std::sync::Arc;

fn setup() -> (Executor, Arc<Csr<f64, i32>>, Dense<f64>) {
    let exec = Executor::reference();
    let gen = poisson2d("p", 60, 60);
    let a = Arc::new(
        Csr::<f64, i32>::from_triplets(&exec, Dim2::new(gen.rows, gen.cols), &gen.triplets)
            .unwrap(),
    );
    let b = Dense::<f64>::vector(&exec, gen.rows, 1.0);
    (exec, a, b)
}

fn bench_krylov_iterations(c: &mut Criterion) {
    let (exec, a, b) = setup();
    let n = a.size().rows;
    let criteria = Criteria::iterations(20);
    let mut group = c.benchmark_group("krylov_20_iterations_poisson2d_60");

    group.bench_function("cg", |bench| {
        let s = Cg::new(a.clone() as Arc<dyn LinOp<f64>>).unwrap().with_criteria(criteria);
        bench.iter(|| {
            let mut x = Dense::<f64>::zeros(&exec, Dim2::new(n, 1));
            s.apply(&b, &mut x).unwrap();
        })
    });
    group.bench_function("cgs", |bench| {
        let s = Cgs::new(a.clone() as Arc<dyn LinOp<f64>>).unwrap().with_criteria(criteria);
        bench.iter(|| {
            let mut x = Dense::<f64>::zeros(&exec, Dim2::new(n, 1));
            s.apply(&b, &mut x).unwrap();
        })
    });
    group.bench_function("bicgstab", |bench| {
        let s = BiCgStab::new(a.clone() as Arc<dyn LinOp<f64>>)
            .unwrap()
            .with_criteria(criteria);
        bench.iter(|| {
            let mut x = Dense::<f64>::zeros(&exec, Dim2::new(n, 1));
            s.apply(&b, &mut x).unwrap();
        })
    });
    group.bench_function("gmres30", |bench| {
        let s = Gmres::new(a.clone() as Arc<dyn LinOp<f64>>)
            .unwrap()
            .with_krylov_dim(30)
            .with_criteria(criteria);
        bench.iter(|| {
            let mut x = Dense::<f64>::zeros(&exec, Dim2::new(n, 1));
            s.apply(&b, &mut x).unwrap();
        })
    });
    group.finish();
}

fn bench_preconditioner_generation(c: &mut Criterion) {
    let (_, a, _) = setup();
    let mut group = c.benchmark_group("preconditioner_generation_poisson2d_60");
    group.bench_function("jacobi", |bench| {
        bench.iter(|| Jacobi::new(&*a).unwrap())
    });
    group.bench_function("ilu0", |bench| bench.iter(|| Ilu::new(&*a).unwrap()));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_krylov_iterations, bench_preconditioner_generation
}
criterion_main!(benches);
