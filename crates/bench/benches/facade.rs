//! Criterion wall-clock benchmarks of the facade's dynamic layer — the
//! real-host-time counterpart of the §6.3 virtual-time overhead study.
//!
//! `cargo bench -p pygko-bench --bench facade`

use criterion::{criterion_group, criterion_main, Criterion};
use gko::linop::LinOp;
use gko::matrix::{Csr, Dense};
use gko::{Dim2, Executor};
use pyginkgo as pg;

fn bench_binding_overhead(c: &mut Criterion) {
    let n = 1000usize;
    let t: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 2.0)).collect();

    // Engine direct.
    let exec = Executor::reference();
    let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
    let b = Dense::<f64>::vector(&exec, n, 1.0);
    let mut x = Dense::zeros(&exec, Dim2::new(n, 1));

    // Facade.
    let dev = pg::device("reference").unwrap();
    let m = pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
    let bt = pg::as_tensor_fill(&dev, (n, 1), "double", 1.0).unwrap();
    let mut xt = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0).unwrap();

    let mut group = c.benchmark_group("binding_overhead_diag1000");
    group.bench_function("engine_spmv", |bench| {
        bench.iter(|| a.apply(&b, &mut x).unwrap())
    });
    group.bench_function("facade_spmv", |bench| {
        bench.iter(|| m.spmv_into(&bt, &mut xt).unwrap())
    });
    group.finish();
}

fn bench_dispatch_layers(c: &mut Criterion) {
    let dev = pg::device("reference").unwrap();
    let mut group = c.benchmark_group("facade_calls");
    group.bench_function("dtype_parse", |bench| {
        bench.iter(|| "float64".parse::<pg::DType>().unwrap())
    });
    group.bench_function("tensor_construct_16", |bench| {
        bench.iter(|| pg::as_tensor_fill(&dev, (16, 1), "double", 1.0).unwrap())
    });
    let t16 = pg::as_tensor_fill(&dev, (16, 1), "double", 1.0).unwrap();
    group.bench_function("tensor_dot_16", |bench| {
        bench.iter(|| t16.dot(&t16).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_binding_overhead, bench_dispatch_layers
}
criterion_main!(benches);
