//! Curated matrix suites with the shapes of the paper's benchmark sets.
//!
//! * [`spmv_suite`] — 30 matrices (the SpMV benchmarks of §6.1), nonzero
//!   counts spanning ~1.5e4 to ~7e6, densities below 1% except five.
//! * [`solver_suite`] — 40 square, solvable matrices (§6.2).
//! * [`overhead_suite`] — 45 matrices for the binding-overhead study (§6.3).
//! * [`representative`] — the six named matrices of Table 2, reproduced by
//!   class with matching dimension and nonzero count.
//!
//! Suites are returned as lazy [`MatrixInfo`] descriptors; call
//! [`MatrixInfo::generate`] to materialize one.

use crate::generators::{
    banded, circuit, convection_diffusion, delaunay, dense_rows, diagonal_mass, poisson2d,
    poisson3d, rmat, GeneratedMatrix,
};

/// Lazy descriptor of one collection matrix.
#[derive(Clone, Debug)]
pub struct MatrixInfo {
    /// Display name (representatives carry the Table 2 letter).
    pub name: &'static str,
    /// Structural class label.
    pub class: &'static str,
    spec: Spec,
}

#[derive(Clone, Debug)]
enum Spec {
    DiagonalMass { n: usize, fill: f64, seed: u64 },
    Poisson2d { nx: usize, ny: usize },
    Poisson3d { nx: usize },
    ConvDiff { n: usize, convection: f64 },
    Circuit { n: usize, avg: usize, rails: usize, seed: u64 },
    Delaunay { side: usize, seed: u64 },
    DenseRows { n: usize, row_nnz: usize, seed: u64 },
    Rmat { scale: u32, ef: usize, seed: u64 },
    Banded { n: usize, bw: usize, fill: f64, seed: u64 },
}

impl MatrixInfo {
    const fn new(name: &'static str, class: &'static str, spec: Spec) -> Self {
        MatrixInfo { name, class, spec }
    }

    /// Materializes the matrix (deterministic for a given descriptor).
    pub fn generate(&self) -> GeneratedMatrix {
        let mut m = match self.spec {
            Spec::DiagonalMass { n, fill, seed } => diagonal_mass(self.name, n, fill, seed),
            Spec::Poisson2d { nx, ny } => poisson2d(self.name, nx, ny),
            Spec::Poisson3d { nx } => poisson3d(self.name, nx, nx, nx),
            Spec::ConvDiff { n, convection } => convection_diffusion(self.name, n, convection),
            Spec::Circuit { n, avg, rails, seed } => circuit(self.name, n, avg, rails, seed),
            Spec::Delaunay { side, seed } => delaunay(self.name, side, seed),
            Spec::DenseRows { n, row_nnz, seed } => dense_rows(self.name, n, row_nnz, seed),
            Spec::Rmat { scale, ef, seed } => rmat(self.name, scale, ef, seed),
            Spec::Banded { n, bw, fill, seed } => banded(self.name, n, bw, fill, seed),
        };
        m.name = self.name.to_owned();
        m
    }
}

/// The six representative matrices of Table 2, by structural class.
///
/// | Letter | Paper matrix | Class here |
/// |---|---|---|
/// | A | bcsstm37     | diagonal mass, 61% filled |
/// | B | bcsstm39     | diagonal mass, full |
/// | C | mult_dcop_01 | circuit |
/// | D | delaunay_n17 | Delaunay mesh Laplacian |
/// | E | av41092      | dense irregular rows |
/// | F | ASIC_320ks   | circuit with power rails |
pub fn representative() -> Vec<MatrixInfo> {
    vec![
        MatrixInfo::new(
            "A: bcsstm37 (synthetic)",
            "diagonal mass",
            Spec::DiagonalMass { n: 25_503, fill: 0.609, seed: 370 },
        ),
        MatrixInfo::new(
            "B: bcsstm39 (synthetic)",
            "diagonal mass",
            Spec::DiagonalMass { n: 46_772, fill: 1.0, seed: 390 },
        ),
        MatrixInfo::new(
            "C: mult_dcop_01 (synthetic)",
            "circuit",
            Spec::Circuit { n: 25_187, avg: 7, rails: 3, seed: 101 },
        ),
        MatrixInfo::new(
            "D: delaunay_n17 (synthetic)",
            "delaunay",
            Spec::Delaunay { side: 362, seed: 170 },
        ),
        MatrixInfo::new(
            "E: av41092 (synthetic)",
            "dense rows",
            Spec::DenseRows { n: 41_092, row_nnz: 41, seed: 410 },
        ),
        MatrixInfo::new(
            "F: ASIC_320ks (synthetic)",
            "circuit",
            Spec::Circuit { n: 321_671, avg: 5, rails: 6, seed: 320 },
        ),
    ]
}

/// 30 SpMV benchmark matrices spanning four decades of nonzero count.
/// Five (marked `dense rows`) exceed 1% density, matching the paper's set.
pub fn spmv_suite() -> Vec<MatrixInfo> {
    vec![
        MatrixInfo::new("mass_25k", "diagonal mass", Spec::DiagonalMass { n: 25_503, fill: 0.609, seed: 370 }),
        MatrixInfo::new("poisson2d_50", "poisson 2d", Spec::Poisson2d { nx: 50, ny: 50 }),
        MatrixInfo::new("convdiff_10k", "convection-diffusion", Spec::ConvDiff { n: 10_000, convection: 0.4 }),
        MatrixInfo::new("mass_47k", "diagonal mass", Spec::DiagonalMass { n: 46_772, fill: 1.0, seed: 390 }),
        MatrixInfo::new("banded_5k", "banded", Spec::Banded { n: 5_000, bw: 16, fill: 0.5, seed: 51 }),
        MatrixInfo::new("dense_2k_60", "dense rows", Spec::DenseRows { n: 2_000, row_nnz: 60, seed: 52 }),
        MatrixInfo::new("delaunay_150", "delaunay", Spec::Delaunay { side: 150, seed: 53 }),
        MatrixInfo::new("circuit_25k", "circuit", Spec::Circuit { n: 25_187, avg: 7, rails: 3, seed: 101 }),
        MatrixInfo::new("poisson2d_200", "poisson 2d", Spec::Poisson2d { nx: 200, ny: 200 }),
        MatrixInfo::new("dense_4k_50", "dense rows", Spec::DenseRows { n: 4_000, row_nnz: 50, seed: 54 }),
        MatrixInfo::new("rmat_14", "power-law graph", Spec::Rmat { scale: 14, ef: 8, seed: 55 }),
        MatrixInfo::new("banded_20k", "banded", Spec::Banded { n: 20_000, bw: 24, fill: 0.4, seed: 56 }),
        MatrixInfo::new("poisson3d_40", "poisson 3d", Spec::Poisson3d { nx: 40 }),
        MatrixInfo::new("circuit_80k", "circuit", Spec::Circuit { n: 80_000, avg: 4, rails: 4, seed: 57 }),
        MatrixInfo::new("delaunay_300", "delaunay", Spec::Delaunay { side: 300, seed: 58 }),
        MatrixInfo::new("delaunay_362", "delaunay", Spec::Delaunay { side: 362, seed: 170 }),
        MatrixInfo::new("rmat_16", "power-law graph", Spec::Rmat { scale: 16, ef: 8, seed: 59 }),
        MatrixInfo::new("dense_20k_60", "dense rows", Spec::DenseRows { n: 20_000, row_nnz: 60, seed: 60 }),
        MatrixInfo::new("dense_41k_41", "dense rows", Spec::DenseRows { n: 41_092, row_nnz: 41, seed: 410 }),
        MatrixInfo::new("poisson2d_600", "poisson 2d", Spec::Poisson2d { nx: 600, ny: 600 }),
        MatrixInfo::new("circuit_321k", "circuit", Spec::Circuit { n: 321_671, avg: 5, rails: 6, seed: 320 }),
        MatrixInfo::new("banded_200k", "banded", Spec::Banded { n: 200_000, bw: 12, fill: 0.5, seed: 61 }),
        MatrixInfo::new("rmat_17", "power-law graph", Spec::Rmat { scale: 17, ef: 10, seed: 62 }),
        MatrixInfo::new("poisson3d_80", "poisson 3d", Spec::Poisson3d { nx: 80 }),
        MatrixInfo::new("delaunay_600", "delaunay", Spec::Delaunay { side: 600, seed: 63 }),
        MatrixInfo::new("dense_10k_300", "dense rows", Spec::DenseRows { n: 10_000, row_nnz: 300, seed: 64 }),
        MatrixInfo::new("circuit_1m", "circuit", Spec::Circuit { n: 1_000_000, avg: 3, rails: 8, seed: 65 }),
        MatrixInfo::new("poisson3d_100", "poisson 3d", Spec::Poisson3d { nx: 100 }),
        MatrixInfo::new("poisson2d_1200", "poisson 2d", Spec::Poisson2d { nx: 1200, ny: 1200 }),
        MatrixInfo::new("rmat_18", "power-law graph", Spec::Rmat { scale: 18, ef: 12, seed: 66 }),
    ]
}

/// 40 solvable (square, diagonally dominant or SPD) matrices for the solver
/// benchmarks. Sizes are moderate — the solver benchmark runs hundreds of
/// iterations per matrix per library.
pub fn solver_suite() -> Vec<MatrixInfo> {
    let mut v = Vec::with_capacity(40);
    // 12 Poisson 2-D problems of growing size.
    for (i, side) in [30, 40, 50, 65, 80, 100, 125, 150, 180, 220, 260, 300]
        .into_iter()
        .enumerate()
    {
        let name: &'static str = Box::leak(format!("poisson2d_{side}").into_boxed_str());
        v.push(MatrixInfo::new(name, "poisson 2d", Spec::Poisson2d { nx: side, ny: side }));
        let _ = i;
    }
    // 6 Poisson 3-D problems.
    for side in [10, 14, 18, 24, 30, 38] {
        let name: &'static str = Box::leak(format!("poisson3d_{side}").into_boxed_str());
        v.push(MatrixInfo::new(name, "poisson 3d", Spec::Poisson3d { nx: side }));
    }
    // 8 convection-diffusion problems (unsymmetric).
    for (n, conv) in [
        (1_000, 0.2),
        (2_000, 0.4),
        (5_000, 0.1),
        (10_000, 0.3),
        (20_000, 0.5),
        (40_000, 0.2),
        (60_000, 0.4),
        (90_000, 0.1),
    ] {
        let name: &'static str = Box::leak(format!("convdiff_{n}").into_boxed_str());
        v.push(MatrixInfo::new(name, "convection-diffusion", Spec::ConvDiff { n, convection: conv }));
    }
    // 6 circuit matrices (unsymmetric, diagonally dominant).
    for (i, n) in [2_000, 5_000, 12_000, 25_000, 50_000, 80_000].into_iter().enumerate() {
        let name: &'static str = Box::leak(format!("circuit_{n}").into_boxed_str());
        v.push(MatrixInfo::new(
            name,
            "circuit",
            Spec::Circuit { n, avg: 4, rails: 2, seed: 700 + i as u64 },
        ));
    }
    // 4 Delaunay Laplacians (SPD).
    for (i, side) in [60, 110, 170, 240].into_iter().enumerate() {
        let name: &'static str = Box::leak(format!("delaunay_{side}").into_boxed_str());
        v.push(MatrixInfo::new(name, "delaunay", Spec::Delaunay { side, seed: 800 + i as u64 }));
    }
    // 4 RMAT graph Laplacians (SPD, skewed degrees — the ill-conditioned end).
    for (i, scale) in [11, 12, 13, 14].into_iter().enumerate() {
        let name: &'static str = Box::leak(format!("rmat_{scale}").into_boxed_str());
        v.push(MatrixInfo::new(
            name,
            "power-law graph",
            Spec::Rmat { scale, ef: 8, seed: 900 + i as u64 },
        ));
    }
    assert_eq!(v.len(), 40);
    v
}

/// 45 matrices for the pyGinkgo-vs-Ginkgo binding overhead study: the SpMV
/// suite plus 15 additional small-to-mid problems, since overhead is most
/// visible at small sizes.
pub fn overhead_suite() -> Vec<MatrixInfo> {
    let mut v = spmv_suite();
    for (i, side) in [20, 28, 36, 44, 52, 60, 70, 85, 105, 130, 160, 190, 230, 280, 340]
        .into_iter()
        .enumerate()
    {
        let name: &'static str = Box::leak(format!("poisson2d_ov_{side}").into_boxed_str());
        v.push(MatrixInfo::new(
            name,
            "poisson 2d",
            Spec::Poisson2d { nx: side, ny: side },
        ));
        let _ = i;
    }
    assert_eq!(v.len(), 45);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_paper_cardinalities() {
        assert_eq!(spmv_suite().len(), 30);
        assert_eq!(solver_suite().len(), 40);
        assert_eq!(overhead_suite().len(), 45);
        assert_eq!(representative().len(), 6);
    }

    #[test]
    fn representative_matrices_match_table_2_shapes() {
        let reps = representative();
        // (dimension, approximate nnz) from Table 2.
        let expected: [(usize, f64); 6] = [
            (25_503, 1.55e4),
            (46_772, 4.68e4),
            (25_187, 1.93e5),
            (131_044, 7.86e5), // 362^2 grid ~ 2^17 nodes
            (41_092, 1.68e6),
            (321_671, 1.83e6),
        ];
        for (info, (dim, nnz)) in reps.iter().zip(expected) {
            let m = info.generate();
            assert_eq!(m.rows, dim, "{}", info.name);
            let ratio = m.nnz() as f64 / nnz;
            assert!(
                (0.4..2.5).contains(&ratio),
                "{}: nnz {} vs paper {nnz} (ratio {ratio})",
                info.name,
                m.nnz()
            );
        }
    }

    #[test]
    fn spmv_suite_small_members_have_expected_structure() {
        // Materialize only the small ones to keep test time bounded.
        for info in spmv_suite().into_iter().take(10) {
            let m = info.generate();
            assert!(m.nnz() > 0, "{}", info.name);
            assert_eq!(m.rows, m.cols, "{}", info.name);
        }
    }

    #[test]
    fn density_distribution_matches_paper_description() {
        // "densities below 1% in all cases except for five".
        let dense_count = spmv_suite()
            .iter()
            .filter(|i| i.class == "dense rows")
            .count();
        assert_eq!(dense_count, 5);
    }

    #[test]
    fn solver_suite_members_are_square_and_have_nonzero_diagonal() {
        for info in solver_suite().into_iter().step_by(7) {
            let m = info.generate();
            assert_eq!(m.rows, m.cols);
            let mut has_diag = vec![false; m.rows];
            for &(r, c, v) in &m.triplets {
                if r == c && v != 0.0 {
                    has_diag[r] = true;
                }
            }
            assert!(has_diag.iter().all(|&d| d), "{}: missing diagonal", info.name);
        }
    }

    #[test]
    fn generation_is_reproducible_across_calls() {
        let a = spmv_suite()[7].generate();
        let b = spmv_suite()[7].generate();
        assert_eq!(a.triplets, b.triplets);
    }
}
