//! Seeded generators for each structural matrix class.

use pygko_sim::rng::Xoshiro256pp;
use std::collections::BTreeSet;

/// A generated sparse matrix as sorted, deduplicated triplets.
#[derive(Clone, Debug)]
pub struct GeneratedMatrix {
    /// Human-readable name.
    pub name: String,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Entries sorted by (row, col), unique.
    pub triplets: Vec<(usize, usize, f64)>,
    /// Structurally and numerically symmetric.
    pub symmetric: bool,
    /// Symmetric positive definite (safe for CG/IC).
    pub spd: bool,
}

impl GeneratedMatrix {
    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.triplets.len()
    }

    /// Fraction of nonzero entries.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    fn finish(mut self) -> Self {
        self.triplets.sort_by_key(|&(r, c, _)| (r, c));
        self.triplets.dedup_by_key(|&mut (r, c, _)| (r, c));
        self
    }
}

/// Diagonal mass matrix (the `bcsstm37`/`bcsstm39` class): positive diagonal
/// entries, with only `fill_fraction` of the rows populated.
pub fn diagonal_mass(name: &str, n: usize, fill_fraction: f64, seed: u64) -> GeneratedMatrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for i in 0..n {
        if rng.next_f64() < fill_fraction {
            triplets.push((i, i, rng.range_f64(0.1, 10.0)));
        }
    }
    GeneratedMatrix {
        name: name.to_owned(),
        rows: n,
        cols: n,
        triplets,
        symmetric: true,
        spd: false, // semi-definite: zero rows are possible
    }
    .finish()
}

/// 2-D Poisson equation, 5-point stencil on an `nx` by `ny` grid. SPD.
pub fn poisson2d(name: &str, nx: usize, ny: usize) -> GeneratedMatrix {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut triplets = Vec::with_capacity(5 * n);
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            triplets.push((r, r, 4.0));
            if i > 0 {
                triplets.push((r, idx(i - 1, j), -1.0));
            }
            if i + 1 < nx {
                triplets.push((r, idx(i + 1, j), -1.0));
            }
            if j > 0 {
                triplets.push((r, idx(i, j - 1), -1.0));
            }
            if j + 1 < ny {
                triplets.push((r, idx(i, j + 1), -1.0));
            }
        }
    }
    GeneratedMatrix {
        name: name.to_owned(),
        rows: n,
        cols: n,
        triplets,
        symmetric: true,
        spd: true,
    }
    .finish()
}

/// 3-D Poisson equation, 7-point stencil. SPD.
pub fn poisson3d(name: &str, nx: usize, ny: usize, nz: usize) -> GeneratedMatrix {
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut triplets = Vec::with_capacity(7 * n);
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let r = idx(i, j, k);
                triplets.push((r, r, 6.0));
                if i > 0 {
                    triplets.push((r, idx(i - 1, j, k), -1.0));
                }
                if i + 1 < nx {
                    triplets.push((r, idx(i + 1, j, k), -1.0));
                }
                if j > 0 {
                    triplets.push((r, idx(i, j - 1, k), -1.0));
                }
                if j + 1 < ny {
                    triplets.push((r, idx(i, j + 1, k), -1.0));
                }
                if k > 0 {
                    triplets.push((r, idx(i, j, k - 1), -1.0));
                }
                if k + 1 < nz {
                    triplets.push((r, idx(i, j, k + 1), -1.0));
                }
            }
        }
    }
    GeneratedMatrix {
        name: name.to_owned(),
        rows: n,
        cols: n,
        triplets,
        symmetric: true,
        spd: true,
    }
    .finish()
}

/// Circuit-simulation matrix (the `mult_dcop`/`ASIC` class): diagonally
/// dominant, unsymmetric pattern, mostly short rows plus `power_rails`
/// nearly-dense rows/columns (supply nets touch a large fraction of nodes).
pub fn circuit(
    name: &str,
    n: usize,
    avg_row_nnz: usize,
    power_rails: usize,
    seed: u64,
) -> GeneratedMatrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity(n * avg_row_nnz);
    for i in 0..n {
        // Stamp conductances to a few random neighbours (locality-biased,
        // like node numbering in real netlists).
        let extras = 1 + rng.below_usize(2 * avg_row_nnz.saturating_sub(1).max(1));
        let mut row_sum = 0.0f64;
        let mut cols = BTreeSet::new();
        for _ in 0..extras {
            let span = 1 + rng.below_usize(n.min(2048));
            let j = if rng.next_f64() < 0.5 {
                i.saturating_sub(span)
            } else {
                (i + span).min(n - 1)
            };
            if j != i {
                cols.insert(j);
            }
        }
        for j in cols {
            let g = rng.range_f64(0.01, 1.0);
            triplets.push((i, j, -g));
            row_sum += g;
        }
        triplets.push((i, i, row_sum + rng.range_f64(0.1, 1.0)));
    }
    // Power rails: a handful of rows and columns touching many nodes.
    for rail in 0..power_rails {
        let r = rng.below_usize(n);
        let touches = n / 50; // 2% of the nodes
        for _ in 0..touches {
            let j = rng.below_usize(n);
            if j != r {
                triplets.push((r, j, -rng.range_f64(0.001, 0.1)));
                triplets.push((r, r, 0.2)); // keep dominance; deduped later sums? no—dedup keeps first
            }
        }
        let _ = rail;
    }
    // Deduplicate by keeping the first occurrence; re-add a strong diagonal
    // afterwards so dominance survives deduplication.
    let mut m = GeneratedMatrix {
        name: name.to_owned(),
        rows: n,
        cols: n,
        triplets,
        symmetric: false,
        spd: false,
    }
    .finish();
    // Strengthen diagonals to restore strict dominance.
    let mut row_abs = vec![0.0f64; n];
    for &(r, c, v) in &m.triplets {
        if r != c {
            row_abs[r] += v.abs();
        }
    }
    for t in &mut m.triplets {
        if t.0 == t.1 {
            t.2 = row_abs[t.0] + 1.0;
        }
    }
    m
}

/// Delaunay-mesh-like graph Laplacian (the `delaunay_n17` class): a planar
/// triangulated grid with randomly flipped diagonals; ~6 nonzeros per row,
/// symmetric, positive definite after diagonal shift.
pub fn delaunay(name: &str, side: usize, seed: u64) -> GeneratedMatrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let n = side * side;
    let idx = |i: usize, j: usize| i * side + j;
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(3 * n);
    for i in 0..side {
        for j in 0..side {
            if i + 1 < side {
                edges.push((idx(i, j), idx(i + 1, j)));
            }
            if j + 1 < side {
                edges.push((idx(i, j), idx(i, j + 1)));
            }
            // One diagonal per grid cell, direction chosen randomly — the
            // hallmark of a Delaunay triangulation of jittered grid points.
            if i + 1 < side && j + 1 < side {
                if rng.next_f64() < 0.5 {
                    edges.push((idx(i, j), idx(i + 1, j + 1)));
                } else {
                    edges.push((idx(i, j + 1), idx(i + 1, j)));
                }
            }
        }
    }
    let mut degree = vec![0usize; n];
    let mut triplets = Vec::with_capacity(7 * n);
    for &(a, b) in &edges {
        degree[a] += 1;
        degree[b] += 1;
        triplets.push((a, b, -1.0));
        triplets.push((b, a, -1.0));
    }
    for (i, &d) in degree.iter().enumerate() {
        triplets.push((i, i, d as f64 + 0.5)); // shifted Laplacian: SPD
    }
    GeneratedMatrix {
        name: name.to_owned(),
        rows: n,
        cols: n,
        triplets,
        symmetric: true,
        spd: true,
    }
    .finish()
}

/// High-density unstructured matrix (the `av41092` class): ~`row_nnz`
/// nonzeros per row scattered widely, strongly unsymmetric. Density above
/// 0.1% — the paper notes SpMV speedups drop for this class.
pub fn dense_rows(name: &str, n: usize, row_nnz: usize, seed: u64) -> GeneratedMatrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity(n * (row_nnz + 1));
    for i in 0..n {
        let mut cols = BTreeSet::new();
        // Row lengths vary by 4x around the mean — irregular on purpose.
        let len = row_nnz / 2 + rng.below_usize(row_nnz);
        while cols.len() < len.min(n - 1) {
            cols.insert(rng.below_usize(n));
        }
        cols.remove(&i);
        let mut row_sum = 0.0;
        for j in cols {
            let v = rng.range_f64(-1.0, 1.0);
            row_sum += v.abs();
            triplets.push((i, j, v));
        }
        triplets.push((i, i, row_sum + 1.0));
    }
    GeneratedMatrix {
        name: name.to_owned(),
        rows: n,
        cols: n,
        triplets,
        symmetric: false,
        spd: false,
    }
    .finish()
}

/// RMAT power-law graph adjacency (social/web graph class), symmetrized,
/// with a shifted-Laplacian diagonal so solver benchmarks stay solvable.
pub fn rmat(name: &str, scale: u32, edge_factor: usize, seed: u64) -> GeneratedMatrix {
    let n = 1usize << scale;
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut edges = BTreeSet::new();
    for _ in 0..n * edge_factor {
        let (mut r, mut col) = (0usize, 0usize);
        for bit in (0..scale).rev() {
            let p = rng.next_f64();
            let (ri, ci) = if p < a {
                (0, 0)
            } else if p < a + b {
                (0, 1)
            } else if p < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            r |= ri << bit;
            col |= ci << bit;
        }
        if r != col {
            edges.insert((r.min(col), r.max(col)));
        }
    }
    let mut degree = vec![0usize; n];
    let mut triplets = Vec::with_capacity(edges.len() * 2 + n);
    for &(r, c) in &edges {
        degree[r] += 1;
        degree[c] += 1;
        triplets.push((r, c, -1.0));
        triplets.push((c, r, -1.0));
    }
    for (i, &d) in degree.iter().enumerate() {
        triplets.push((i, i, d as f64 + 1.0));
    }
    GeneratedMatrix {
        name: name.to_owned(),
        rows: n,
        cols: n,
        triplets,
        symmetric: true,
        spd: true,
    }
    .finish()
}

/// Power-law row-length distribution plus one ultra-dense row (the extreme
/// scale-free class merge-path SpMV targets): most rows hold a couple of
/// entries, row lengths follow a heavy Pareto tail, and one designated row
/// touches `dense_row_fraction` of all columns. Row-parallel strategies
/// cannot split that row across workers, so it serializes one lane;
/// merge-path divides it by nonzero count instead.
pub fn power_law(
    name: &str,
    n: usize,
    avg_row_nnz: usize,
    dense_row_fraction: f64,
    seed: u64,
) -> GeneratedMatrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let dense_row = rng.below_usize(n);
    let mut triplets = Vec::with_capacity(n * avg_row_nnz);
    for i in 0..n {
        if i == dense_row {
            continue;
        }
        // Pareto-tailed row length: u^(-0.6) has finite mean but a heavy
        // tail, so a few rows are 10-100x the typical length.
        let u = rng.next_f64().max(1e-9);
        let len = ((avg_row_nnz as f64) * 0.5 * u.powf(-0.6)).min(n as f64 / 8.0) as usize;
        let mut cols = BTreeSet::new();
        cols.insert(i);
        while cols.len() < (1 + len).min(n) {
            cols.insert(rng.below_usize(n));
        }
        let mut row_sum = 0.0;
        for j in cols {
            if j == i {
                continue;
            }
            let v = rng.range_f64(-1.0, 1.0);
            row_sum += v.abs();
            triplets.push((i, j, v));
        }
        triplets.push((i, i, row_sum + 1.0));
    }
    // The ultra-dense row: an evenly spaced sweep across the columns keeps
    // the generator O(nnz) while still touching the requested fraction.
    let touches = ((n as f64 * dense_row_fraction) as usize).clamp(1, n);
    let stride = (n / touches).max(1);
    let mut row_sum = 0.0;
    for j in (0..n).step_by(stride) {
        if j == dense_row {
            continue;
        }
        let v = rng.range_f64(-1.0, 1.0);
        row_sum += v.abs();
        triplets.push((dense_row, j, v));
    }
    triplets.push((dense_row, dense_row, row_sum + 1.0));
    GeneratedMatrix {
        name: name.to_owned(),
        rows: n,
        cols: n,
        triplets,
        symmetric: false,
        spd: false,
    }
    .finish()
}

/// Banded matrix with partially filled band (generic structural class).
pub fn banded(name: &str, n: usize, bandwidth: usize, fill: f64, seed: u64) -> GeneratedMatrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for i in 0..n {
        let lo = i.saturating_sub(bandwidth);
        let hi = (i + bandwidth + 1).min(n);
        let mut row_sum = 0.0;
        for j in lo..hi {
            if j == i {
                continue;
            }
            if rng.next_f64() < fill {
                let v = rng.range_f64(-1.0, 1.0);
                row_sum += v.abs();
                triplets.push((i, j, v));
            }
        }
        triplets.push((i, i, row_sum + 1.0));
    }
    GeneratedMatrix {
        name: name.to_owned(),
        rows: n,
        cols: n,
        triplets,
        symmetric: false,
        spd: false,
    }
    .finish()
}

/// 1-D convection–diffusion (unsymmetric tridiagonal), solvable by all the
/// paper's Krylov methods.
pub fn convection_diffusion(name: &str, n: usize, convection: f64) -> GeneratedMatrix {
    let mut triplets = Vec::with_capacity(3 * n);
    for i in 0..n {
        triplets.push((i, i, 4.0));
        if i > 0 {
            triplets.push((i, i - 1, -1.0 - convection));
        }
        if i + 1 < n {
            triplets.push((i, i + 1, -1.0 + convection));
        }
    }
    GeneratedMatrix {
        name: name.to_owned(),
        rows: n,
        cols: n,
        triplets,
        symmetric: convection == 0.0,
        spd: false,
    }
    .finish()
}

/// A batch of matrices sharing one sparsity pattern: a prototype whose
/// triplets fix the structure, plus one value vector per system aligned
/// with the prototype's (sorted, unique) triplet order. This is the input
/// shape of shared-sparsity batched formats — many small independent
/// systems, one structure.
#[derive(Clone, Debug)]
pub struct GeneratedBatch {
    /// Structure and the first system's values.
    pub prototype: GeneratedMatrix,
    /// Per-system nonzero values, each of length `prototype.nnz()`.
    pub system_values: Vec<Vec<f64>>,
    /// Per-system right-hand sides, each of length `prototype.rows`.
    pub rhs: Vec<Vec<f64>>,
}

impl GeneratedBatch {
    /// Number of systems in the batch.
    pub fn num_systems(&self) -> usize {
        self.system_values.len()
    }
}

/// SPD tridiagonal batch (the batched-solver benchmark class): `num_systems`
/// matrices sharing one tridiagonal structure. Each system keeps the `-1`
/// off-diagonals and perturbs the diagonal by a seeded amount in
/// `[0, 1.5)`, so every member stays strictly diagonally dominant — hence
/// SPD and safe for batched CG. Right-hand sides are seeded in `[0.5, 1.5)`.
pub fn spd_tridiag_batch(name: &str, n: usize, num_systems: usize, seed: u64) -> GeneratedBatch {
    assert!(n > 0 && num_systems > 0, "batch needs rows and systems");
    let mut prototype = convection_diffusion(name, n, 0.0);
    // diag 4, off-diags -1: strictly diagonally dominant and symmetric.
    prototype.spd = true;
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut system_values = Vec::with_capacity(num_systems);
    let mut rhs = Vec::with_capacity(num_systems);
    for _ in 0..num_systems {
        let shift = rng.range_f64(0.0, 1.5);
        let values = prototype
            .triplets
            .iter()
            .map(|&(r, c, v)| if r == c { v + shift } else { v })
            .collect();
        system_values.push(values);
        rhs.push((0..n).map(|_| rng.range_f64(0.5, 1.5)).collect());
    }
    GeneratedBatch {
        prototype,
        system_values,
        rhs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = circuit("c", 500, 6, 2, 42);
        let b = circuit("c", 500, 6, 2, 42);
        assert_eq!(a.triplets, b.triplets);
        let c = circuit("c", 500, 6, 2, 43);
        assert_ne!(a.triplets, c.triplets);
    }

    #[test]
    fn triplets_are_sorted_and_unique() {
        for m in [
            diagonal_mass("d", 200, 0.6, 1),
            poisson2d("p", 10, 12),
            circuit("c", 300, 5, 1, 2),
            delaunay("de", 12, 3),
            dense_rows("dr", 100, 20, 4),
            rmat("r", 8, 8, 5),
            power_law("pl", 400, 3, 0.5, 7),
            banded("b", 150, 8, 0.5, 6),
            convection_diffusion("cd", 50, 0.3),
        ] {
            let mut prev = None;
            for &(r, c, _) in &m.triplets {
                assert!(r < m.rows && c < m.cols, "{}: entry out of range", m.name);
                if let Some(p) = prev {
                    assert!((r, c) > p, "{}: unsorted or duplicate", m.name);
                }
                prev = Some((r, c));
            }
        }
    }

    #[test]
    fn poisson_stencils_have_expected_nnz() {
        let p2 = poisson2d("p", 10, 10);
        // 5n - 2*(nx + ny) boundary deficit.
        assert_eq!(p2.nnz(), 5 * 100 - 2 * 10 - 2 * 10);
        let p3 = poisson3d("p", 5, 5, 5);
        assert_eq!(p3.nnz(), 7 * 125 - 2 * 25 * 3);
        assert!(p2.spd && p3.spd);
    }

    #[test]
    fn symmetric_generators_are_symmetric() {
        for m in [poisson2d("p", 8, 8), delaunay("d", 10, 7), rmat("r", 7, 6, 9)] {
            let set: std::collections::BTreeMap<(usize, usize), f64> =
                m.triplets.iter().map(|&(r, c, v)| ((r, c), v)).collect();
            for (&(r, c), &v) in &set {
                let mirror = set.get(&(c, r));
                assert_eq!(mirror, Some(&v), "{}: ({r},{c}) not mirrored", m.name);
            }
        }
    }

    #[test]
    fn circuit_is_diagonally_dominant_and_skewed() {
        let m = circuit("c", 2000, 6, 3, 11);
        let mut row_abs = vec![0.0f64; m.rows];
        let mut diag = vec![0.0f64; m.rows];
        let mut row_len = vec![0usize; m.rows];
        for &(r, c, v) in &m.triplets {
            row_len[r] += 1;
            if r == c {
                diag[r] = v;
            } else {
                row_abs[r] += v.abs();
            }
        }
        for i in 0..m.rows {
            assert!(diag[i] > row_abs[i] - 1e-9, "row {i} not dominant");
        }
        let max_len = *row_len.iter().max().unwrap();
        let avg = m.nnz() as f64 / m.rows as f64;
        assert!(
            max_len as f64 > 4.0 * avg,
            "power rails should create skew: max {max_len}, avg {avg}"
        );
    }

    #[test]
    fn delaunay_has_planar_degree() {
        let m = delaunay("d", 50, 13);
        let avg = m.nnz() as f64 / m.rows as f64;
        assert!((5.0..8.5).contains(&avg), "avg row nnz {avg}");
    }

    #[test]
    fn rmat_degrees_are_skewed() {
        let m = rmat("r", 10, 8, 17);
        let mut deg = vec![0usize; m.rows];
        for &(r, c, _) in &m.triplets {
            if r != c {
                deg[r] += 1;
                let _ = c;
            }
        }
        deg.sort_unstable();
        let median = deg[m.rows / 2].max(1);
        let max = deg[m.rows - 1];
        assert!(
            max > 8 * median,
            "power-law skew expected: max {max}, median {median}"
        );
    }

    #[test]
    fn power_law_has_one_ultra_dense_row_and_heavy_tail() {
        let m = power_law("pl", 4000, 3, 0.9, 31);
        assert_eq!(m.triplets, power_law("pl", 4000, 3, 0.9, 31).triplets);
        let mut row_len = vec![0usize; m.rows];
        for &(r, _, _) in &m.triplets {
            row_len[r] += 1;
        }
        let max_len = *row_len.iter().max().unwrap();
        let avg = m.nnz() as f64 / m.rows as f64;
        // The dense row alone forces skew past the merge-path threshold.
        assert!(
            max_len as f64 >= 32.0 * avg,
            "ultra-dense row dominates: max {max_len}, avg {avg}"
        );
        assert!(max_len >= (0.9 * 4000.0 * 0.9) as usize, "row touches ~90% of columns");
        // Every row has at least its diagonal.
        assert!(row_len.iter().all(|&l| l > 0));
    }

    #[test]
    fn dense_rows_density_exceeds_one_percent_when_configured() {
        let m = dense_rows("e", 600, 30, 23);
        assert!(m.density() > 0.01, "density {}", m.density());
    }

    #[test]
    fn diagonal_mass_fill_fraction_is_respected() {
        let m = diagonal_mass("a", 10_000, 0.6, 5);
        let frac = m.nnz() as f64 / 10_000.0;
        assert!((0.55..0.65).contains(&frac), "fill {frac}");
        assert!(m.triplets.iter().all(|&(r, c, v)| r == c && v > 0.0));
    }

    #[test]
    fn spd_tridiag_batch_shares_structure_and_stays_dominant() {
        let n = 64;
        let batch = spd_tridiag_batch("b", n, 8, 7);
        assert_eq!(batch.num_systems(), 8);
        assert_eq!(batch.rhs.len(), 8);
        let nnz = batch.prototype.nnz();
        assert!(batch.prototype.spd);
        for (s, vals) in batch.system_values.iter().enumerate() {
            assert_eq!(vals.len(), nnz, "system {s} values align with structure");
            // Strict diagonal dominance per row: diag >= 4, off-diags -1.
            for (&(r, c, _), &v) in batch.prototype.triplets.iter().zip(vals) {
                if r == c {
                    assert!(v >= 4.0, "system {s} diagonal {v}");
                } else {
                    assert_eq!(v, -1.0);
                }
            }
            assert_eq!(batch.rhs[s].len(), n);
            assert!(batch.rhs[s].iter().all(|&b| (0.5..1.5).contains(&b)));
        }
        // Systems differ (diagonal perturbation is per-system) but are
        // deterministic under the seed.
        assert_ne!(batch.system_values[0], batch.system_values[1]);
        let again = spd_tridiag_batch("b", n, 8, 7);
        assert_eq!(batch.system_values, again.system_values);
        assert_eq!(batch.rhs, again.rhs);
        assert_ne!(
            spd_tridiag_batch("b", n, 8, 8).system_values,
            batch.system_values
        );
    }
}
