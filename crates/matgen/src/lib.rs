//! Synthetic SuiteSparse-like sparse matrix collection.
//!
//! The paper benchmarks on 30 (SpMV), 40 (solver), and 45 (binding-overhead)
//! matrices from the SuiteSparse collection, plus six named representatives
//! (Table 2). The real collection cannot ship with this reproduction, so
//! this crate generates matrices *by structural class* — diagonal mass
//! matrices, discretized PDEs, circuit matrices with power-rail rows,
//! Delaunay-mesh Laplacians, power-law graphs — with the dimensions and
//! nonzero counts of the paper's sets. SpMV and solver behaviour depend on
//! exactly the properties the generators control (row-length distribution,
//! bandwidth, symmetry, diagonal dominance), which is what makes the
//! benchmark shapes transfer. Every generator is seeded and deterministic.

#![warn(missing_docs)]

pub mod collection;
pub mod generators;

pub use collection::{overhead_suite, representative, solver_suite, spmv_suite, MatrixInfo};
pub use generators::{GeneratedBatch, GeneratedMatrix};
