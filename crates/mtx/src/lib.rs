//! Matrix Market (`.mtx`) file reader and writer.
//!
//! pyGinkgo's `read` function (Listing 1) loads SuiteSparse matrices from
//! Matrix Market files. This crate implements the format from the NIST
//! specification: `coordinate` and `array` layouts; `real`, `integer`, and
//! `pattern` fields; `general`, `symmetric`, and `skew-symmetric`
//! symmetries. (`complex`/`hermitian` are rejected with a clear error — the
//! reproduction's value types are real, per Table 1 of the paper.)

#![warn(missing_docs)]

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Storage layout declared in the header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MtxFormat {
    /// Sparse triplet list.
    Coordinate,
    /// Dense column-major values.
    Array,
}

/// Symmetry declared in the header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MtxSymmetry {
    /// All entries stored explicitly.
    General,
    /// Lower triangle stored; `(i, j)` implies `(j, i)` with equal value.
    Symmetric,
    /// Strictly lower triangle stored; `(i, j)` implies `(j, i)` negated.
    SkewSymmetric,
}

/// A parsed Matrix Market file: sorted, symmetry-expanded triplets.
#[derive(Clone, Debug, PartialEq)]
pub struct MtxData {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Expanded entries, sorted by (row, col); duplicates are NOT summed
    /// (consumers like `Csr::from_triplets` do that).
    pub entries: Vec<(usize, usize, f64)>,
    /// The symmetry the file declared (before expansion).
    pub declared_symmetry: MtxSymmetry,
    /// The layout the file declared.
    pub declared_format: MtxFormat,
}

/// Errors from reading or writing Matrix Market data.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The file violates the format specification.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Valid Matrix Market, but a variant this crate does not support.
    Unsupported(String),
}

impl fmt::Display for MtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "I/O error: {e}"),
            MtxError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            MtxError::Unsupported(what) => write!(f, "unsupported matrix market variant: {what}"),
        }
    }
}

impl std::error::Error for MtxError {}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> MtxError {
    MtxError::Parse {
        line,
        message: message.into(),
    }
}

/// Upper bound on entries reserved up front from header-declared sizes
/// (16M entries ≈ 384 MB of triplets). A malformed or hostile header can
/// declare an absurd nnz; capping the speculative reservation keeps the
/// parser from aborting on an over-large allocation before it has read a
/// single entry — oversized files instead fail with a line-numbered count
/// mismatch, and genuinely large files still grow geometrically past the
/// cap.
const RESERVE_CAP: usize = 1 << 24;

/// Reads Matrix Market data from any reader.
pub fn read_mtx<R: Read>(reader: R) -> Result<MtxData, MtxError> {
    let mut lines = BufReader::new(reader).lines();
    let mut line_no = 0usize;

    // Header line.
    let header = loop {
        match lines.next() {
            None => return Err(parse_err(line_no, "empty file")),
            Some(l) => {
                line_no += 1;
                let l = l?;
                if !l.trim().is_empty() {
                    break l;
                }
            }
        }
    };
    let lower = header.to_ascii_lowercase();
    let tokens: Vec<&str> = lower.split_whitespace().collect();
    if tokens.len() < 4 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(parse_err(
            line_no,
            "header must start with '%%MatrixMarket matrix'",
        ));
    }
    let format = match tokens[2] {
        "coordinate" => MtxFormat::Coordinate,
        "array" => MtxFormat::Array,
        other => return Err(parse_err(line_no, format!("unknown format '{other}'"))),
    };
    let field = tokens[3];
    match field {
        "real" | "integer" | "pattern" | "double" => {}
        "complex" | "hermitian" => {
            return Err(MtxError::Unsupported(format!("field '{field}'")))
        }
        other => return Err(parse_err(line_no, format!("unknown field '{other}'"))),
    }
    if field == "pattern" && format == MtxFormat::Array {
        return Err(parse_err(line_no, "array format cannot be pattern"));
    }
    let symmetry = match tokens.get(4).copied().unwrap_or("general") {
        "general" => MtxSymmetry::General,
        "symmetric" => MtxSymmetry::Symmetric,
        "skew-symmetric" => MtxSymmetry::SkewSymmetric,
        "hermitian" => return Err(MtxError::Unsupported("hermitian symmetry".into())),
        other => return Err(parse_err(line_no, format!("unknown symmetry '{other}'"))),
    };

    // Size line (after comments).
    let size_line = loop {
        match lines.next() {
            None => return Err(parse_err(line_no, "missing size line")),
            Some(l) => {
                line_no += 1;
                let l = l?;
                let trimmed = l.trim().to_owned();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break trimmed;
            }
        }
    };
    let nums: Vec<&str> = size_line.split_whitespace().collect();

    let (rows, cols, declared_nnz) = match format {
        MtxFormat::Coordinate => {
            if nums.len() != 3 {
                return Err(parse_err(line_no, "coordinate size line needs 'rows cols nnz'"));
            }
            let r: usize = nums[0].parse().map_err(|_| parse_err(line_no, "bad rows"))?;
            let c: usize = nums[1].parse().map_err(|_| parse_err(line_no, "bad cols"))?;
            let n: usize = nums[2].parse().map_err(|_| parse_err(line_no, "bad nnz"))?;
            (r, c, Some(n))
        }
        MtxFormat::Array => {
            if nums.len() != 2 {
                return Err(parse_err(line_no, "array size line needs 'rows cols'"));
            }
            let r: usize = nums[0].parse().map_err(|_| parse_err(line_no, "bad rows"))?;
            let c: usize = nums[1].parse().map_err(|_| parse_err(line_no, "bad cols"))?;
            (r, c, None)
        }
    };

    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    match format {
        MtxFormat::Coordinate => {
            let expected = declared_nnz.unwrap();
            entries.reserve(expected.saturating_mul(2).min(RESERVE_CAP));
            let mut seen = 0usize;
            for l in lines {
                line_no += 1;
                let l = l?;
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                let parts: Vec<&str> = t.split_whitespace().collect();
                let want = if field == "pattern" { 2 } else { 3 };
                if parts.len() < want {
                    return Err(parse_err(line_no, "too few values on entry line"));
                }
                let i: usize = parts[0]
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad row index"))?;
                let j: usize = parts[1]
                    .parse()
                    .map_err(|_| parse_err(line_no, "bad col index"))?;
                if i == 0 || j == 0 || i > rows || j > cols {
                    return Err(parse_err(
                        line_no,
                        format!("entry ({i}, {j}) outside {rows}x{cols} (indices are 1-based)"),
                    ));
                }
                let v: f64 = if field == "pattern" {
                    1.0
                } else {
                    parts[2]
                        .parse()
                        .map_err(|_| parse_err(line_no, "bad value"))?
                };
                let (i0, j0) = (i - 1, j - 1);
                match symmetry {
                    MtxSymmetry::General => entries.push((i0, j0, v)),
                    MtxSymmetry::Symmetric => {
                        if j0 > i0 {
                            return Err(parse_err(
                                line_no,
                                "symmetric file stores only the lower triangle",
                            ));
                        }
                        entries.push((i0, j0, v));
                        if i0 != j0 {
                            entries.push((j0, i0, v));
                        }
                    }
                    MtxSymmetry::SkewSymmetric => {
                        if j0 >= i0 {
                            return Err(parse_err(
                                line_no,
                                "skew-symmetric file stores only the strict lower triangle",
                            ));
                        }
                        entries.push((i0, j0, v));
                        entries.push((j0, i0, -v));
                    }
                }
                seen += 1;
            }
            if seen != expected {
                return Err(parse_err(
                    line_no,
                    format!("declared {expected} entries but found {seen}"),
                ));
            }
        }
        MtxFormat::Array => {
            // Column-major dense values.
            let expected = match symmetry {
                MtxSymmetry::General => rows * cols,
                MtxSymmetry::Symmetric => cols * (cols + 1) / 2,
                MtxSymmetry::SkewSymmetric => cols * cols.saturating_sub(1) / 2,
            };
            let mut values = Vec::with_capacity(expected.min(RESERVE_CAP));
            for l in lines {
                line_no += 1;
                let l = l?;
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                for tok in t.split_whitespace() {
                    let v: f64 = tok.parse().map_err(|_| parse_err(line_no, "bad value"))?;
                    values.push(v);
                }
            }
            if values.len() != expected {
                return Err(parse_err(
                    line_no,
                    format!("expected {expected} array values, found {}", values.len()),
                ));
            }
            let mut it = values.into_iter();
            match symmetry {
                MtxSymmetry::General => {
                    for j in 0..cols {
                        for i in 0..rows {
                            let v = it.next().unwrap();
                            if v != 0.0 {
                                entries.push((i, j, v));
                            }
                        }
                    }
                }
                MtxSymmetry::Symmetric => {
                    for j in 0..cols {
                        for i in j..rows {
                            let v = it.next().unwrap();
                            if v != 0.0 {
                                entries.push((i, j, v));
                                if i != j {
                                    entries.push((j, i, v));
                                }
                            }
                        }
                    }
                }
                MtxSymmetry::SkewSymmetric => {
                    for j in 0..cols {
                        for i in (j + 1)..rows {
                            let v = it.next().unwrap();
                            if v != 0.0 {
                                entries.push((i, j, v));
                                entries.push((j, i, -v));
                            }
                        }
                    }
                }
            }
        }
    }

    entries.sort_by_key(|&(r, c, _)| (r, c));
    Ok(MtxData {
        rows,
        cols,
        entries,
        declared_symmetry: symmetry,
        declared_format: format,
    })
}

/// Reads a Matrix Market file from disk.
pub fn read_mtx_file(path: impl AsRef<Path>) -> Result<MtxData, MtxError> {
    let file = std::fs::File::open(path)?;
    read_mtx(file)
}

/// Writes triplets as a `coordinate real general` Matrix Market document.
pub fn write_mtx<W: Write>(
    writer: &mut W,
    rows: usize,
    cols: usize,
    entries: &[(usize, usize, f64)],
) -> Result<(), MtxError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by pygko-mtx")?;
    writeln!(writer, "{rows} {cols} {}", entries.len())?;
    for &(r, c, v) in entries {
        writeln!(writer, "{} {} {v:?}", r + 1, c + 1)?;
    }
    Ok(())
}

/// Writes triplets to a file on disk.
pub fn write_mtx_file(
    path: impl AsRef<Path>,
    rows: usize,
    cols: usize,
    entries: &[(usize, usize, f64)],
) -> Result<(), MtxError> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_mtx(&mut file, rows, cols, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_general_coordinate() {
        let doc = "%%MatrixMarket matrix coordinate real general\n\
                   % a comment\n\
                   3 3 2\n\
                   1 1 2.5\n\
                   3 2 -1.0\n";
        let m = read_mtx(doc.as_bytes()).unwrap();
        assert_eq!((m.rows, m.cols), (3, 3));
        assert_eq!(m.entries, vec![(0, 0, 2.5), (2, 1, -1.0)]);
        assert_eq!(m.declared_symmetry, MtxSymmetry::General);
    }

    #[test]
    fn expands_symmetric_storage() {
        let doc = "%%MatrixMarket matrix coordinate real symmetric\n\
                   2 2 2\n\
                   1 1 4.0\n\
                   2 1 -1.0\n";
        let m = read_mtx(doc.as_bytes()).unwrap();
        assert_eq!(
            m.entries,
            vec![(0, 0, 4.0), (0, 1, -1.0), (1, 0, -1.0)]
        );
    }

    #[test]
    fn expands_skew_symmetric_with_negation() {
        let doc = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                   2 2 1\n\
                   2 1 3.0\n";
        let m = read_mtx(doc.as_bytes()).unwrap();
        assert_eq!(m.entries, vec![(0, 1, -3.0), (1, 0, 3.0)]);
    }

    #[test]
    fn symmetric_diagonal_is_not_duplicated() {
        // Regression fixture: mirroring a symmetric file must not emit the
        // diagonal twice — a duplicated (i, i) entry silently doubles the
        // diagonal in assemblers that sum duplicates.
        let doc = "%%MatrixMarket matrix coordinate real symmetric\n\
                   3 3 4\n\
                   1 1 4.0\n\
                   2 2 5.0\n\
                   3 3 6.0\n\
                   3 1 -1.0\n";
        let m = read_mtx(doc.as_bytes()).unwrap();
        assert_eq!(
            m.entries,
            vec![
                (0, 0, 4.0),
                (0, 2, -1.0),
                (1, 1, 5.0),
                (2, 0, -1.0),
                (2, 2, 6.0)
            ]
        );
        for i in 0..3 {
            let diag = m.entries.iter().filter(|&&(r, c, _)| r == i && c == i);
            assert_eq!(diag.count(), 1, "diagonal {i} stored exactly once");
        }
    }

    #[test]
    fn skew_symmetric_diagonal_is_rejected() {
        // Regression fixture: a skew-symmetric matrix has a zero diagonal by
        // definition; a file storing (i, i) is malformed and must error, not
        // emit (i, i, v) and (i, i, -v).
        let doc = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
                   2 2 2\n\
                   1 1 1.0\n\
                   2 1 3.0\n";
        let err = read_mtx(doc.as_bytes()).unwrap_err();
        assert!(
            err.to_string().contains("strict lower triangle"),
            "got: {err}"
        );
    }

    #[test]
    fn pattern_symmetric_mirrors_without_doubling_diagonal() {
        // Regression fixture: pattern + symmetric composes both expansions —
        // implicit unit values and lower-triangle mirroring.
        let doc = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                   3 3 3\n\
                   1 1\n\
                   2 1\n\
                   3 3\n";
        let m = read_mtx(doc.as_bytes()).unwrap();
        assert_eq!(
            m.entries,
            vec![(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (2, 2, 1.0)]
        );
    }

    #[test]
    fn pattern_entries_become_ones() {
        let doc = "%%MatrixMarket matrix coordinate pattern general\n\
                   2 2 2\n\
                   1 2\n\
                   2 1\n";
        let m = read_mtx(doc.as_bytes()).unwrap();
        assert_eq!(m.entries, vec![(0, 1, 1.0), (1, 0, 1.0)]);
    }

    #[test]
    fn reads_dense_array_column_major() {
        let doc = "%%MatrixMarket matrix array real general\n\
                   2 2\n\
                   1.0\n0.0\n3.0\n4.0\n";
        let m = read_mtx(doc.as_bytes()).unwrap();
        // Column-major: (0,0)=1, (1,0)=0 (dropped), (0,1)=3, (1,1)=4.
        assert_eq!(m.entries, vec![(0, 0, 1.0), (0, 1, 3.0), (1, 1, 4.0)]);
        assert_eq!(m.declared_format, MtxFormat::Array);
    }

    #[test]
    fn symmetric_array_reads_lower_triangle() {
        let doc = "%%MatrixMarket matrix array real symmetric\n\
                   2 2\n\
                   1.0\n2.0\n3.0\n";
        let m = read_mtx(doc.as_bytes()).unwrap();
        assert_eq!(
            m.entries,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 3.0)]
        );
    }

    #[test]
    fn roundtrip_write_read() {
        let entries = vec![(0usize, 0usize, 1.5f64), (1, 2, -2.25), (4, 4, 1e-30)];
        let mut buf = Vec::new();
        write_mtx(&mut buf, 5, 5, &entries).unwrap();
        let m = read_mtx(buf.as_slice()).unwrap();
        assert_eq!((m.rows, m.cols), (5, 5));
        assert_eq!(m.entries, entries);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("pygko_mtx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m1.mtx");
        write_mtx_file(&path, 2, 2, &[(0, 1, 7.0)]).unwrap();
        let m = read_mtx_file(&path).unwrap();
        assert_eq!(m.entries, vec![(0, 1, 7.0)]);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn malformed_documents_are_rejected_with_context() {
        let cases: Vec<(&str, &str)> = vec![
            ("", "empty"),
            ("not a header\n1 1 0\n", "header"),
            ("%%MatrixMarket matrix coordinate real general\n", "size"),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n",
                "outside",
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
                "declared 2 entries but found 1",
            ),
            (
                "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 1.0\n",
                "lower triangle",
            ),
            (
                "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
                "bad value",
            ),
            (
                "%%MatrixMarket matrix array real general\n2 2\n1.0\n",
                "expected 4",
            ),
        ];
        for (doc, needle) in cases {
            let err = read_mtx(doc.as_bytes()).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.to_lowercase().contains(&needle.to_lowercase()),
                "error {msg:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn out_of_range_index_reports_its_line_number() {
        // The bad entry sits on line 4 (header, comment, size, entry).
        let doc = "%%MatrixMarket matrix coordinate real general\n\
                   % comment\n\
                   2 2 2\n\
                   3 1 1.0\n\
                   1 1 1.0\n";
        match read_mtx(doc.as_bytes()).unwrap_err() {
            MtxError::Parse { line, message } => {
                assert_eq!(line, 4, "{message}");
                assert!(message.contains("(3, 1)"), "{message}");
                assert!(message.contains("2x2"), "{message}");
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn too_few_tokens_on_entry_line_is_line_numbered() {
        let doc = "%%MatrixMarket matrix coordinate real general\n\
                   2 2 1\n\
                   1 1\n";
        match read_mtx(doc.as_bytes()).unwrap_err() {
            MtxError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("too few"), "{message}");
            }
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn index_overflowing_usize_is_a_bad_index_not_a_panic() {
        // 2^64 does not fit in usize: the parse itself must fail cleanly.
        let doc = "%%MatrixMarket matrix coordinate real general\n\
                   2 2 1\n\
                   18446744073709551616 1 1.0\n";
        let msg = read_mtx(doc.as_bytes()).unwrap_err().to_string();
        assert!(msg.contains("bad row index"), "{msg}");
        assert!(msg.contains("line 3"), "{msg}");
    }

    #[test]
    fn absurd_declared_nnz_fails_without_allocating_it() {
        // Header declares ~2^63 entries; the capped reservation means this
        // must fail with a count mismatch, not abort on allocation.
        let doc = "%%MatrixMarket matrix coordinate real general\n\
                   2 2 9223372036854775807\n\
                   1 1 1.0\n";
        let msg = read_mtx(doc.as_bytes()).unwrap_err().to_string();
        assert!(msg.contains("found 1"), "{msg}");

        // Same for the array layout's rows*cols reservation.
        let doc = "%%MatrixMarket matrix array real general\n\
                   4000000000 4000000000\n\
                   1.0\n";
        let msg = read_mtx(doc.as_bytes()).unwrap_err().to_string();
        assert!(msg.contains("found 1"), "{msg}");
    }

    #[test]
    fn complex_field_is_unsupported_not_a_parse_error() {
        let doc = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 0.0\n";
        assert!(matches!(
            read_mtx(doc.as_bytes()),
            Err(MtxError::Unsupported(_))
        ));
    }

    #[test]
    fn header_is_case_insensitive() {
        let doc = "%%MATRIXMARKET MATRIX COORDINATE REAL GENERAL\n1 1 1\n1 1 5.0\n";
        assert_eq!(read_mtx(doc.as_bytes()).unwrap().entries, vec![(0, 0, 5.0)]);
    }

    #[test]
    fn scientific_notation_values_parse() {
        let doc = "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 -1.5e-10\n";
        assert_eq!(
            read_mtx(doc.as_bytes()).unwrap().entries,
            vec![(0, 0, -1.5e-10)]
        );
    }
}
