//! Bit-level conversions between binary32 and binary16.
//!
//! Both directions are branch-light integer algorithms; the f32→f16 direction
//! implements round-to-nearest-even including the normal→subnormal boundary,
//! which table-based approaches frequently get wrong.

/// Converts an `f32` to binary16 bits with round-to-nearest-even.
///
/// Overflow produces ±infinity; values below half the smallest subnormal
/// round to ±0; NaNs map to a quiet NaN preserving the sign and the top
/// mantissa bits when possible.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Infinity or NaN.
        return if mant == 0 {
            sign | 0x7C00
        } else {
            // Quiet NaN; keep top mantissa bits, force at least one set.
            let payload = (mant >> 13) as u16 & 0x03FF;
            sign | 0x7C00 | payload.max(0x0200)
        };
    }

    // Unbiased exponent; f32 bias 127, f16 bias 15.
    let unbiased = exp - 127;
    if unbiased >= 16 {
        // Too large: overflow to infinity (covers values >= 65536; values in
        // [65504+16, 65536) are handled by the rounding path below and also
        // overflow there).
        return sign | 0x7C00;
    }

    if unbiased >= -14 {
        // Normal range for f16 (possibly overflowing into infinity after
        // rounding).
        let half_exp = (unbiased + 15) as u32;
        // 24-bit significand (with implicit bit) -> 11-bit: shift out 13.
        let sig = 0x0080_0000 | mant;
        let shifted = sig >> 13;
        let round_bits = sig & 0x1FFF;
        let mut out = (half_exp << 10) | (shifted & 0x03FF);
        // Round to nearest even.
        if round_bits > 0x1000 || (round_bits == 0x1000 && (shifted & 1) != 0) {
            out += 1; // may carry into exponent, which is exactly correct
        }
        if out >= 0x7C00 {
            return sign | 0x7C00;
        }
        return sign | out as u16;
    }

    if unbiased >= -25 {
        // Subnormal range: the implicit bit becomes explicit and the value
        // is shifted right by the exponent deficit.
        let sig = 0x0080_0000 | mant;
        let shift = (-14 - unbiased) as u32 + 13;
        let shifted = sig >> shift;
        let remainder = sig & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut out = shifted;
        if remainder > halfway || (remainder == halfway && (shifted & 1) != 0) {
            out += 1; // may round up to MIN_POSITIVE, which is correct
        }
        return sign | out as u16;
    }

    // Too small even for subnormals: round to zero.
    sign
}

/// Converts binary16 bits to the exactly-representable `f32`.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let mant = (bits & 0x03FF) as u32;

    if exp == 0x1F {
        // Infinity or NaN.
        return f32::from_bits(sign | 0x7F80_0000 | (mant << 13));
    }
    if exp == 0 {
        if mant == 0 {
            return f32::from_bits(sign); // ±0
        }
        // Subnormal: value = mant * 2^-24. Normalize by moving the leading
        // bit of the 10-bit mantissa up to the implicit-bit position.
        let shift = mant.leading_zeros() - 21; // mantissa occupies bits 9..0
        let normalized_mant = (mant << shift) & 0x03FF;
        let exp32 = 113 - shift; // 127 + (9 - shift) - 24 + ... == 113 - shift
        return f32::from_bits(sign | (exp32 << 23) | (normalized_mant << 13));
    }
    // Normal.
    let exp32 = exp + 127 - 15;
    f32::from_bits(sign | (exp32 << 23) | (mant << 13))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference conversion using the obvious (slow) method: parse the exact
    /// value and scan all 63488 non-NaN half bit patterns for the closest.
    fn reference_f32_to_f16(v: f32) -> u16 {
        if v.is_nan() {
            return f32_to_f16_bits(v); // NaN payload choice is ours
        }
        // IEEE overflow: 65520 is the tie between 65504 and (unrepresentable)
        // 65536; ties-to-even rounds it up, so anything >= 65520 is infinity.
        if v.abs() >= 65520.0 {
            return if v < 0.0 { 0xFC00 } else { 0x7C00 };
        }
        let mut best = 0u16;
        let mut best_err = f64::INFINITY;
        for bits in 0u16..=0xFFFF {
            let exp = (bits >> 10) & 0x1F;
            let mant = bits & 0x03FF;
            if exp == 0x1F && mant != 0 {
                continue; // NaN patterns
            }
            let cand = f16_bits_to_f32(bits) as f64;
            let err = (cand - v as f64).abs();
            // Prefer smaller error; on ties prefer even mantissa.
            if err < best_err
                || (err == best_err
                    && (bits & 1) == 0
                    && (best & 1) == 1
                    && cand.is_finite())
            {
                best_err = err;
                best = bits;
            }
        }
        // Resolve ±0 sign to match input sign.
        if best & 0x7FFF == 0 {
            return if v.is_sign_negative() { 0x8000 } else { 0x0000 };
        }
        best
    }

    #[test]
    fn exhaustive_f16_to_f32_to_f16_roundtrip() {
        for bits in 0u16..=0xFFFF {
            let exp = (bits >> 10) & 0x1F;
            let mant = bits & 0x03FF;
            if exp == 0x1F && mant != 0 {
                continue; // NaN bit patterns need not round-trip exactly
            }
            let back = f32_to_f16_bits(f16_bits_to_f32(bits));
            assert_eq!(back, bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn sampled_f32_conversions_match_reference() {
        // A deterministic sample of tricky values across the range; the
        // reference is O(65536) per value so we keep the sample modest.
        let samples: Vec<f32> = vec![
            0.1,
            -0.1,
            1.0 / 3.0,
            2.0 / 3.0,
            1e-5,
            -1e-5,
            6.0e-8,
            6.2e-5,
            6.09e-5,
            0.999,
            1.001,
            1023.5,
            1024.5,
            2049.0,
            65503.0,
            65504.0,
            65519.9,
            65520.0,
            -65520.0,
            3.0517578e-5, // 2^-15, subnormal boundary region
            4.5e-8,
            2.98e-8, // just below half the min subnormal
        ];
        for v in samples {
            assert_eq!(
                f32_to_f16_bits(v),
                reference_f32_to_f16(v),
                "value {v:e}"
            );
        }
    }

    #[test]
    fn nan_payloads_stay_nan() {
        for payload in [1u32, 0x7FFF, 0x3F_0000] {
            let nan = f32::from_bits(0x7F80_0000 | payload);
            let bits = f32_to_f16_bits(nan);
            assert_eq!(bits & 0x7C00, 0x7C00);
            assert_ne!(bits & 0x03FF, 0, "payload {payload:#x} must stay NaN");
        }
    }
}
