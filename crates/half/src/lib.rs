//! Software implementation of the IEEE 754 binary16 ("half precision")
//! floating point format.
//!
//! Ginkgo (and hence pyGinkgo, Table 1 of the paper) supports `half` as a
//! value type alongside `float` and `double`. Rust has no stable `f16`, so
//! this crate provides a bit-exact software binary16:
//!
//! * conversions to/from `f32`/`f64` with round-to-nearest-even,
//! * arithmetic performed in `f32` and rounded back (the same strategy used
//!   by CPU fallback paths in vendor half libraries),
//! * total ordering helpers, constants, and parsing/formatting.
//!
//! The type is a `#[repr(transparent)]` wrapper over the raw `u16` bit
//! pattern, so slices of [`Half`] can be reinterpreted as device buffers with
//! no copying.

#![warn(missing_docs)]

mod convert;

pub use convert::{f32_to_f16_bits, f16_bits_to_f32};

use core::cmp::Ordering;
use core::fmt;
use core::iter::{Product, Sum};
use core::num::ParseFloatError;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use core::str::FromStr;

/// IEEE 754 binary16 floating point number.
///
/// 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
#[derive(Clone, Copy, Default, PartialEq)]
#[repr(transparent)]
pub struct Half(u16);

impl Half {
    /// Positive zero.
    pub const ZERO: Half = Half(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: Half = Half(0x8000);
    /// One.
    pub const ONE: Half = Half(0x3C00);
    /// Negative one.
    pub const NEG_ONE: Half = Half(0xBC00);
    /// Positive infinity.
    pub const INFINITY: Half = Half(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: Half = Half(0xFC00);
    /// Canonical quiet NaN.
    pub const NAN: Half = Half(0x7E00);
    /// Largest finite value, 65504.
    pub const MAX: Half = Half(0x7BFF);
    /// Smallest finite value, -65504.
    pub const MIN: Half = Half(0xFBFF);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: Half = Half(0x0400);
    /// Smallest positive subnormal value, 2^-24.
    pub const MIN_POSITIVE_SUBNORMAL: Half = Half(0x0001);
    /// Machine epsilon: the difference between 1.0 and the next larger
    /// representable value, 2^-10.
    pub const EPSILON: Half = Half(0x1400);

    /// Number of significand digits, including the implicit bit.
    pub const MANTISSA_DIGITS: u32 = 11;

    /// Creates a half from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Half(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to the nearest representable half
    /// (round-to-nearest-even, overflow to infinity).
    #[inline]
    pub fn from_f32(v: f32) -> Self {
        Half(f32_to_f16_bits(v))
    }

    /// Converts an `f64` to the nearest representable half.
    ///
    /// The conversion goes through `f32`; double rounding cannot change the
    /// result here because binary16's precision (11 bits) is less than half
    /// of binary32's (24 bits).
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        Half(f32_to_f16_bits(v as f32))
    }

    /// Widens to `f32` (exact).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Widens to `f64` (exact).
    #[inline]
    pub fn to_f64(self) -> f64 {
        f16_bits_to_f32(self.0) as f64
    }

    /// Returns `true` if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` if the value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Returns `true` if the value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// Returns `true` for subnormal values (non-zero with a zero exponent).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7C00) == 0 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` if the sign bit is set (including -0.0 and NaNs with a
    /// sign bit).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        (self.0 & 0x8000) != 0
    }

    /// Returns `true` if the sign bit is clear.
    #[inline]
    pub fn is_sign_positive(self) -> bool {
        !self.is_sign_negative()
    }

    /// Returns `true` if the value is exactly ±0.0.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & 0x7FFF) == 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> Self {
        Half(self.0 & 0x7FFF)
    }

    /// Square root, computed in `f32` and rounded.
    #[inline]
    pub fn sqrt(self) -> Self {
        Half::from_f32(self.to_f32().sqrt())
    }

    /// The maximum of two values, propagating the other operand over NaN
    /// like `f32::max`.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Half::from_f32(self.to_f32().max(other.to_f32()))
    }

    /// The minimum of two values, propagating the other operand over NaN.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Half::from_f32(self.to_f32().min(other.to_f32()))
    }

    /// Fused multiply-add computed in `f32` precision then rounded once to
    /// half. Used by the engine's dot-product kernels.
    #[inline]
    pub fn mul_add(self, a: Self, b: Self) -> Self {
        Half::from_f32(self.to_f32() * a.to_f32() + b.to_f32())
    }

    /// IEEE total order on the bit patterns, used for deterministic sorting
    /// of half buffers.
    #[inline]
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        // Map to a monotone integer key: flip all bits of negatives, flip
        // only the sign bit of non-negatives.
        fn key(bits: u16) -> i32 {
            let b = bits as i32;
            if b & 0x8000 != 0 {
                !b & 0xFFFF
            } else {
                b | 0x8000
            }
        }
        key(self.0).cmp(&key(other.0))
    }
}

impl fmt::Debug for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}h", self.to_f32())
    }
}

impl fmt::Display for Half {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl FromStr for Half {
    type Err = ParseFloatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(Half::from_f32(s.parse::<f32>()?))
    }
}

impl From<f32> for Half {
    fn from(v: f32) -> Self {
        Half::from_f32(v)
    }
}

impl From<f64> for Half {
    fn from(v: f64) -> Self {
        Half::from_f64(v)
    }
}

impl From<Half> for f32 {
    fn from(v: Half) -> Self {
        v.to_f32()
    }
}

impl From<Half> for f64 {
    fn from(v: Half) -> Self {
        v.to_f64()
    }
}

impl PartialOrd for Half {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for Half {
            type Output = Half;
            #[inline]
            fn $method(self, rhs: Half) -> Half {
                Half::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);
impl_binop!(Div, div, /);
impl_binop!(Rem, rem, %);

impl Neg for Half {
    type Output = Half;
    #[inline]
    fn neg(self) -> Half {
        Half(self.0 ^ 0x8000)
    }
}

impl AddAssign for Half {
    #[inline]
    fn add_assign(&mut self, rhs: Half) {
        *self = *self + rhs;
    }
}

impl SubAssign for Half {
    #[inline]
    fn sub_assign(&mut self, rhs: Half) {
        *self = *self - rhs;
    }
}

impl MulAssign for Half {
    #[inline]
    fn mul_assign(&mut self, rhs: Half) {
        *self = *self * rhs;
    }
}

impl DivAssign for Half {
    #[inline]
    fn div_assign(&mut self, rhs: Half) {
        *self = *self / rhs;
    }
}

impl Sum for Half {
    fn sum<I: Iterator<Item = Half>>(iter: I) -> Half {
        // Accumulate in f32 so long reductions do not lose everything to
        // half's 11-bit significand; round once at the end.
        Half::from_f32(iter.map(Half::to_f32).sum())
    }
}

impl Product for Half {
    fn product<I: Iterator<Item = Half>>(iter: I) -> Half {
        Half::from_f32(iter.map(Half::to_f32).product())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(Half::ZERO.to_f32(), 0.0);
        assert_eq!(Half::ONE.to_f32(), 1.0);
        assert_eq!(Half::NEG_ONE.to_f32(), -1.0);
        assert_eq!(Half::MAX.to_f32(), 65504.0);
        assert_eq!(Half::MIN.to_f32(), -65504.0);
        assert_eq!(Half::MIN_POSITIVE.to_f32(), 2f32.powi(-14));
        assert_eq!(Half::MIN_POSITIVE_SUBNORMAL.to_f32(), 2f32.powi(-24));
        assert_eq!(Half::EPSILON.to_f32(), 9.765625e-4);
        assert!(Half::NAN.is_nan());
        assert!(Half::INFINITY.is_infinite());
        assert!(Half::NEG_INFINITY.is_infinite());
        assert!(Half::NEG_INFINITY.is_sign_negative());
    }

    #[test]
    fn simple_roundtrips_are_exact() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, -0.25, 65504.0] {
            assert_eq!(Half::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10; ties go to
        // even mantissa, i.e. down to 1.0.
        let halfway = 1.0 + 2f32.powi(-11);
        assert_eq!(Half::from_f32(halfway).to_f32(), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + 2f32.powi(-11) + 2f32.powi(-20);
        assert_eq!(Half::from_f32(above).to_f32(), 1.0 + 2f32.powi(-10));
        // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; even is 1+2^-9.
        let halfway2 = 1.0 + 3.0 * 2f32.powi(-11);
        assert_eq!(Half::from_f32(halfway2).to_f32(), 1.0 + 2f32.powi(-9));
    }

    #[test]
    fn overflow_goes_to_infinity() {
        assert!(Half::from_f32(1e6).is_infinite());
        assert!(Half::from_f32(-1e6).is_infinite());
        assert!(Half::from_f32(-1e6).is_sign_negative());
        // 65520 is the first value that rounds to infinity.
        assert!(Half::from_f32(65520.0).is_infinite());
        assert_eq!(Half::from_f32(65519.0).to_f32(), 65504.0);
    }

    #[test]
    fn underflow_handles_subnormals() {
        let tiny = 2f32.powi(-24);
        assert_eq!(Half::from_f32(tiny), Half::MIN_POSITIVE_SUBNORMAL);
        // Below half the smallest subnormal flushes to zero.
        assert_eq!(Half::from_f32(2f32.powi(-26)), Half::ZERO);
        // Halfway between 0 and the smallest subnormal rounds to even (zero).
        assert_eq!(Half::from_f32(2f32.powi(-25)), Half::ZERO);
        let sub = Half::from_f32(3.0 * 2f32.powi(-24));
        assert!(sub.is_subnormal());
        assert_eq!(sub.to_f32(), 3.0 * 2f32.powi(-24));
    }

    #[test]
    fn nan_propagates() {
        assert!(Half::from_f32(f32::NAN).is_nan());
        assert!((Half::NAN + Half::ONE).is_nan());
        assert!(Half::NAN.to_f32().is_nan());
    }

    #[test]
    fn arithmetic_matches_f32_with_rounding() {
        let a = Half::from_f32(1.5);
        let b = Half::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((a - b).to_f32(), -0.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b / a).to_f32(), 1.5);
        assert_eq!((-a).to_f32(), -1.5);
    }

    #[test]
    fn sum_accumulates_in_f32() {
        // 4096 ones: naive half accumulation would stall at 2048 (where the
        // half ulp exceeds 1); f32 accumulation keeps the exact count until
        // the final rounding, and 4096 is representable.
        let total: Half = (0..4096).map(|_| Half::ONE).sum();
        assert_eq!(total.to_f32(), 4096.0);
    }

    #[test]
    fn total_cmp_orders_specials() {
        let mut values = [
            Half::NAN,
            Half::INFINITY,
            Half::ONE,
            Half::ZERO,
            Half::NEG_ZERO,
            Half::NEG_ONE,
            Half::NEG_INFINITY,
        ];
        values.sort_by(Half::total_cmp);
        assert_eq!(values[0], Half::NEG_INFINITY);
        assert_eq!(values[1], Half::NEG_ONE);
        assert_eq!(values[2], Half::NEG_ZERO);
        assert_eq!(values[3], Half::ZERO);
        assert_eq!(values[4], Half::ONE);
        assert_eq!(values[5], Half::INFINITY);
        assert!(values[6].is_nan());
    }

    #[test]
    fn parse_and_display() {
        let v: Half = "1.5".parse().unwrap();
        assert_eq!(v, Half::from_f32(1.5));
        assert_eq!(format!("{v}"), "1.5");
        assert!("abc".parse::<Half>().is_err());
    }

    #[test]
    fn neg_is_sign_flip_even_for_nan() {
        assert_eq!((-Half::NAN).to_bits(), Half::NAN.to_bits() ^ 0x8000);
    }
}
