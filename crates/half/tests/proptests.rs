//! Randomized tests for the binary16 implementation, driven by the
//! deterministic in-tree harness (`pygko_sim::testing`).

use pygko_half::{f16_bits_to_f32, f32_to_f16_bits, Half};
use pygko_sim::rng::Xoshiro256pp;
use pygko_sim::testing::check_cases;

const CASES: usize = 256;

fn range_f32(rng: &mut Xoshiro256pp, lo: f32, hi: f32) -> f32 {
    rng.range_f64(lo as f64, hi as f64) as f32
}

/// Decoding then re-encoding any non-NaN bit pattern is the identity.
#[test]
fn decode_encode_roundtrip() {
    check_cases("decode_encode_roundtrip", CASES, |rng| {
        let bits = (rng.next_u64() & 0xFFFF) as u16;
        let exp = (bits >> 10) & 0x1F;
        let mant = bits & 0x03FF;
        if exp == 0x1F && mant != 0 {
            return; // skip NaN patterns
        }
        assert_eq!(f32_to_f16_bits(f16_bits_to_f32(bits)), bits);
    });
}

/// Conversion from f32 is monotone: a <= b implies h(a) <= h(b).
#[test]
fn conversion_is_monotone() {
    check_cases("conversion_is_monotone", CASES, |rng| {
        let a = range_f32(rng, -70000.0, 70000.0);
        let b = range_f32(rng, -70000.0, 70000.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (hl, hh) = (Half::from_f32(lo), Half::from_f32(hi));
        assert!(hl.to_f32() <= hh.to_f32(), "{lo} -> {hl}, {hi} -> {hh}");
    });
}

/// The rounding error of a single conversion is at most half an ulp of
/// the result (for finite results in the normal range).
#[test]
fn rounding_error_within_half_ulp() {
    check_cases("rounding_error_within_half_ulp", CASES, |rng| {
        let v = range_f32(rng, -65000.0, 65000.0);
        let h = Half::from_f32(v);
        if !h.is_finite() || h.is_subnormal() || h.is_zero() {
            return;
        }
        let back = h.to_f32();
        // ulp of a binary16 normal x is 2^(exp-10).
        let exp = back.abs().log2().floor() as i32;
        let ulp = 2f32.powi(exp - 10);
        assert!(
            (back - v).abs() <= ulp / 2.0 + ulp * 1e-6,
            "v={v} back={back} ulp={ulp}"
        );
    });
}

/// Negation flips the sign bit and is an involution.
#[test]
fn negation_involution() {
    check_cases("negation_involution", CASES, |rng| {
        let v = range_f32(rng, -70000.0, 70000.0);
        let h = Half::from_f32(v);
        assert_eq!((-(-h)).to_bits(), h.to_bits());
    });
}

/// a + b == b + a bit-exactly (both are rounded the same way).
#[test]
fn addition_commutes() {
    check_cases("addition_commutes", CASES, |rng| {
        let a = range_f32(rng, -1000.0, 1000.0);
        let b = range_f32(rng, -1000.0, 1000.0);
        let (x, y) = (Half::from_f32(a), Half::from_f32(b));
        assert_eq!((x + y).to_bits(), (y + x).to_bits());
    });
}

/// abs() never produces a negative value and preserves magnitude.
#[test]
fn abs_properties() {
    check_cases("abs_properties", CASES, |rng| {
        let v = range_f32(rng, -70000.0, 70000.0);
        let h = Half::from_f32(v).abs();
        assert!(h.is_sign_positive());
        assert_eq!(h.to_f32(), Half::from_f32(v).to_f32().abs());
    });
}

/// total_cmp agrees with partial_cmp on ordinary (non-NaN, non-zero-pair)
/// values.
#[test]
fn total_cmp_matches_partial() {
    check_cases("total_cmp_matches_partial", CASES, |rng| {
        let a = range_f32(rng, -70000.0, 70000.0);
        let b = range_f32(rng, -70000.0, 70000.0);
        let (x, y) = (Half::from_f32(a), Half::from_f32(b));
        if x.is_zero() && y.is_zero() {
            return;
        }
        assert_eq!(Some(x.total_cmp(&y)), x.partial_cmp(&y));
    });
}
