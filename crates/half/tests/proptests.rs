//! Property-based tests for the binary16 implementation.

use proptest::prelude::*;
use pygko_half::{f16_bits_to_f32, f32_to_f16_bits, Half};

proptest! {
    /// Decoding then re-encoding any non-NaN bit pattern is the identity.
    #[test]
    fn decode_encode_roundtrip(bits in 0u16..=0xFFFF) {
        let exp = (bits >> 10) & 0x1F;
        let mant = bits & 0x03FF;
        prop_assume!(!(exp == 0x1F && mant != 0)); // skip NaN patterns
        prop_assert_eq!(f32_to_f16_bits(f16_bits_to_f32(bits)), bits);
    }

    /// Conversion from f32 is monotone: a <= b implies h(a) <= h(b).
    #[test]
    fn conversion_is_monotone(a in -70000.0f32..70000.0, b in -70000.0f32..70000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (hl, hh) = (Half::from_f32(lo), Half::from_f32(hi));
        prop_assert!(hl.to_f32() <= hh.to_f32(), "{lo} -> {}, {hi} -> {}", hl, hh);
    }

    /// The rounding error of a single conversion is at most half an ulp of
    /// the result (for finite results in the normal range).
    #[test]
    fn rounding_error_within_half_ulp(v in -65000.0f32..65000.0) {
        let h = Half::from_f32(v);
        prop_assume!(h.is_finite() && !h.is_subnormal() && !h.is_zero());
        let back = h.to_f32();
        // ulp of a binary16 normal x is 2^(exp-10).
        let exp = back.abs().log2().floor() as i32;
        let ulp = 2f32.powi(exp - 10);
        prop_assert!((back - v).abs() <= ulp / 2.0 + ulp * 1e-6,
            "v={v} back={back} ulp={ulp}");
    }

    /// Negation flips the sign bit and is an involution.
    #[test]
    fn negation_involution(v in -70000.0f32..70000.0) {
        let h = Half::from_f32(v);
        prop_assert_eq!((-(-h)).to_bits(), h.to_bits());
    }

    /// a + b == b + a bit-exactly (both are rounded the same way).
    #[test]
    fn addition_commutes(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        let (x, y) = (Half::from_f32(a), Half::from_f32(b));
        prop_assert_eq!((x + y).to_bits(), (y + x).to_bits());
    }

    /// abs() never produces a negative value and preserves magnitude.
    #[test]
    fn abs_properties(v in -70000.0f32..70000.0) {
        let h = Half::from_f32(v).abs();
        prop_assert!(h.is_sign_positive());
        prop_assert_eq!(h.to_f32(), Half::from_f32(v).to_f32().abs());
    }

    /// total_cmp agrees with partial_cmp on ordinary (non-NaN, non-zero-pair)
    /// values.
    #[test]
    fn total_cmp_matches_partial(a in -70000.0f32..70000.0, b in -70000.0f32..70000.0) {
        let (x, y) = (Half::from_f32(a), Half::from_f32(b));
        prop_assume!(!(x.is_zero() && y.is_zero()));
        prop_assert_eq!(Some(x.total_cmp(&y)), x.partial_cmp(&y));
    }
}
