//! SpMV across formats, dtypes, and strategies — a miniature of the paper's
//! §6.1 study, runnable in seconds.
//!
//! Run with `cargo run -p pyginkgo-examples --bin spmv_compare --release`.

use pyginkgo as pg;

fn main() -> Result<(), pg::PyGinkgoError> {
    let dev = pg::device("cuda")?;
    // A circuit matrix with power rails: skewed row lengths, the case where
    // format and strategy choices matter most.
    let gen = pygko_matgen::generators::circuit("circuit", 60_000, 4, 3, 99);
    println!(
        "matrix: {} ({} x {}, {} nnz, skewed circuit)\n",
        gen.name,
        gen.rows,
        gen.cols,
        gen.triplets.len()
    );

    println!(
        "{:<10} {:<10} {:<14} {:>14} {:>10}",
        "format", "dtype", "strategy", "virtual time", "GFLOP/s"
    );
    let mut reference: Option<Vec<f64>> = None;
    for format in ["Csr", "Coo"] {
        for dtype in ["float", "double", "half"] {
            let strategies: &[&str] = if format == "Csr" {
                &["load_balance", "classical"]
            } else {
                &["(nnz-partitioned)"]
            };
            for strategy in strategies {
                let mut mtx = pg::SparseMatrix::from_triplets(
                    &dev,
                    (gen.rows, gen.cols),
                    &gen.triplets,
                    dtype,
                    "int32",
                    format,
                )?;
                if format == "Csr" {
                    mtx = mtx.with_spmv_strategy(strategy)?;
                }
                let b = pg::as_tensor_fill(&dev, (gen.cols, 1), dtype, 1.0)?;

                let t0 = dev.executor().timeline().snapshot();
                let x = mtx.spmv(&b)?;
                let dt = dev.executor().timeline().snapshot().since(&t0);
                let gflops = 2.0 * mtx.nnz() as f64 / dt.ns.max(1) as f64;
                println!(
                    "{:<10} {:<10} {:<14} {:>11.3} us {:>10.1}",
                    format,
                    dtype,
                    strategy,
                    dt.ns as f64 / 1e3,
                    gflops
                );

                // All variants must agree numerically (within dtype rounding).
                let result = x.to_vec();
                match (&reference, dtype) {
                    (None, "float") => reference = Some(result),
                    (Some(want), "float") => {
                        for (a, b) in result.iter().zip(want) {
                            assert!(
                                (a - b).abs() <= 1e-3 * (1.0 + b.abs()),
                                "format/strategy changed the numerics"
                            );
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    println!("\nthe load-balanced CSR kernel wins on this skewed matrix — the paper's Fig. 5a ordering");
    Ok(())
}
