//! Live telemetry: serve `/metrics`, `/healthz`, and `/runs` while solving.
//!
//! Arms the flight recorder on a CG solver, starts the std-only HTTP
//! exporter, runs a batch of Poisson solves, and keeps serving until you
//! press Enter — scrape it from another terminal while it runs:
//!
//! ```text
//! curl http://127.0.0.1:9185/metrics     # Prometheus text exposition
//! curl http://127.0.0.1:9185/healthz    # executor/pool/sanitizer liveness
//! curl http://127.0.0.1:9185/runs      # per-solve flight reports (JSON)
//! ```
//!
//! Set `PYGKO_TELEMETRY_ADDR` to change the bind address (use port 0 for an
//! OS-assigned port). Run with
//! `cargo run -p pyginkgo-examples --bin telemetry`.

use pyginkgo as pg;

fn main() -> Result<(), pg::PyGinkgoError> {
    let grid = 96usize;
    let m = pygko_matgen::generators::poisson2d("poisson", grid, grid);
    let n = m.rows;

    let dev = pg::device_with_id("omp", 4)?;
    let mtx = pg::SparseMatrix::from_triplets(
        &dev,
        (m.rows, m.cols),
        &m.triplets,
        "double",
        "int32",
        "Csr",
    )?;
    let solver = pg::solver::cg(&dev, &mtx, None, 10 * grid, 1e-10)?.with_flight_recorder();

    let addr = std::env::var("PYGKO_TELEMETRY_ADDR")
        .unwrap_or_else(|_| "127.0.0.1:9185".to_string());
    let server = dev
        .executor()
        .serve_telemetry(&addr)
        .map_err(|e| pg::PyGinkgoError::Os(e.to_string()))?;
    println!("telemetry live on http://{}", server.addr());
    println!("  curl http://{}/metrics", server.addr());
    println!("  curl http://{}/healthz", server.addr());
    println!("  curl http://{}/runs", server.addr());

    let b = pg::as_tensor_fill(&dev, (n, 1), "double", 1.0)?;
    for i in 1..=5 {
        let mut x = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0)?;
        let logger = solver.apply(&b, &mut x)?;
        println!(
            "solve {i}: {} iterations, residual {:.3e}",
            logger.iterations(),
            logger.final_residual()
        );
    }
    if let Some(report) = solver.flight_report() {
        println!(
            "latest flight report: seq {}, converged: {}, anomalies: {}",
            report.seq,
            report.converged,
            report.anomalies.len()
        );
    }

    println!("press Enter to stop serving...");
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    server.shutdown();
    println!("exporter stopped");
    Ok(())
}
