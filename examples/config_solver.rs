//! The generic config-solver entry point: the paper's Listing 2.
//!
//! `pg.solve(...)` assembles the configuration dictionary shown in
//! Listing 2, serializes it to JSON in memory, and dispatches through
//! Ginkgo's generic solver factory — gaining access to every
//! solver/preconditioner combination without dedicated bindings.
//!
//! Run with `cargo run -p pyginkgo-examples --bin config_solver`.

use pyginkgo as pg;
use pyginkgo::config_solver::SolveOptions;

fn main() -> Result<(), pg::PyGinkgoError> {
    let dev = pg::device("cuda")?;

    // An unsymmetric convection-diffusion system.
    let gen = pygko_matgen::generators::convection_diffusion("cd", 2_000, 0.35);
    let mtx = pg::SparseMatrix::from_triplets(
        &dev,
        (gen.rows, gen.cols),
        &gen.triplets,
        "double",
        "int32",
        "Csr",
    )?;
    let n = mtx.shape().0;
    let b = pg::as_tensor_fill(&dev, (n, 1), "double", 1.0)?;

    // Listing 2's exact configuration: GMRES(30) + scalar Jacobi,
    // 1000 iterations or 1e-6 relative reduction.
    let options = SolveOptions::default();
    println!("configuration dictionary handed to Ginkgo:\n{}\n", options.to_json()?);

    let mut x = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0)?;
    let logger = pg::solve(&mtx, &b, &mut x, &options)?;
    println!(
        "config solver [gmres + jacobi]: {} in {} iterations (reduction {:.2e})",
        logger.stop_reason(),
        logger.iterations(),
        logger.reduction()
    );
    assert!(logger.converged());

    // The same entry point reaches every other solver without new bindings:
    for method in ["bicgstab", "cgs", "ir", "direct"] {
        let opts = SolveOptions {
            method: method.to_owned(),
            preconditioner: Some("ilu".to_owned()),
            max_iters: 2000,
            ..SolveOptions::default()
        };
        let mut x = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0)?;
        let log = pg::solve(&mtx, &b, &mut x, &opts)?;
        println!(
            "config solver [{method:>8} + ilu]: {} in {} iterations",
            log.stop_reason(),
            log.iterations()
        );
    }
    Ok(())
}
