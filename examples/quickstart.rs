//! Quickstart: the paper's Listing 1, line for line.
//!
//! ```python
//! import pyGinkgo as pg
//! dev = pg.device("cuda")
//! mtx = pg.read(device=dev, path="m1.mtx", dtype="double", format="Csr")
//! b = pg.as_tensor(device=dev, dim=(n_rows, 1), dtype="double", fill=1.0)
//! x = pg.as_tensor(device=dev, dim=(n_rows, 1), dtype="double", fill=0.0)
//! preconditioner = pg.preconditioner.Ilu(dev, mtx)
//! solver = pg.solver.gmres(dev, mtx, preconditioner,
//!                          max_iters=1000, krylov_dim=30,
//!                          reduction_factor=1e-06)
//! logger, result = solver.apply(b, x)
//! ```
//!
//! Run with `cargo run -p pyginkgo-examples --bin quickstart`.

use pyginkgo as pg;

fn main() -> Result<(), pg::PyGinkgoError> {
    // The paper reads m1.mtx from disk; we generate an equivalent SPD
    // system, write it to a temporary m1.mtx, and read it back so the
    // exact Listing 1 path (device -> read -> tensors -> solver) runs.
    let path = std::env::temp_dir().join("pyginkgo_quickstart_m1.mtx");
    {
        let m = pygko_matgen::generators::poisson2d("m1", 48, 48);
        pygko_mtx::write_mtx_file(&path, m.rows, m.cols, &m.triplets)
            .map_err(|e| pg::PyGinkgoError::Os(e.to_string()))?;
    }

    let dev = pg::device("cuda")?;
    let mtx = pg::read(&dev, &path, "double", "Csr")?;
    let n_rows = mtx.shape().0;
    println!("loaded {} ({} x {}, {} nonzeros) on {}",
        path.display(), n_rows, mtx.shape().1, mtx.nnz(), dev.hardware_name());

    let b = pg::as_tensor_fill(&dev, (n_rows, 1), "double", 1.0)?;
    let mut x = pg::as_tensor_fill(&dev, (n_rows, 1), "double", 0.0)?;

    // Create ILU preconditioner.
    let preconditioner = pg::preconditioner::ilu(&dev, &mtx)?;

    // Set up the GMRES solver.
    let solver = pg::solver::gmres(&dev, &mtx, Some(preconditioner), 1000, 30, 1e-6)?;

    // Apply: logger, result = solver.apply(b, x).
    let logger = solver.apply(&b, &mut x)?;

    println!(
        "GMRES(30)+ILU: {} after {} iterations, residual {:.3e} -> {:.3e}",
        logger.stop_reason(),
        logger.iterations(),
        logger.initial_residual(),
        logger.final_residual()
    );

    // Verify the solution through the public API.
    let ax = mtx.spmv(&x)?;
    let mut r = b.clone();
    r.add_scaled(-1.0, &ax)?;
    println!("true residual ||b - Ax|| = {:.3e}", r.norm());
    assert!(logger.converged(), "quickstart must converge");
    assert!(r.norm() <= 1e-5 * logger.initial_residual());

    let _ = std::fs::remove_file(path);
    Ok(())
}
