//! The Rayleigh–Ritz eigensolver implemented purely on the facade (§3.4).
//!
//! The paper uses Rayleigh–Ritz as the proof of concept that users can
//! compose *new* algorithms from pyGinkgo's exposed operations (SpMV, dot,
//! axpy) without writing any engine code. This example computes the top
//! eigenvalues of a 2-D Laplacian on the simulated GPU and checks them
//! against the analytic spectrum.
//!
//! Run with `cargo run -p pyginkgo-examples --bin rayleigh_ritz`.

use pyginkgo as pg;
use pyginkgo::algorithms::{lanczos, power_iteration, rayleigh_ritz};

fn main() -> Result<(), pg::PyGinkgoError> {
    let dev = pg::device("cuda")?;
    let side = 24usize; // 2-D grid => n = 576
    let gen = pygko_matgen::generators::poisson2d("lap2d", side, side);
    let mtx = pg::SparseMatrix::from_triplets(
        &dev,
        (gen.rows, gen.cols),
        &gen.triplets,
        "double",
        "int32",
        "Csr",
    )?;
    println!(
        "2-D Laplacian, n = {}, nnz = {}, device = {}",
        mtx.shape().0,
        mtx.nnz(),
        dev.hardware_name()
    );

    // Analytic spectrum of the 5-point Laplacian on a side x side grid:
    // 4 - 2cos(i pi/(s+1)) - 2cos(j pi/(s+1)).
    let theta = std::f64::consts::PI / (side as f64 + 1.0);
    let lambda_max = 4.0 - 4.0 * ((side as f64) * theta).cos();

    // Rayleigh-Ritz with an 8-dimensional subspace. The Laplacian's top
    // eigenvalues cluster, so subspace iteration needs a few hundred steps.
    let pairs = rayleigh_ritz(&mtx, 8, 250, 2024)?;
    println!("\nRayleigh-Ritz (k = 8):");
    for (i, p) in pairs.iter().take(4).enumerate() {
        println!(
            "  theta_{i} = {:.6}   residual ||A v - theta v|| = {:.2e}",
            p.value, p.residual
        );
    }
    println!("  analytic lambda_max = {lambda_max:.6}");
    assert!(
        (pairs[0].value - lambda_max).abs() < 2e-2,
        "Rayleigh-Ritz missed the dominant eigenvalue: {} vs {lambda_max}",
        pairs[0].value
    );

    // Cross-check with the other facade-level eigensolvers.
    let p = power_iteration(&mtx, 3000, 1e-12, 7)?;
    println!(
        "\nPower iteration: lambda = {:.6} in {} iterations (residual {:.2e})",
        p.value, p.iterations, p.residual
    );
    let l = lanczos(&mtx, 40, 7)?;
    println!(
        "Lanczos(40):     lambda = {:.6} ({} steps)",
        l.values.last().unwrap(),
        l.steps
    );
    assert!((p.value - pairs[0].value).abs() < 2e-2);
    assert!((l.values.last().unwrap() - lambda_max).abs() < 5e-2);
    println!("\nall three facade-level eigensolvers agree");
    Ok(())
}
