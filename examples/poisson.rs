//! Scientific-computing workflow: a 3-D Poisson (steady heat) problem
//! solved with CG on every available device, with and without
//! preconditioning — the workload class the paper's introduction motivates.
//!
//! Run with `cargo run -p pyginkgo-examples --bin poisson`.

use pyginkgo as pg;

fn main() -> Result<(), pg::PyGinkgoError> {
    let gen = pygko_matgen::generators::poisson3d("heat3d", 16, 16, 16);
    println!(
        "3-D Poisson: n = {}, nnz = {} (7-point stencil)\n",
        gen.rows,
        gen.triplets.len()
    );

    println!(
        "{:<28} {:>14} {:>7} {:>12} {:>14}",
        "device", "preconditioner", "iters", "reduction", "virtual time"
    );
    for device_name in ["reference", "omp", "cuda", "hip"] {
        let dev = pg::device(device_name)?;
        let mtx = pg::SparseMatrix::from_triplets(
            &dev,
            (gen.rows, gen.cols),
            &gen.triplets,
            "double",
            "int32",
            "Csr",
        )?;
        let n = mtx.shape().0;
        let b = pg::as_tensor_fill(&dev, (n, 1), "double", 1.0)?;

        for precond in ["none", "jacobi", "ic"] {
            let pre = match precond {
                "none" => None,
                "jacobi" => Some(pg::preconditioner::jacobi(&dev, &mtx)?),
                _ => Some(pg::preconditioner::ic(&dev, &mtx)?),
            };
            let solver = pg::solver::cg(&dev, &mtx, pre, 2000, 1e-10)?;
            let mut x = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0)?;

            let t0 = dev.executor().timeline().snapshot();
            let log = solver.apply(&b, &mut x)?;
            let elapsed = dev.executor().timeline().snapshot().since(&t0);

            println!(
                "{:<28} {:>14} {:>7} {:>12.2e} {:>11.3} ms",
                dev.hardware_name(),
                precond,
                log.iterations(),
                log.reduction(),
                elapsed.seconds() * 1e3
            );
            assert!(log.converged(), "{device_name}/{precond} failed to converge");
        }
    }
    println!("\n(times are virtual: the deterministic machine-model simulation documented in DESIGN.md)");
    Ok(())
}
