//! Image filtering and deconvolution with the convolution operator — the
//! feature the paper's outlook names ("a convolution kernel ... required in
//! image processing and convolutional neural networks"), implemented here
//! as a composable LinOp and driven entirely through the facade.
//!
//! Run with `cargo run -p pyginkgo-examples --bin image_filter --release`.

use pyginkgo as pg;

fn main() -> Result<(), pg::PyGinkgoError> {
    let dev = pg::device("cuda")?;
    let (h, w) = (32usize, 32usize);
    let n = h * w;

    // A synthetic "image": a bright square on a dark background.
    let mut pixels = vec![0.0f64; n];
    for y in 10..22 {
        for x in 10..22 {
            pixels[y * w + x] = 1.0;
        }
    }
    let image = pg::as_tensor(pixels.clone(), &dev, (n, 1), "float")?;

    // Gaussian-ish blur.
    let blur_taps: Vec<f64> = [1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0]
        .iter()
        .map(|v| v / 16.0)
        .collect();
    let blur = pg::conv2d(&dev, (h, w), (3, 3), &blur_taps, "float")?;
    let blurred = blur.apply(&image)?;
    println!(
        "blur:        mass {:.3} -> {:.3} (interior mass preserved)",
        image.to_vec().iter().sum::<f64>(),
        blurred.to_vec().iter().sum::<f64>()
    );

    // Edge detection: discrete Laplacian highlights the square's border.
    let lap = pg::conv2d(
        &dev,
        (h, w),
        (3, 3),
        &[0.0, -1.0, 0.0, -1.0, 4.0, -1.0, 0.0, -1.0, 0.0],
        "float",
    )?;
    let edges = lap.apply(&image)?;
    let strong_edges = edges.to_vec().iter().filter(|v| v.abs() > 0.5).count();
    println!("edges:       {strong_edges} strong edge pixels (square border = 4 x 12 - 4 corners)");

    // Deconvolution: recover the original from the blurred image by solving
    // blur(x) = blurred with BiCGStab over the convolution LinOp, via the
    // engine's composability (a convolution is just another operator).
    let blur_matrix = {
        // Materialize the blur stencil as an explicit facade sparse matrix.
        let eng = gko::matrix::Conv2d::<f32>::new(
            dev.executor(),
            (h, w),
            (3, 3),
            blur_taps.iter().map(|&v| v as f32).collect(),
        )
        .map_err(pg::PyGinkgoError::from)?
        .to_csr();
        let trip: Vec<(usize, usize, f64)> = {
            let rp = eng.row_ptrs();
            let ci = eng.col_idxs();
            let vals = eng.values();
            let mut t = Vec::with_capacity(eng.nnz());
            for r in 0..n {
                for k in rp[r] as usize..rp[r + 1] as usize {
                    t.push((r, ci[k] as usize, vals[k] as f64));
                }
            }
            t
        };
        pg::SparseMatrix::from_triplets(&dev, (n, n), &trip, "float", "int32", "Csr")?
    };
    println!(
        "stencil:     blur as explicit CSR has {} nonzeros (9-point stencil)",
        blur_matrix.nnz()
    );

    let solver = pg::solver::bicgstab(&dev, &blur_matrix, None, 2000, 1e-10)?;
    let mut recovered = pg::as_tensor_fill(&dev, (n, 1), "float", 0.0)?;
    let log = solver.apply(&blurred, &mut recovered)?;
    let max_err = recovered
        .to_vec()
        .iter()
        .zip(&pixels)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
        ;
    println!(
        "deconvolve:  {} in {} iterations, max pixel error {max_err:.2e}",
        log.stop_reason(),
        log.iterations()
    );
    assert!(log.converged());
    assert!(max_err < 1e-3, "deconvolution failed: {max_err}");
    println!("\nblur -> edge-detect -> deconvolve all ran through the public facade");
    Ok(())
}
