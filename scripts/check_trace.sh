#!/usr/bin/env sh
# Span-tracing gate: builds and runs the end-to-end trace probe, which arms
# causal tracing (sample_n=1) on a real omp-16 CG solve, scrapes /traces and
# /traces/<id> over raw TCP, and validates that the span parent links form a
# single rooted tree, that the per-lane chunk spans exactly tile every pool
# dispatch, that the Chrome-trace export parses, and that the /runs entry
# links back to the trace. Run from anywhere; quick mode keeps it fast
# enough for CI.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline -p pygko-bench --bin trace_probe
PYGKO_BENCH_QUICK=1 ./target/release/trace_probe

echo "check_trace: span-tree + tiling gate OK"
