#!/usr/bin/env sh
# Benchmark regression gate driver: runs bench_gate against the committed
# baseline, then proves the gate still has teeth by injecting a synthetic
# 2x slowdown and demanding a failure. Run from anywhere.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline -p pygko-bench --bin bench_gate

# 1. The committed candidate must be within tolerance of the baseline.
./target/release/bench_gate

# 2. Self-test: a uniform 2x slowdown must make the gate exit nonzero.
if BENCH_GATE_INJECT=2.0 ./target/release/bench_gate >/dev/null 2>&1; then
    echo "check_bench: FAIL — gate accepted an injected 2x slowdown" >&2
    exit 1
fi
echo "check_bench: gate rejects injected 2x slowdown (self-test OK)"
