#!/usr/bin/env sh
# Static lint gate driver: runs the in-tree lint_gate over the workspace,
# then proves the gate still has teeth — first with its built-in per-rule
# self-test, then by injecting a real violation into the scanned tree and
# demanding a nonzero exit that names the injected file and line. Run from
# anywhere; operates on the workspace containing this script.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline -p pygko-analysis --bin lint_gate

# 1. The committed tree must be clean.
./target/release/lint_gate

# 2. Per-rule self-test: every rule fires on its known-bad snippet and
#    stays silent on the known-good twin.
./target/release/lint_gate --self-test >/dev/null

# 3. End-to-end self-test: an injected bare unwrap inside a panic-free
#    directory must be caught with a file:line diagnostic. The file is
#    unreferenced (not in any mod tree), so cargo never compiles it, and
#    the trap removes it even on failure.
INJECT="crates/engine/src/executor/lint_selftest_injected.rs"
trap 'rm -f "$INJECT"' EXIT
cat > "$INJECT" <<'EOF'
// Scratch file written by scripts/check_lint.sh; deleted on exit.
pub fn injected() -> usize {
    let x: Option<usize> = None;
    x.unwrap()
}
EOF
if OUT=$(./target/release/lint_gate 2>&1); then
    echo "check_lint: FAIL — gate accepted an injected unwrap violation" >&2
    exit 1
fi
case "$OUT" in
*"lint_selftest_injected.rs:4"*) ;;
*)
    echo "check_lint: FAIL — diagnostic did not name the injected file:line" >&2
    echo "$OUT" >&2
    exit 1
    ;;
esac
rm -f "$INJECT"

echo "check_lint: tree clean; gate catches injected violation (self-test OK)"
