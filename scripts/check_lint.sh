#!/usr/bin/env sh
# Static lint gate driver: runs the in-tree lint_gate over the workspace,
# then proves the gate still has teeth — first with its built-in per-rule
# self-test, then by injecting a real violation into the scanned tree and
# demanding a nonzero exit that names the injected file and line. Run from
# anywhere; operates on the workspace containing this script.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline -p pygko-analysis --bin lint_gate

# 1. The committed tree must be clean.
./target/release/lint_gate

# 2. Per-rule self-test: every rule fires on its known-bad snippet and
#    stays silent on the known-good twin.
./target/release/lint_gate --self-test >/dev/null

# 3. End-to-end self-test: an injected bare unwrap inside a panic-free
#    directory must be caught with a file:line diagnostic. The file is
#    unreferenced (not in any mod tree), so cargo never compiles it, and
#    the trap removes it even on failure.
INJECT="crates/engine/src/executor/lint_selftest_injected.rs"
trap 'rm -f "$INJECT"' EXIT
cat > "$INJECT" <<'EOF'
// Scratch file written by scripts/check_lint.sh; deleted on exit.
pub fn injected() -> usize {
    let x: Option<usize> = None;
    x.unwrap()
}
EOF
if OUT=$(./target/release/lint_gate 2>&1); then
    echo "check_lint: FAIL — gate accepted an injected unwrap violation" >&2
    exit 1
fi
case "$OUT" in
*"lint_selftest_injected.rs:4"*) ;;
*)
    echo "check_lint: FAIL — diagnostic did not name the injected file:line" >&2
    echo "$OUT" >&2
    exit 1
    ;;
esac
rm -f "$INJECT"

# 4. End-to-end lock-order test: two annotated mutexes acquired in opposite
#    orders by two functions form a cycle in the lock-acquisition-order
#    graph; the gate must refuse the tree and print the offending chain.
cat > "$INJECT" <<'EOF'
// Scratch file written by scripts/check_lint.sh; deleted on exit.
use std::sync::Mutex;
pub struct Injected {
    a: Mutex<u32>, // lock: injected.a
    b: Mutex<u32>, // lock: injected.b
}
impl Injected {
    pub fn ab(&self) {
        let g = self.a.lock().unwrap_or_default();
        let h = self.b.lock().unwrap_or_default();
        let _ = (g, h);
    }
    pub fn ba(&self) {
        let g = self.b.lock().unwrap_or_default();
        let h = self.a.lock().unwrap_or_default();
        let _ = (g, h);
    }
}
EOF
if OUT=$(./target/release/lint_gate 2>&1); then
    echo "check_lint: FAIL — gate accepted an injected lock-order cycle" >&2
    exit 1
fi
case "$OUT" in
*"[lock-order]"*"lock-order cycle"*"lint_selftest_injected.rs"*) ;;
*)
    echo "check_lint: FAIL — no lock-order cycle diagnostic naming the injected file" >&2
    echo "$OUT" >&2
    exit 1
    ;;
esac
rm -f "$INJECT"

# 5. End-to-end atomic-ordering test: a Relaxed store to an atomic declared
#    as a flag publishes without Release ordering; the gate must refuse the
#    tree naming the injected store's file:line.
cat > "$INJECT" <<'EOF'
// Scratch file written by scripts/check_lint.sh; deleted on exit.
use std::sync::atomic::{AtomicBool, Ordering};
pub struct Injected {
    ready: AtomicBool, // atomic: flag
}
impl Injected {
    pub fn publish(&self) {
        self.ready.store(true, Ordering::Relaxed);
    }
}
EOF
if OUT=$(./target/release/lint_gate 2>&1); then
    echo "check_lint: FAIL — gate accepted an injected Relaxed flag publish" >&2
    exit 1
fi
case "$OUT" in
*"lint_selftest_injected.rs:8"*"[atomic-ordering]"*) ;;
*)
    echo "check_lint: FAIL — no atomic-ordering diagnostic naming the injected file:line" >&2
    echo "$OUT" >&2
    exit 1
    ;;
esac
rm -f "$INJECT"

echo "check_lint: tree clean; gate catches injected unwrap, lock-order cycle, and Relaxed flag publish (self-test OK)"
