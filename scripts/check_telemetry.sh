#!/usr/bin/env sh
# Telemetry plane gate: builds and runs the end-to-end probe, which starts
# the HTTP exporter next to a real CG solve, scrapes /metrics, /healthz and
# /runs over raw TCP, validates the exposition with the in-tree strict
# Prometheus parser, checks the solve's flight report is anomaly-free, and
# self-tests each anomaly detector against its injected fault. Run from
# anywhere; quick mode keeps it fast enough for CI.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline -p pygko-bench --bin telemetry_probe
PYGKO_BENCH_QUICK=1 ./target/release/telemetry_probe

echo "check_telemetry: scrape + detector gate OK"
