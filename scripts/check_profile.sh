#!/usr/bin/env sh
# Continuous-profiling gate: builds and runs the end-to-end profile probe,
# which arms the flame profiler on a real omp-16 CG solve through the
# facade, scrapes /profile (JSON + folded grammar), /profile/diff, and
# /metrics (strict exposition + gko_profile_* / gko_build_info /
# gko_uptime_seconds series) over raw TCP, checks HEAD parity on every
# route, and asserts a rooted, non-empty, node-cap-bounded flame tree.
# Then proves bench_gate's differential attribution has teeth: with a
# uniform injected slowdown forcing regressions and one injected 100x-slow
# kernel path (PROFILE_INJECT=csr), a csr span path must surface as the top
# attributed regression. Run from anywhere.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline -p pygko-bench --bin profile_probe --bin bench_gate

PYGKO_BENCH_QUICK=1 ./target/release/profile_probe

# Attribution self-test: the injected slowdown must fail the gate AND the
# injected 100x csr path must rank first among the attributed span paths.
out="$(BENCH_GATE_INJECT=2.0 PROFILE_INJECT=csr ./target/release/bench_gate 2>&1)" && {
    echo "check_profile: FAIL — gate accepted an injected 2x slowdown" >&2
    exit 1
}
echo "$out" | grep -q "ATTRIBUTED" || {
    echo "check_profile: FAIL — regressed run printed no ATTRIBUTED paths" >&2
    echo "$out" >&2
    exit 1
}
first_attr="$(echo "$out" | grep "ATTRIBUTED" | head -n 1)"
echo "$first_attr" | grep -q "csr" || {
    echo "check_profile: FAIL — injected 100x csr kernel is not the top attributed path:" >&2
    echo "$first_attr" >&2
    exit 1
}
echo "check_profile: top attribution is the injected csr path (self-test OK)"
echo "check_profile: continuous-profiling gate OK"
