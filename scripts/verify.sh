#!/usr/bin/env sh
# Offline verification gate: warning-free release build, full test suite,
# lint-clean clippy, and one wall-clock benchmark smoke run. Run from
# anywhere; operates on the workspace containing this script.
set -eu

cd "$(dirname "$0")/.."

RUSTFLAGS="-D warnings" cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

# Smoke-run a real benchmark binary end to end (quick suite).
PYGKO_BENCH_QUICK=1 cargo run --release --offline -p pygko-bench --bin micro_spmv

echo "verify: OK"
