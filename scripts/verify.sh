#!/usr/bin/env sh
# Offline verification gate: warning-free release build, full test suite,
# lint-clean clippy, and one wall-clock benchmark smoke run. Run from
# anywhere; operates on the workspace containing this script.
set -eu

cd "$(dirname "$0")/.."

RUSTFLAGS="-D warnings" cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

# Static lint gate (plus its injected-violation self-test).
./scripts/check_lint.sh

# Smoke-run a real benchmark binary end to end (quick suite). Quick-mode
# output goes to a scratch directory so it never overwrites the committed
# full-size results/ files.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
PYGKO_BENCH_QUICK=1 PYGKO_RESULTS_DIR="$SMOKE_DIR" \
    cargo run --release --offline -p pygko-bench --bin micro_spmv

# Benchmark regression gate (plus its injected-slowdown self-test).
./scripts/check_bench.sh

# Telemetry plane gate: live scrape endpoints + anomaly-detector self-tests.
./scripts/check_telemetry.sh

# Span-tracing gate: rooted trace trees + per-dispatch chunk tiling.
./scripts/check_trace.sh

# Continuous-profiling gate: flame endpoints + differential attribution.
./scripts/check_profile.sh

echo "verify: OK"
