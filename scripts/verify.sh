#!/usr/bin/env sh
# Offline verification gate: release build, full test suite, and lint-clean
# clippy. Run from anywhere; operates on the workspace containing this script.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "verify: OK"
