//! Integration test package. All tests live in `tests/` (cargo integration
//! test directory); this library only hosts shared helpers.

use pyginkgo as pg;

/// Builds an SPD tridiagonal facade matrix for solver tests.
pub fn spd_system(
    dev: &pg::Device,
    n: usize,
    dtype: &str,
    format: &str,
) -> pg::SparseMatrix {
    let mut t = vec![];
    for i in 0..n {
        t.push((i, i, 4.0));
        if i > 0 {
            t.push((i, i - 1, -1.0));
            t.push((i - 1, i, -1.0));
        }
    }
    pg::SparseMatrix::from_triplets(dev, (n, n), &t, dtype, "int32", format)
        .expect("valid system")
}

/// Residual norm ||b - A x|| computed through the facade.
pub fn residual(mtx: &pg::SparseMatrix, b: &pg::Tensor, x: &pg::Tensor) -> f64 {
    let ax = mtx.spmv(x).expect("spmv");
    let mut r = b.clone();
    r.add_scaled(-1.0, &ax).expect("axpy");
    r.norm()
}
