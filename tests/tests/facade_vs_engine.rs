//! Facade-vs-engine parity: the binding layer must change *costs*, never
//! *results* — the premise of the paper's §6.3 overhead study.

use gko::linop::LinOp;
use gko::matrix::{Csr, Dense};
use gko::{Dim2, Executor};
use pyginkgo as pg;
use std::sync::Arc;

fn triplets(n: usize) -> Vec<(usize, usize, f64)> {
    let mut t = vec![];
    for i in 0..n {
        t.push((i, i, 3.0 + (i % 3) as f64));
        if i > 0 {
            t.push((i, i - 1, -1.0));
        }
        if i + 2 < n {
            t.push((i, i + 2, 0.25));
        }
    }
    t
}

#[test]
fn spmv_results_are_bit_identical() {
    let n = 500;
    let t = triplets(n);

    // Engine path.
    let exec = Executor::cuda(0);
    let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
    let b = Dense::<f64>::vector(&exec, n, 1.5);
    let mut x_engine = Dense::zeros(&exec, Dim2::new(n, 1));
    a.apply(&b, &mut x_engine).unwrap();

    // Facade path.
    let dev = pg::device("cuda").unwrap();
    let m = pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
    let bt = pg::as_tensor_fill(&dev, (n, 1), "double", 1.5).unwrap();
    let x_facade = m.spmv(&bt).unwrap();

    assert_eq!(x_engine.to_host_vec(), x_facade.to_vec());
}

#[test]
fn facade_adds_binding_time_but_not_much() {
    let n = 2000;
    let t = triplets(n);

    // Engine: direct kernel calls on a fresh executor.
    let exec = Executor::cuda(0);
    let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
    let b = Dense::<f64>::vector(&exec, n, 1.0);
    let mut x = Dense::zeros(&exec, Dim2::new(n, 1));
    let t0 = exec.timeline().snapshot();
    a.apply(&b, &mut x).unwrap();
    let engine_ns = exec.timeline().snapshot().since(&t0).ns;

    // Facade: same operation through the dynamic layer on its own executor.
    let dev = pg::device("cuda").unwrap();
    let m = pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
    let bt = pg::as_tensor_fill(&dev, (n, 1), "double", 1.0).unwrap();
    let mut xt = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0).unwrap();
    let t0 = dev.executor().timeline().snapshot();
    m.spmv_into(&bt, &mut xt).unwrap();
    let facade_ns = dev.executor().timeline().snapshot().since(&t0).ns;

    assert!(
        facade_ns > engine_ns,
        "binding layer must cost something: {facade_ns} vs {engine_ns}"
    );
    let overhead_ns = facade_ns - engine_ns;
    // §6.3: per-call overhead is in the 1e-7..1e-5 s range.
    assert!(
        (50..100_000).contains(&overhead_ns),
        "overhead {overhead_ns} ns outside the paper's range"
    );
}

#[test]
fn overhead_fraction_shrinks_with_matrix_size() {
    // Fig. 5b's shape: relative overhead drops as nnz grows.
    let mut fractions = Vec::new();
    for n in [500usize, 5_000, 50_000] {
        let t = triplets(n);

        let exec = Executor::cuda(0);
        let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
        let b = Dense::<f64>::vector(&exec, n, 1.0);
        let mut x = Dense::zeros(&exec, Dim2::new(n, 1));
        let t0 = exec.timeline().snapshot();
        a.apply(&b, &mut x).unwrap();
        let engine_ns = exec.timeline().snapshot().since(&t0).ns as f64;

        let dev = pg::device("cuda").unwrap();
        let m =
            pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
        let bt = pg::as_tensor_fill(&dev, (n, 1), "double", 1.0).unwrap();
        let mut xt = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0).unwrap();
        let t0 = dev.executor().timeline().snapshot();
        m.spmv_into(&bt, &mut xt).unwrap();
        let facade_ns = dev.executor().timeline().snapshot().since(&t0).ns as f64;

        fractions.push((facade_ns - engine_ns) / facade_ns);
    }
    assert!(
        fractions[0] > fractions[2],
        "overhead fraction should shrink with size: {fractions:?}"
    );
}

#[test]
fn gil_serializes_and_counts_calls() {
    let dev = pg::device("reference").unwrap();
    let before = pg::gil::total_calls();
    let m = pg::SparseMatrix::from_triplets(
        &dev,
        (4, 4),
        &triplets(4),
        "double",
        "int32",
        "Csr",
    )
    .unwrap();
    let b = pg::as_tensor_fill(&dev, (4, 1), "double", 1.0).unwrap();
    let _ = m.spmv(&b).unwrap();
    let calls = pg::gil::total_calls() - before;
    assert!(calls >= 3, "construction + tensor + spmv crossings, got {calls}");
}

#[test]
fn solver_logger_matches_between_paths() {
    // Engine CG and facade CG over the same matrix must do identical
    // iteration counts (same algorithm behind the binding).
    let n = 80;
    let t = triplets(n);

    let exec = Executor::reference();
    let a = Arc::new(Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap());
    let engine = gko::solver::Cg::new(a as Arc<dyn LinOp<f64>>)
        .unwrap()
        .with_criteria(gko::stop::Criteria::iterations_and_reduction(500, 1e-9));
    let b = Dense::<f64>::vector(&exec, n, 1.0);
    let mut x = Dense::<f64>::vector(&exec, n, 0.0);
    engine.apply(&b, &mut x).unwrap();
    let engine_iters = engine.logger().snapshot().iterations;

    let dev = pg::device("reference").unwrap();
    let m = pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
    let bt = pg::as_tensor_fill(&dev, (n, 1), "double", 1.0).unwrap();
    let mut xt = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0).unwrap();
    let solver = pg::solver::cg(&dev, &m, None, 500, 1e-9).unwrap();
    let log = solver.apply(&bt, &mut xt).unwrap();

    assert_eq!(log.iterations(), engine_iters);
    assert_eq!(xt.to_vec(), x.to_host_vec());
}
