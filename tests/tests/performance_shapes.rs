//! Cross-crate assertions on the performance-model *shapes* the paper's
//! figures show. These are the invariants the benchmark harness relies on;
//! testing them here keeps the figures honest under refactoring.

use gko::linop::LinOp;
use gko::matrix::{Csr, Dense};
use gko::{Dim2, Executor};
use pygko_baselines::scipy::ScipyCsr;
use pygko_baselines::scipy_executor;
use std::sync::Arc;

fn spmv_ns(exec: &Executor, op: &dyn LinOp<f32>, n: usize) -> u64 {
    let b = Dense::<f32>::vector(exec, n, 1.0);
    let mut x = Dense::zeros(exec, Dim2::new(n, 1));
    // The figures model steady-state SpMV: warm up once so the one-time
    // inspector (plan build) is outside the timed window, matching the
    // benchmark harness.
    op.apply(&b, &mut x).unwrap();
    let t0 = exec.timeline().snapshot();
    op.apply(&b, &mut x).unwrap();
    exec.timeline().snapshot().since(&t0).ns
}

fn poisson_triplets(n: usize) -> Vec<(usize, usize, f32)> {
    let mut t = vec![];
    for i in 0..n {
        t.push((i, i, 4.0f32));
        if i > 0 {
            t.push((i, i - 1, -1.0));
        }
        if i + 1 < n {
            t.push((i, i + 1, -1.0));
        }
    }
    t
}

/// Fig. 3a's premise: on large matrices the GPU beats one CPU core by a
/// large factor, and the factor grows with nnz.
#[test]
fn gpu_speedup_over_scipy_grows_with_nnz() {
    let mut speedups = Vec::new();
    for n in [2_000usize, 50_000, 500_000] {
        let t = poisson_triplets(n);

        let sp_exec = scipy_executor();
        let sp = ScipyCsr::new(Arc::new(
            Csr::<f32, i32>::from_triplets(&sp_exec, Dim2::square(n), &t).unwrap(),
        ));
        let scipy_ns = spmv_ns(&sp_exec, &sp, n);

        let gpu = Executor::cuda(0);
        let a = Csr::<f32, i32>::from_triplets(&gpu, Dim2::square(n), &t).unwrap();
        let gpu_ns = spmv_ns(&gpu, &a, n);

        speedups.push(scipy_ns as f64 / gpu_ns as f64);
    }
    assert!(
        speedups[0] < speedups[1] && speedups[1] < speedups[2],
        "speedup should grow with nnz: {speedups:?}"
    );
    assert!(speedups[2] > 20.0, "large-matrix speedup {:.1} too small", speedups[2]);
}

/// Fig. 3b's premise: CPU thread scaling is near-linear at first, then
/// flattens at the socket bandwidth cap.
#[test]
fn cpu_thread_scaling_then_saturation() {
    let n = 400_000usize;
    let t = poisson_triplets(n);
    let mut times = Vec::new();
    for threads in [1usize, 2, 4, 8, 16, 32] {
        let exec = Executor::omp(threads);
        let a = Csr::<f32, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
        times.push((threads, spmv_ns(&exec, &a, n) as f64));
    }
    // Monotone improvement.
    for w in times.windows(2) {
        assert!(
            w[1].1 <= w[0].1 * 1.05,
            "more threads should not be slower: {times:?}"
        );
    }
    // Near-linear from 1 -> 4 threads.
    let s4 = times[0].1 / times[2].1;
    assert!(s4 > 2.5, "4-thread speedup {s4:.2} too low");
    // Saturation: 16 -> 32 gains little (bandwidth cap).
    let s_16_32 = times[4].1 / times[5].1;
    assert!(
        s_16_32 < 1.5,
        "16->32 threads should saturate, got {s_16_32:.2}"
    );
}

/// §6.1.2's observation: on a single thread, SciPy's plain C loop beats the
/// engine's chunked/parallel-ready kernel (which pays chunking overhead),
/// while the engine wins decisively as threads scale.
#[test]
fn scipy_competitive_at_one_thread_loses_at_32() {
    let n = 200_000usize;
    let t = poisson_triplets(n);

    let sp_exec = scipy_executor();
    let sp = ScipyCsr::new(Arc::new(
        Csr::<f32, i32>::from_triplets(&sp_exec, Dim2::square(n), &t).unwrap(),
    ));
    let scipy_ns = spmv_ns(&sp_exec, &sp, n) as f64;

    let omp1 = Executor::omp(1);
    let a1 = Csr::<f32, i32>::from_triplets(&omp1, Dim2::square(n), &t).unwrap();
    let omp1_ns = spmv_ns(&omp1, &a1, n) as f64;

    let omp32 = Executor::omp(32);
    let a32 = Csr::<f32, i32>::from_triplets(&omp32, Dim2::square(n), &t).unwrap();
    let omp32_ns = spmv_ns(&omp32, &a32, n) as f64;

    assert!(
        scipy_ns <= omp1_ns * 1.1,
        "single-thread scipy {scipy_ns} should be at least competitive with omp(1) {omp1_ns}"
    );
    assert!(
        scipy_ns / omp32_ns > 5.0,
        "32 threads should beat scipy by a wide margin: {}",
        scipy_ns / omp32_ns
    );
}

/// Fig. 5a's premise: the A100 model outperforms the MI100 model, more so
/// at large nnz.
#[test]
fn a100_beats_mi100_especially_when_large() {
    let mut ratios = Vec::new();
    for n in [10_000usize, 1_000_000] {
        let t = poisson_triplets(n);
        let cuda = Executor::cuda(0);
        let a = Csr::<f32, i32>::from_triplets(&cuda, Dim2::square(n), &t).unwrap();
        let cuda_ns = spmv_ns(&cuda, &a, n) as f64;

        let hip = Executor::hip(0);
        let ah = Csr::<f32, i32>::from_triplets(&hip, Dim2::square(n), &t).unwrap();
        let hip_ns = spmv_ns(&hip, &ah, n) as f64;
        ratios.push(hip_ns / cuda_ns);
    }
    assert!(ratios[1] > 1.0, "A100 should win at scale: {ratios:?}");
}

/// Fig. 4's premise: diagonal mass matrices (A, B) are better on CPU than
/// GPU; large irregular matrices (D, F) are better on GPU.
#[test]
fn small_matrices_prefer_cpu_large_prefer_gpu() {
    // Tiny diagonal matrix (like bcsstm37): launch overhead dominates GPU.
    let n_small = 25_000usize;
    let t_small: Vec<(usize, usize, f32)> = (0..n_small).map(|i| (i, i, 2.0f32)).collect();

    let cpu = Executor::omp(32);
    let a = Csr::<f32, i32>::from_triplets(&cpu, Dim2::square(n_small), &t_small).unwrap();
    let cpu_ns = spmv_ns(&cpu, &a, n_small) as f64;

    let gpu = Executor::cuda(0);
    let ag = Csr::<f32, i32>::from_triplets(&gpu, Dim2::square(n_small), &t_small).unwrap();
    let gpu_ns = spmv_ns(&gpu, &ag, n_small) as f64;
    assert!(
        cpu_ns < gpu_ns * 1.2,
        "small diagonal matrix: CPU {cpu_ns} should be competitive with GPU {gpu_ns}"
    );

    // Large matrix: GPU wins big.
    let n_large = 800_000usize;
    let t_large = poisson_triplets(n_large);
    let a = Csr::<f32, i32>::from_triplets(&cpu, Dim2::square(n_large), &t_large).unwrap();
    let cpu_ns = spmv_ns(&cpu, &a, n_large) as f64;
    let ag = Csr::<f32, i32>::from_triplets(&gpu, Dim2::square(n_large), &t_large).unwrap();
    let gpu_ns = spmv_ns(&gpu, &ag, n_large) as f64;
    assert!(
        gpu_ns * 2.0 < cpu_ns,
        "large matrix: GPU {gpu_ns} should clearly beat CPU {cpu_ns}"
    );
}
