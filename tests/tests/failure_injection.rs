//! Failure-injection tests: every documented failure mode must surface as
//! the right error (or logger state), never as a panic or a wrong answer.

use pyginkgo as pg;
use pyginkgo_integration_tests::spd_system;

#[test]
fn non_convergence_is_reported_through_the_logger_not_an_error() {
    let dev = pg::device("reference").unwrap();
    // An ill-conditioned unsymmetric system CG is not suited for.
    let n = 30;
    let mut t = vec![];
    for i in 0..n {
        t.push((i, i, 1e-6 + i as f64));
        if i + 1 < n {
            t.push((i, i + 1, 1e3));
        }
    }
    let mtx = pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
    let solver = pg::solver::cg(&dev, &mtx, None, 20, 1e-14).unwrap();
    let b = pg::as_tensor_fill(&dev, (n, 1), "double", 1.0).unwrap();
    let mut x = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0).unwrap();
    let log = solver.apply(&b, &mut x).expect("apply itself must not error");
    assert!(!log.converged());
    assert!(
        log.stop_reason() == "max iterations" || log.stop_reason() == "breakdown",
        "got {}",
        log.stop_reason()
    );
}

#[test]
fn singular_factorizations_raise_runtime_errors() {
    let dev = pg::device("reference").unwrap();
    // Structurally missing diagonal.
    let mtx = pg::SparseMatrix::from_triplets(
        &dev,
        (3, 3),
        &[(0, 1, 1.0), (1, 0, 1.0), (2, 2, 1.0)],
        "double",
        "int32",
        "Csr",
    )
    .unwrap();
    assert!(matches!(
        pg::preconditioner::ilu(&dev, &mtx),
        Err(pg::PyGinkgoError::Runtime(_))
    ));
    assert!(matches!(
        pg::preconditioner::ic(&dev, &mtx),
        Err(pg::PyGinkgoError::Runtime(_))
    ));
    assert!(matches!(
        pg::preconditioner::jacobi(&dev, &mtx),
        Err(pg::PyGinkgoError::Runtime(_))
    ));
    // Singular matrix for the direct solver.
    let singular = pg::SparseMatrix::from_triplets(
        &dev,
        (2, 2),
        &[(0, 0, 1.0), (1, 0, 1.0)],
        "double",
        "int32",
        "Csr",
    )
    .unwrap();
    assert!(pg::solver::direct(&dev, &singular).is_err());
}

#[test]
fn shape_and_dtype_mismatches_are_typed_errors() {
    let dev = pg::device("reference").unwrap();
    let mtx = spd_system(&dev, 8, "double", "Csr");
    // Wrong-shaped right-hand side.
    let solver = pg::solver::cg(&dev, &mtx, None, 10, 1e-6).unwrap();
    let b_short = pg::as_tensor_fill(&dev, (4, 1), "double", 1.0).unwrap();
    let mut x = pg::as_tensor_fill(&dev, (8, 1), "double", 0.0).unwrap();
    assert!(matches!(
        solver.apply(&b_short, &mut x),
        Err(pg::PyGinkgoError::Value(_))
    ));
    // Wrong dtype rhs.
    let b_f32 = pg::as_tensor_fill(&dev, (8, 1), "float", 1.0).unwrap();
    let mut x_f32 = pg::as_tensor_fill(&dev, (8, 1), "float", 0.0).unwrap();
    assert!(matches!(
        solver.apply(&b_f32, &mut x_f32),
        Err(pg::PyGinkgoError::Type(_))
    ));
    // SpMV against a vector on a different device's memory space.
    let gpu = pg::device("cuda").unwrap();
    let b_gpu = pg::as_tensor_fill(&gpu, (8, 1), "double", 1.0).unwrap();
    assert!(mtx.spmv(&b_gpu).is_err());
}

#[test]
fn malformed_inputs_never_panic() {
    let dev = pg::device("reference").unwrap();
    // Out-of-range triplets.
    assert!(pg::SparseMatrix::from_triplets(
        &dev,
        (2, 2),
        &[(9, 9, 1.0)],
        "double",
        "int32",
        "Csr"
    )
    .is_err());
    // Unknown strings everywhere.
    assert!(pg::device("quantum-annealer").is_err());
    assert!(pg::SparseMatrix::from_triplets(&dev, (1, 1), &[], "f128", "int32", "Csr").is_err());
    assert!(pg::SparseMatrix::from_triplets(&dev, (1, 1), &[], "double", "uint8", "Csr").is_err());
    assert!(pg::SparseMatrix::from_triplets(&dev, (1, 1), &[], "double", "int32", "Sellp").is_err());
    // Empty matrix with a solver: 0x0 system is degenerate but defined.
    let empty =
        pg::SparseMatrix::from_triplets(&dev, (0, 0), &[], "double", "int32", "Csr").unwrap();
    assert_eq!(empty.nnz(), 0);
}

#[test]
fn breakdown_in_krylov_solvers_is_graceful() {
    let dev = pg::device("reference").unwrap();
    // A zero matrix forces immediate breakdown in CG (rho = 0 after the
    // first products); the solver must return with a breakdown record.
    let n = 6;
    let t: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 0.0)).collect();
    let mtx = pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
    let solver = pg::solver::cg(&dev, &mtx, None, 50, 1e-8).unwrap();
    let b = pg::as_tensor_fill(&dev, (n, 1), "double", 1.0).unwrap();
    let mut x = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0).unwrap();
    let log = solver.apply(&b, &mut x).expect("breakdown is not an Err");
    assert_eq!(log.stop_reason(), "breakdown");
}

#[test]
fn config_solver_rejects_nonsense_cleanly() {
    let dev = pg::device("reference").unwrap();
    let mtx = spd_system(&dev, 8, "double", "Csr");
    let b = pg::as_tensor_fill(&dev, (8, 1), "double", 1.0).unwrap();
    let mut x = pg::as_tensor_fill(&dev, (8, 1), "double", 0.0).unwrap();
    for (method, precond) in [
        ("warp-drive", Some("jacobi")),
        ("cg", Some("flux-capacitor")),
    ] {
        let opts = pg::config_solver::SolveOptions {
            method: method.into(),
            preconditioner: precond.map(Into::into),
            ..Default::default()
        };
        assert!(matches!(
            pg::solve(&mtx, &b, &mut x, &opts),
            Err(pg::PyGinkgoError::Value(_))
        ));
    }
}

#[test]
fn reading_garbage_files_fails_with_context() {
    let dev = pg::device("reference").unwrap();
    let dir = std::env::temp_dir().join("pyginkgo_failure_tests");
    std::fs::create_dir_all(&dir).unwrap();
    // Truncated file.
    let p = dir.join("truncated.mtx");
    std::fs::write(&p, "%%MatrixMarket matrix coordinate real general\n10 10 5\n1 1 1.0\n").unwrap();
    let err = pg::read(&dev, &p, "double", "Csr").unwrap_err();
    assert!(err.to_string().contains("declared"), "{err}");
    // Binary junk.
    let p2 = dir.join("junk.mtx");
    std::fs::write(&p2, [0u8, 159, 146, 150]).unwrap();
    assert!(pg::read(&dev, &p2, "double", "Csr").is_err());
    let _ = std::fs::remove_file(p);
    let _ = std::fs::remove_file(p2);
}
