//! Cross-crate property-based tests on randomly generated sparse matrices.

use proptest::prelude::*;
use pyginkgo as pg;

/// Strategy: a random sparse square matrix as (n, triplets).
fn sparse_matrix() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..24).prop_flat_map(|n| {
        let entry = (0..n, 0..n, -10.0f64..10.0);
        (Just(n), proptest::collection::vec(entry, 1..60)).prop_map(|(n, mut entries)| {
            // Deduplicate coordinates (facade sums duplicates; keep the
            // property statements simple by avoiding them).
            entries.sort_by_key(|&(r, c, _)| (r, c));
            entries.dedup_by_key(|&mut (r, c, _)| (r, c));
            (n, entries)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR <-> COO conversion is lossless through the facade.
    #[test]
    fn format_conversion_roundtrip((n, t) in sparse_matrix()) {
        let dev = pg::device("reference").unwrap();
        let csr = pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
        let back = csr.convert("Coo").unwrap().convert("Csr").unwrap();
        prop_assert_eq!(back.nnz(), csr.nnz());
        prop_assert_eq!(back.to_dense().to_vec(), csr.to_dense().to_vec());
    }

    /// SpMV is linear: A(alpha x + beta y) == alpha A x + beta A y.
    #[test]
    fn spmv_linearity(
        (n, t) in sparse_matrix(),
        alpha in -3.0f64..3.0,
        beta in -3.0f64..3.0,
        seed in 0u64..1000,
    ) {
        let dev = pg::device("reference").unwrap();
        let a = pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
        let mut rng = pygko_sim::rng::Xoshiro256pp::seed_from_u64(seed);
        let xv: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let yv: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let x = pg::as_tensor(xv, &dev, (n, 1), "double").unwrap();
        let y = pg::as_tensor(yv, &dev, (n, 1), "double").unwrap();

        // lhs = A (alpha x + beta y)
        let mut comb = x.clone();
        comb.scale(alpha);
        comb.add_scaled(beta, &y).unwrap();
        let lhs = a.spmv(&comb).unwrap();

        // rhs = alpha A x + beta A y
        let mut rhs = a.spmv(&x).unwrap();
        rhs.scale(alpha);
        let ay = a.spmv(&y).unwrap();
        rhs.add_scaled(beta, &ay).unwrap();

        for (l, r) in lhs.to_vec().iter().zip(rhs.to_vec()) {
            prop_assert!((l - r).abs() <= 1e-9 * (1.0 + r.abs()), "{l} vs {r}");
        }
    }

    /// The engine and every baseline compute the same SpMV values.
    #[test]
    fn baselines_agree_with_engine((n, t) in sparse_matrix()) {
        use gko::linop::LinOp;
        use gko::matrix::{Coo, Csr, Dense};
        use gko::Dim2;
        use std::sync::Arc;

        let exec = pygko_baselines::gpu_executor("test");
        let t64: Vec<(usize, usize, f64)> = t.clone();
        let dim = Dim2::square(n);
        let csr = Arc::new(Csr::<f64, i32>::from_triplets(&exec, dim, &t64).unwrap());
        let coo = Arc::new(Coo::from_csr(&csr));
        let b = Dense::<f64>::vector(&exec, n, 1.0);
        let mut want = Dense::zeros(&exec, Dim2::new(n, 1));
        csr.apply(&b, &mut want).unwrap();
        let want = want.to_host_vec();

        macro_rules! check {
            ($op:expr, $name:expr) => {{
                let mut x = Dense::zeros(&exec, Dim2::new(n, 1));
                $op.apply(&b, &mut x).unwrap();
                for (got, w) in x.to_host_vec().iter().zip(&want) {
                    prop_assert!((got - w).abs() <= 1e-10 * (1.0 + w.abs()),
                        "{}: {got} vs {w}", $name);
                }
            }};
        }
        check!(pygko_baselines::scipy::ScipyCsr::new(csr.clone()), "scipy");
        check!(pygko_baselines::cupy::CupyCsr::new(csr.clone()), "cupy");
        check!(pygko_baselines::torch::TorchCsr::new(csr.clone()), "torch-csr");
        check!(pygko_baselines::torch::TorchCoo::new(coo.clone()), "torch-coo");
        check!(pygko_baselines::tf::TfCoo::new(coo.clone()), "tf");
    }

    /// Matrix Market write-read is the identity on facade matrices.
    #[test]
    fn mtx_roundtrip((n, t) in sparse_matrix()) {
        let dev = pg::device("reference").unwrap();
        let m = pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
        let dir = std::env::temp_dir().join("pyginkgo_proptest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("m_{n}_{}.mtx", m.nnz()));
        pg::write(&m, &path).unwrap();
        let back = pg::read(&dev, &path, "double", "Csr").unwrap();
        prop_assert_eq!(back.to_dense().to_vec(), m.to_dense().to_vec());
        let _ = std::fs::remove_file(path);
    }

    /// The direct solver really solves: ||b - A x|| is tiny whenever the
    /// matrix is nonsingular (diagonally dominated construction).
    #[test]
    fn direct_solver_solves((n, mut t) in sparse_matrix()) {
        // Make the matrix safely nonsingular.
        let mut row_abs = vec![0.0f64; n];
        for &(r, _, v) in &t {
            row_abs[r] += v.abs();
        }
        t.retain(|&(r, c, _)| r != c);
        for (i, ra) in row_abs.iter().enumerate() {
            t.push((i, i, ra + 1.0));
        }
        let dev = pg::device("reference").unwrap();
        let a = pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
        let solver = pg::solver::direct(&dev, &a).unwrap();
        let b = pg::as_tensor_fill(&dev, (n, 1), "double", 1.0).unwrap();
        let mut x = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0).unwrap();
        solver.apply(&b, &mut x).unwrap();
        let ax = a.spmv(&x).unwrap();
        let mut r = b.clone();
        r.add_scaled(-1.0, &ax).unwrap();
        prop_assert!(r.norm() < 1e-8, "residual {}", r.norm());
    }

    /// Virtual kernel time is monotone in matrix size for a fixed structure.
    #[test]
    fn virtual_time_monotone_in_size(k in 1usize..6) {
        use gko::matrix::{Csr, Dense};
        use gko::linop::LinOp;
        use gko::Dim2;
        let mut last = 0.0f64;
        for scale in [1usize, 8] {
            let n = 1000 * k * scale;
            let exec = gko::Executor::cuda(0);
            let t: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1.0)).collect();
            let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
            let b = Dense::<f64>::vector(&exec, n, 1.0);
            let mut x = Dense::zeros(&exec, Dim2::new(n, 1));
            let t0 = exec.timeline().snapshot();
            a.apply(&b, &mut x).unwrap();
            let secs = exec.timeline().snapshot().since(&t0).seconds();
            prop_assert!(secs >= last, "time must grow with size");
            last = secs;
        }
    }
}
