//! Cross-crate randomized tests on random sparse matrices, driven by the
//! deterministic in-tree harness (`pygko_sim::testing`).

use pyginkgo as pg;
use pygko_sim::rng::Xoshiro256pp;
use pygko_sim::testing::{check, check_cases, sparse_triplets};

/// A random sparse square matrix as (n, unique sorted triplets).
fn sparse_matrix(rng: &mut Xoshiro256pp) -> (usize, Vec<(usize, usize, f64)>) {
    sparse_triplets(rng, 2, 24, 60, 10.0)
}

/// CSR <-> COO conversion is lossless through the facade.
#[test]
fn format_conversion_roundtrip() {
    check("format_conversion_roundtrip", |rng| {
        let (n, t) = sparse_matrix(rng);
        let dev = pg::device("reference").unwrap();
        let csr =
            pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
        let back = csr.convert("Coo").unwrap().convert("Csr").unwrap();
        assert_eq!(back.nnz(), csr.nnz());
        assert_eq!(back.to_dense().to_vec(), csr.to_dense().to_vec());
    });
}

/// SpMV is linear: A(alpha x + beta y) == alpha A x + beta A y.
#[test]
fn spmv_linearity() {
    check("spmv_linearity", |rng| {
        let (n, t) = sparse_matrix(rng);
        let alpha = rng.range_f64(-3.0, 3.0);
        let beta = rng.range_f64(-3.0, 3.0);
        let dev = pg::device("reference").unwrap();
        let a =
            pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
        let xv: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let yv: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
        let x = pg::as_tensor(xv, &dev, (n, 1), "double").unwrap();
        let y = pg::as_tensor(yv, &dev, (n, 1), "double").unwrap();

        // lhs = A (alpha x + beta y)
        let mut comb = x.clone();
        comb.scale(alpha);
        comb.add_scaled(beta, &y).unwrap();
        let lhs = a.spmv(&comb).unwrap();

        // rhs = alpha A x + beta A y
        let mut rhs = a.spmv(&x).unwrap();
        rhs.scale(alpha);
        let ay = a.spmv(&y).unwrap();
        rhs.add_scaled(beta, &ay).unwrap();

        for (l, r) in lhs.to_vec().iter().zip(rhs.to_vec()) {
            assert!((l - r).abs() <= 1e-9 * (1.0 + r.abs()), "{l} vs {r}");
        }
    });
}

/// The engine and every baseline compute the same SpMV values.
#[test]
fn baselines_agree_with_engine() {
    use gko::linop::LinOp;
    use gko::matrix::{Coo, Csr, Dense};
    use gko::Dim2;
    use std::sync::Arc;
    check("baselines_agree_with_engine", |rng| {
        let (n, t) = sparse_matrix(rng);
        let exec = pygko_baselines::gpu_executor("test");
        let dim = Dim2::square(n);
        let csr = Arc::new(Csr::<f64, i32>::from_triplets(&exec, dim, &t).unwrap());
        let coo = Arc::new(Coo::from_csr(&csr));
        let b = Dense::<f64>::vector(&exec, n, 1.0);
        let mut want = Dense::zeros(&exec, Dim2::new(n, 1));
        csr.apply(&b, &mut want).unwrap();
        let want = want.to_host_vec();

        macro_rules! check_op {
            ($op:expr, $name:expr) => {{
                let mut x = Dense::zeros(&exec, Dim2::new(n, 1));
                $op.apply(&b, &mut x).unwrap();
                for (got, w) in x.to_host_vec().iter().zip(&want) {
                    assert!(
                        (got - w).abs() <= 1e-10 * (1.0 + w.abs()),
                        "{}: {got} vs {w}",
                        $name
                    );
                }
            }};
        }
        check_op!(pygko_baselines::scipy::ScipyCsr::new(csr.clone()), "scipy");
        check_op!(pygko_baselines::cupy::CupyCsr::new(csr.clone()), "cupy");
        check_op!(pygko_baselines::torch::TorchCsr::new(csr.clone()), "torch-csr");
        check_op!(pygko_baselines::torch::TorchCoo::new(coo.clone()), "torch-coo");
        check_op!(pygko_baselines::tf::TfCoo::new(coo.clone()), "tf");
    });
}

/// Matrix Market write-read is the identity on facade matrices.
#[test]
fn mtx_roundtrip() {
    check("mtx_roundtrip", |rng| {
        let (n, t) = sparse_matrix(rng);
        let dev = pg::device("reference").unwrap();
        let m =
            pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
        let dir = std::env::temp_dir().join("pyginkgo_proptest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("m_{n}_{}.mtx", m.nnz()));
        pg::write(&m, &path).unwrap();
        let back = pg::read(&dev, &path, "double", "Csr").unwrap();
        assert_eq!(back.to_dense().to_vec(), m.to_dense().to_vec());
        let _ = std::fs::remove_file(path);
    });
}

/// The direct solver really solves: ||b - A x|| is tiny whenever the
/// matrix is nonsingular (diagonally dominated construction).
#[test]
fn direct_solver_solves() {
    check("direct_solver_solves", |rng| {
        let (n, mut t) = sparse_matrix(rng);
        // Make the matrix safely nonsingular.
        let mut row_abs = vec![0.0f64; n];
        for &(r, _, v) in &t {
            row_abs[r] += v.abs();
        }
        t.retain(|&(r, c, _)| r != c);
        for (i, ra) in row_abs.iter().enumerate() {
            t.push((i, i, ra + 1.0));
        }
        let dev = pg::device("reference").unwrap();
        let a =
            pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
        let solver = pg::solver::direct(&dev, &a).unwrap();
        let b = pg::as_tensor_fill(&dev, (n, 1), "double", 1.0).unwrap();
        let mut x = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0).unwrap();
        solver.apply(&b, &mut x).unwrap();
        let ax = a.spmv(&x).unwrap();
        let mut r = b.clone();
        r.add_scaled(-1.0, &ax).unwrap();
        assert!(r.norm() < 1e-8, "residual {}", r.norm());
    });
}

/// Virtual kernel time is monotone in matrix size for a fixed structure.
#[test]
fn virtual_time_monotone_in_size() {
    use gko::linop::LinOp;
    use gko::matrix::{Csr, Dense};
    use gko::Dim2;
    check_cases("virtual_time_monotone_in_size", 5, |rng| {
        let k = 1 + rng.below_usize(5);
        let mut last = 0.0f64;
        for scale in [1usize, 8] {
            let n = 1000 * k * scale;
            let exec = gko::Executor::cuda(0);
            let t: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1.0)).collect();
            let a = Csr::<f64, i32>::from_triplets(&exec, Dim2::square(n), &t).unwrap();
            let b = Dense::<f64>::vector(&exec, n, 1.0);
            let mut x = Dense::zeros(&exec, Dim2::new(n, 1));
            let t0 = exec.timeline().snapshot();
            a.apply(&b, &mut x).unwrap();
            let secs = exec.timeline().snapshot().since(&t0).seconds();
            assert!(secs >= last, "time must grow with size");
            last = secs;
        }
    });
}
