//! Sanitizer surface at the facade, plus hostile Matrix Market inputs: the
//! parser must reject malformed/adversarial files with line-numbered errors
//! (never panic or over-allocate), `SparseMatrix::validate` must pass on
//! facade-built matrices, and `Solver::with_sanitizer` must arm the pool
//! overlap detector and the NaN/Inf operand checks.

use pyginkgo as pg;
use pyginkgo_integration_tests::{residual, spd_system};
use pygko_mtx::read_mtx;

// ---------------------------------------------------------------------------
// Hostile read_mtx inputs: errors, not panics
// ---------------------------------------------------------------------------

/// Every hostile input must come back as a structured parse error — the
/// point of the corpus is that none of them panics, hangs, or allocates
/// anything near the declared (bogus) sizes.
#[test]
fn hostile_mtx_inputs_fail_cleanly() {
    let hostile: &[(&str, &str)] = &[
        ("empty", ""),
        ("whitespace only", "   \n\t\n  \n"),
        ("garbage header", "hello world\n1 1 1\n1 1 1.0\n"),
        ("wrong banner", "%%MatrixMarket tensor coordinate real general\n"),
        ("header only", "%%MatrixMarket matrix coordinate real general\n"),
        (
            "absurd declared nnz",
            "%%MatrixMarket matrix coordinate real general\n10 10 99999999999999\n1 1 1.0\n",
        ),
        (
            "truncated entries",
            "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 1 1.0\n",
        ),
        (
            "extra entries",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 2.0\n",
        ),
        (
            "out-of-range index",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n",
        ),
        (
            "zero (one-based) index",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n",
        ),
        (
            "non-numeric value",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
        ),
        (
            "non-numeric dims",
            "%%MatrixMarket matrix coordinate real general\nx y z\n",
        ),
        (
            "negative dims",
            "%%MatrixMarket matrix coordinate real general\n-3 -3 1\n1 1 1.0\n",
        ),
        (
            "binary junk",
            "%%MatrixMarket matrix coordinate real general\n\u{0}\u{1}\u{2}\u{fffd}\n",
        ),
    ];
    for (what, text) in hostile {
        let got = read_mtx(text.as_bytes());
        assert!(got.is_err(), "{what}: hostile input must be rejected");
    }
}

/// A parse error points at the offending line, so a hostile file is
/// diagnosable rather than a bare "invalid input".
#[test]
fn hostile_mtx_errors_carry_line_numbers() {
    let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n9 9 1.0\n";
    let err = read_mtx(text.as_bytes()).expect_err("row 9 of 2");
    let msg = err.to_string();
    assert!(msg.contains('4'), "error should name line 4: {msg}");
}

/// Sanity: the corpus above is hostile, not the parser — a well-formed file
/// still parses.
#[test]
fn well_formed_mtx_still_parses() {
    let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5\n2 2 2.5\n";
    let data = read_mtx(text.as_bytes()).expect("clean file");
    assert_eq!((data.rows, data.cols), (2, 2));
    assert_eq!(data.entries.len(), 2);
}

// ---------------------------------------------------------------------------
// SparseMatrix::validate on the facade
// ---------------------------------------------------------------------------

#[test]
fn facade_matrices_validate_clean() {
    let dev = pg::device("reference").unwrap();
    for format in ["Csr", "Coo"] {
        for dtype in ["half", "float", "double"] {
            let m = spd_system(&dev, 20, dtype, format);
            m.validate()
                .unwrap_or_else(|e| panic!("{format}/{dtype}: {e}"));
        }
    }
}

// ---------------------------------------------------------------------------
// Solver::with_sanitizer
// ---------------------------------------------------------------------------

#[test]
fn with_sanitizer_pool_verifies_solver_kernels() {
    let dev = pg::device("omp").unwrap();
    let mtx = spd_system(&dev, 300, "double", "Csr");
    let b = pg::as_tensor_fill(&dev, (300, 1), "double", 1.0).unwrap();
    let mut x = pg::as_tensor_fill(&dev, (300, 1), "double", 0.0).unwrap();
    let solver = pg::solver::cg(&dev, &mtx, None, 200, 1e-10)
        .unwrap()
        .with_sanitizer("pool")
        .unwrap();
    let log = solver.apply(&b, &mut x).unwrap();
    assert!(log.converged(), "{}", log.stop_reason());
    assert!(residual(&mtx, &b, &x) < 1e-6);
    let report = solver.sanitizer_report();
    assert!(
        report.jobs_checked > 0,
        "CG's SpMV/axpy pool jobs must be claim-verified: {report:?}"
    );
    assert!(report.pieces_checked >= report.jobs_checked);
}

#[test]
fn with_sanitizer_values_rejects_poisoned_rhs() {
    let dev = pg::device("reference").unwrap();
    let mtx = spd_system(&dev, 10, "double", "Csr");
    let mut b = pg::as_tensor_fill(&dev, (10, 1), "double", 1.0).unwrap();
    b.set(3, 0, f64::NAN).unwrap();
    let mut x = pg::as_tensor_fill(&dev, (10, 1), "double", 0.0).unwrap();
    let solver = pg::solver::cg(&dev, &mtx, None, 50, 1e-10)
        .unwrap()
        .with_sanitizer("values")
        .unwrap();
    let err = solver.apply(&b, &mut x).expect_err("NaN rhs must be rejected");
    let msg = err.to_string();
    assert!(msg.contains("rhs"), "error names the operand: {msg}");

    // The same solve with finite inputs passes the pre- and post-checks.
    let b = pg::as_tensor_fill(&dev, (10, 1), "double", 1.0).unwrap();
    let log = solver.apply(&b, &mut x).unwrap();
    assert!(log.converged());
}

#[test]
fn with_sanitizer_full_combines_both_and_rejects_bad_modes() {
    let dev = pg::device("omp").unwrap();
    let mtx = spd_system(&dev, 100, "double", "Csr");
    let b = pg::as_tensor_fill(&dev, (100, 1), "double", 1.0).unwrap();
    let mut x = pg::as_tensor_fill(&dev, (100, 1), "double", 0.0).unwrap();
    let solver = pg::solver::cg(&dev, &mtx, None, 200, 1e-10)
        .unwrap()
        .with_sanitizer("full")
        .unwrap();
    let log = solver.apply(&b, &mut x).unwrap();
    assert!(log.converged());
    assert!(solver.sanitizer_report().jobs_checked > 0);

    let plain = pg::solver::cg(&dev, &mtx, None, 10, 1e-6).unwrap();
    assert!(
        matches!(plain.with_sanitizer("bogus"), Err(pg::PyGinkgoError::Value(_))),
        "unknown sanitizer modes are value errors"
    );
}
