//! The full cross-product smoke matrix: every solver x preconditioner x
//! device x dtype combination the facade exposes must run and, where the
//! numerics allow, converge.

use pyginkgo as pg;
use pyginkgo_integration_tests::{residual, spd_system};

const DEVICES: [&str; 4] = ["reference", "omp", "cuda", "hip"];

#[test]
fn every_krylov_solver_on_every_device_and_dtype() {
    for device_name in DEVICES {
        let dev = pg::device(device_name).unwrap();
        for dtype in ["float", "double"] {
            let mtx = spd_system(&dev, 48, dtype, "Csr");
            let b = pg::as_tensor_fill(&dev, (48, 1), dtype, 1.0).unwrap();
            for method in ["cg", "cgs", "bicgstab", "gmres"] {
                let solver = match method {
                    "cg" => pg::solver::cg(&dev, &mtx, None, 800, 1e-6),
                    "cgs" => pg::solver::cgs(&dev, &mtx, None, 800, 1e-6),
                    "bicgstab" => pg::solver::bicgstab(&dev, &mtx, None, 800, 1e-6),
                    _ => pg::solver::gmres(&dev, &mtx, None, 800, 30, 1e-6),
                }
                .unwrap();
                let mut x = pg::as_tensor_fill(&dev, (48, 1), dtype, 0.0).unwrap();
                let log = solver.apply(&b, &mut x).unwrap();
                assert!(
                    log.converged(),
                    "{method} on {device_name}/{dtype}: {}",
                    log.stop_reason()
                );
                let rel = residual(&mtx, &b, &x) / log.initial_residual();
                assert!(
                    rel < 1e-4,
                    "{method} on {device_name}/{dtype}: relative residual {rel}"
                );
            }
        }
    }
}

#[test]
fn every_preconditioner_with_every_solver() {
    let dev = pg::device("cuda").unwrap();
    let mtx = spd_system(&dev, 64, "double", "Csr");
    let b = pg::as_tensor_fill(&dev, (64, 1), "double", 1.0).unwrap();
    for pname in ["jacobi", "block_jacobi", "ilu", "ic"] {
        let pre = match pname {
            "jacobi" => pg::preconditioner::jacobi(&dev, &mtx),
            "block_jacobi" => pg::preconditioner::jacobi_with_block_size(&dev, &mtx, 4),
            "ilu" => pg::preconditioner::ilu(&dev, &mtx),
            _ => pg::preconditioner::ic(&dev, &mtx),
        }
        .unwrap();
        for method in ["cg", "cgs", "bicgstab", "gmres"] {
            let solver = match method {
                "cg" => pg::solver::cg(&dev, &mtx, Some(pre.clone()), 500, 1e-8),
                "cgs" => pg::solver::cgs(&dev, &mtx, Some(pre.clone()), 500, 1e-8),
                "bicgstab" => pg::solver::bicgstab(&dev, &mtx, Some(pre.clone()), 500, 1e-8),
                _ => pg::solver::gmres(&dev, &mtx, Some(pre.clone()), 500, 30, 1e-8),
            }
            .unwrap();
            let mut x = pg::as_tensor_fill(&dev, (64, 1), "double", 0.0).unwrap();
            let log = solver.apply(&b, &mut x).unwrap();
            assert!(log.converged(), "{method}+{pname}: {}", log.stop_reason());
        }
    }
}

#[test]
fn half_precision_solvers_make_progress_on_all_devices() {
    // half cannot reach 1e-6, but it must reduce the residual.
    for device_name in DEVICES {
        let dev = pg::device(device_name).unwrap();
        let mtx = spd_system(&dev, 24, "half", "Csr");
        let b = pg::as_tensor_fill(&dev, (24, 1), "half", 1.0).unwrap();
        let solver = pg::solver::cg(&dev, &mtx, None, 100, 1e-2).unwrap();
        let mut x = pg::as_tensor_fill(&dev, (24, 1), "half", 0.0).unwrap();
        let log = solver.apply(&b, &mut x).unwrap();
        assert!(
            log.final_residual() < 0.1 * log.initial_residual(),
            "{device_name}: half precision made no progress ({} -> {})",
            log.initial_residual(),
            log.final_residual()
        );
    }
}

#[test]
fn ilu_preconditioned_gmres_beats_plain_gmres_everywhere() {
    for device_name in DEVICES {
        let dev = pg::device(device_name).unwrap();
        let n = 100;
        // Harder unsymmetric system.
        let mut t = vec![];
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.9));
            }
            if i + 1 < n {
                t.push((i, i + 1, -0.8));
            }
            if i + 11 < n {
                t.push((i, i + 11, 0.5));
            }
        }
        let mtx =
            pg::SparseMatrix::from_triplets(&dev, (n, n), &t, "double", "int32", "Csr").unwrap();
        let b = pg::as_tensor_fill(&dev, (n, 1), "double", 1.0).unwrap();

        let plain = pg::solver::gmres(&dev, &mtx, None, 2000, 30, 1e-8).unwrap();
        let mut x1 = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0).unwrap();
        let log_plain = plain.apply(&b, &mut x1).unwrap();

        let pre = pg::preconditioner::ilu(&dev, &mtx).unwrap();
        let prec = pg::solver::gmres(&dev, &mtx, Some(pre), 2000, 30, 1e-8).unwrap();
        let mut x2 = pg::as_tensor_fill(&dev, (n, 1), "double", 0.0).unwrap();
        let log_prec = prec.apply(&b, &mut x2).unwrap();

        assert!(log_prec.converged());
        assert!(
            log_prec.iterations() < log_plain.iterations(),
            "{device_name}: ILU {} vs plain {}",
            log_prec.iterations(),
            log_plain.iterations()
        );
    }
}

#[test]
fn coo_and_csr_systems_give_identical_solutions() {
    let dev = pg::device("reference").unwrap();
    let csr = spd_system(&dev, 40, "double", "Csr");
    let coo = spd_system(&dev, 40, "double", "Coo");
    let b = pg::as_tensor_fill(&dev, (40, 1), "double", 1.0).unwrap();

    let mut x1 = pg::as_tensor_fill(&dev, (40, 1), "double", 0.0).unwrap();
    pg::solver::cg(&dev, &csr, None, 500, 1e-10)
        .unwrap()
        .apply(&b, &mut x1)
        .unwrap();
    let mut x2 = pg::as_tensor_fill(&dev, (40, 1), "double", 0.0).unwrap();
    pg::solver::cg(&dev, &coo, None, 500, 1e-10)
        .unwrap()
        .apply(&b, &mut x2)
        .unwrap();
    for (a, b) in x1.to_vec().iter().zip(x2.to_vec()) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }
}

#[test]
fn direct_and_triangular_solvers_work_on_device() {
    let dev = pg::device("hip").unwrap();
    let mtx = spd_system(&dev, 20, "double", "Csr");
    let b = pg::as_tensor_fill(&dev, (20, 1), "double", 1.0).unwrap();
    let solver = pg::solver::direct(&dev, &mtx).unwrap();
    let mut x = pg::as_tensor_fill(&dev, (20, 1), "double", 0.0).unwrap();
    solver.apply(&b, &mut x).unwrap();
    assert!(residual(&mtx, &b, &x) < 1e-10);
}
