//! Matrix Market round trips through the facade and config-solver parity
//! across crates.

use pyginkgo as pg;
use pyginkgo::config_solver::SolveOptions;
use pyginkgo_integration_tests::{residual, spd_system};

fn temp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pyginkgo_integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generated_matrix_survives_mtx_roundtrip_and_solves() {
    let gen = pygko_matgen::generators::circuit("rt", 400, 4, 1, 5);
    let path = temp("circuit_rt.mtx");
    pygko_mtx::write_mtx_file(&path, gen.rows, gen.cols, &gen.triplets).unwrap();

    let dev = pg::device("cuda").unwrap();
    let mtx = pg::read(&dev, &path, "double", "Csr").unwrap();
    assert_eq!(mtx.shape(), (gen.rows, gen.cols));
    assert_eq!(mtx.nnz(), gen.triplets.len());

    let b = pg::as_tensor_fill(&dev, (gen.rows, 1), "double", 1.0).unwrap();
    let mut x = pg::as_tensor_fill(&dev, (gen.rows, 1), "double", 0.0).unwrap();
    let log = pg::solve(&mtx, &b, &mut x, &SolveOptions::default()).unwrap();
    assert!(log.converged(), "{}", log.stop_reason());
    assert!(residual(&mtx, &b, &x) < 1e-4 * log.initial_residual());
    let _ = std::fs::remove_file(path);
}

#[test]
fn facade_write_then_read_identity() {
    let dev = pg::device("reference").unwrap();
    let m = spd_system(&dev, 25, "double", "Coo");
    let path = temp("facade_rt.mtx");
    pg::write(&m, &path).unwrap();
    let back = pg::read(&dev, &path, "double", "Coo").unwrap();
    assert_eq!(back.nnz(), m.nnz());
    assert_eq!(back.to_dense().to_vec(), m.to_dense().to_vec());
    let _ = std::fs::remove_file(path);
}

#[test]
fn symmetric_mtx_file_expands_through_facade() {
    let path = temp("sym.mtx");
    std::fs::write(
        &path,
        "%%MatrixMarket matrix coordinate real symmetric\n3 3 4\n1 1 4.0\n2 1 -1.0\n2 2 4.0\n3 3 4.0\n",
    )
    .unwrap();
    let dev = pg::device("reference").unwrap();
    let m = pg::read(&dev, &path, "double", "Csr").unwrap();
    assert_eq!(m.nnz(), 5, "off-diagonal expands to both triangles");
    let d = m.to_dense();
    assert_eq!(d.get(0, 1).unwrap(), -1.0);
    assert_eq!(d.get(1, 0).unwrap(), -1.0);
    let _ = std::fs::remove_file(path);
}

#[test]
fn config_solver_and_direct_bindings_agree_on_every_device() {
    for device_name in ["reference", "omp", "cuda", "hip"] {
        let dev = pg::device(device_name).unwrap();
        let mtx = spd_system(&dev, 36, "double", "Csr");
        let b = pg::as_tensor_fill(&dev, (36, 1), "double", 1.0).unwrap();

        let mut x_cfg = pg::as_tensor_fill(&dev, (36, 1), "double", 0.0).unwrap();
        let opts = SolveOptions {
            method: "gmres".into(),
            preconditioner: Some("jacobi".into()),
            ..SolveOptions::default()
        };
        let log_cfg = pg::solve(&mtx, &b, &mut x_cfg, &opts).unwrap();

        let pre = pg::preconditioner::jacobi(&dev, &mtx).unwrap();
        let solver = pg::solver::gmres(&dev, &mtx, Some(pre), 1000, 30, 1e-6).unwrap();
        let mut x_direct = pg::as_tensor_fill(&dev, (36, 1), "double", 0.0).unwrap();
        let log_direct = solver.apply(&b, &mut x_direct).unwrap();

        assert_eq!(
            log_cfg.iterations(),
            log_direct.iterations(),
            "{device_name}: same algorithm behind both entry points"
        );
        for (a, c) in x_cfg.to_vec().iter().zip(x_direct.to_vec()) {
            assert!((a - c).abs() < 1e-12, "{device_name}: {a} vs {c}");
        }
    }
}

#[test]
fn listing_2_json_parses_back_through_engine_config() {
    // The JSON the facade produces must be consumable by the engine's own
    // parser (the two sides of the §5 boundary).
    let json = SolveOptions::default().to_json().unwrap();
    let cfg = gko::config::Config::from_json(&json).unwrap();
    assert_eq!(cfg.get("type").unwrap().as_str(), Some("solver::Gmres"));
    assert_eq!(
        cfg.get("preconditioner").unwrap().get("type").unwrap().as_str(),
        Some("preconditioner::Jacobi")
    );
    // And round-trips losslessly.
    assert_eq!(
        gko::config::Config::from_json(&cfg.to_json()).unwrap(),
        cfg
    );
}
